//! Offline stand-in for `serde_json` over the vendored [`serde::Value`]
//! tree: `to_string`, `to_string_pretty`, `from_str`, and `to_value` /
//! `from_value`.
//!
//! Deviations from upstream, both deliberate: non-finite floats are
//! written as the literals `NaN` / `Infinity` / `-Infinity` (and accepted
//! back), so serialized models survive round-trips *verbatim* and the
//! static analyzer — not the serializer — decides what to do about them;
//! upstream instead silently flattens them to `null`. Floats use Rust's
//! shortest-round-trip `Display`, which is what upstream's
//! `float_roundtrip` feature guarantees.

use serde::{DeError, Deserialize, Number, Serialize, Value};
use std::fmt;

/// JSON error (serialization or parsing), with a byte position for parse
/// errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e.message())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for the vendored value model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` with two-space indentation.
///
/// # Errors
///
/// Never fails for the vendored value model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Lowers `value` to a [`Value`] tree.
///
/// # Errors
///
/// Never fails for the vendored value model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a `T` from a [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the tree does not match `T`.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(Error::from)
}

// ---- writer ---------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            write_delimited(out, indent, level, '[', ']', items.len(), |out, i| {
                write_value(&items[i], out, indent, level + 1);
            })
        }
        Value::Map(fields) => {
            write_delimited(out, indent, level, '{', '}', fields.len(), |out, i| {
                write_string(&fields[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(&fields[i].1, out, indent, level + 1);
            })
        }
    }
}

fn write_delimited(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (level + 1)));
        }
        write_item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * level));
    }
    out.push(close);
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::I(i) => out.push_str(&i.to_string()),
        Number::U(u) => out.push_str(&u.to_string()),
        Number::F(f) if f.is_nan() => out.push_str("NaN"),
        Number::F(f) if f.is_infinite() => {
            out.push_str(if f > 0.0 { "Infinity" } else { "-Infinity" });
        }
        Number::F(f) => {
            // Rust's Display is shortest-round-trip; integral floats print
            // without a fraction ("2"), which re-parses as an integer — the
            // numeric coercions in `serde::Value` absorb that.
            out.push_str(&f.to_string());
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Num(Number::F(f64::NAN))),
            Some(b'I') if self.eat_keyword("Infinity") => Ok(Value::Num(Number::F(f64::INFINITY))),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Value::Num(Number::F(f64::NEG_INFINITY)))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // surrogate pair
                                if !(self.eat(b'\\').is_ok() && self.eat(b'u').is_ok()) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid hex digits"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "0", "-17", "3.25", "\"hi\""] {
            let v: Value = from_str(json).expect("parses");
            assert_eq!(to_string(&v).expect("writes"), json);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let json = r#"{"a":[1,2.5,null],"b":{"c":"x\ny"},"d":[]}"#;
        let v: Value = from_str(json).expect("parses");
        assert_eq!(to_string(&v).expect("writes"), json);
    }

    #[test]
    fn float_shortest_round_trip() {
        let x = 0.1f64 + 0.2;
        let s = to_string(&x).expect("writes");
        let back: f64 = from_str(&s).expect("parses");
        assert_eq!(back, x);
    }

    #[test]
    fn non_finite_literals_round_trip() {
        let v = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let s = to_string(&v).expect("writes");
        assert_eq!(s, "[NaN,Infinity,-Infinity]");
        let back: Vec<f64> = from_str(&s).expect("parses");
        assert!(back[0].is_nan());
        assert_eq!(back[1], f64::INFINITY);
        assert_eq!(back[2], f64::NEG_INFINITY);
    }

    #[test]
    fn big_u64_survives() {
        let n = u64::MAX;
        let s = to_string(&n).expect("writes");
        let back: u64 = from_str(&s).expect("parses");
        assert_eq!(back, n);
    }

    #[test]
    fn unicode_escapes_decode() {
        let v: String = from_str(r#""aA😀b""#).expect("parses");
        assert_eq!(v, "aA😀b");
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let json = r#"{"a":[1,2],"b":true}"#;
        let v: Value = from_str(json).expect("parses");
        let pretty = to_string_pretty(&v).expect("writes");
        assert!(pretty.contains("\n  \"a\": [\n    1,"));
        let back: Value = from_str(&pretty).expect("reparses");
        assert_eq!(back, v);
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = from_str::<Value>("{\"a\": }").unwrap_err();
        assert!(err.to_string().contains("at byte"));
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
