//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace-standard seeded generator: xoshiro256** with SplitMix64
/// state expansion. Deterministic, `Clone`, and fast; not a stand-in for a
/// cryptographic RNG (neither is upstream `StdRng` used that way here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// The raw xoshiro256** state words, for exact-resume checkpointing.
    /// `from_state(state())` reproduces the generator bit-for-bit.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from previously exported [`StdRng::state`]
    /// words. An all-zero state is invalid for xoshiro256** (it is a fixed
    /// point); callers should only pass states captured from a live
    /// generator.
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_has_no_short_cycle() {
        let mut r = StdRng::seed_from_u64(0);
        let first = r.next_u64();
        for _ in 0..10_000 {
            assert_ne!(r.next_u64(), 0, "xoshiro256** never yields the all-zero output twice in a row from a non-zero state");
        }
        let mut r2 = StdRng::seed_from_u64(0);
        assert_eq!(r2.next_u64(), first);
    }

    #[test]
    fn state_export_resumes_the_stream_exactly() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            r.next_u64();
        }
        let snapshot = r.state();
        let ahead: Vec<u64> = (0..32).map(|_| r.next_u64()).collect();
        let mut resumed = StdRng::from_state(snapshot);
        let resumed_ahead: Vec<u64> = (0..32).map(|_| resumed.next_u64()).collect();
        assert_eq!(ahead, resumed_ahead);
    }

    #[test]
    fn zero_seed_state_is_not_degenerate() {
        // SplitMix64 expansion guarantees a non-zero state even for seed 0.
        let r = StdRng::seed_from_u64(0);
        assert!(r.s.iter().any(|&w| w != 0));
    }
}
