//! Slice helpers (`shuffle`).

use crate::{RngCore, SampleRange};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (0..self.len()).sample_single(rng);
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_is_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut r).expect("non-empty")));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
