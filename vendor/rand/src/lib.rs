//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the *subset* of the `rand 0.8` API it actually uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`, `from_rng`), [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic, high quality, and entirely self-contained.
//!
//! Semantics match `rand` where the workspace depends on them (determinism
//! from a seed, range membership, shuffle uniformity); bit-exact stream
//! compatibility with upstream `rand` is explicitly *not* a goal.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Error type returned by [`SeedableRng::from_rng`]. Construction of the
/// vendored generators cannot actually fail; the type exists so call sites
/// written against `rand 0.8` keep compiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG's raw output — the
/// stand-in for `rand`'s `Standard` distribution.
pub trait StandardSample {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for i64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), the standard float-from-bits recipe.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly — the stand-in for
/// `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        if lo == hi {
            return lo;
        }
        let u = f64::standard_sample(rng);
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` over its "standard" domain (`[0, 1)` for
    /// floats, the full range for integers).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator seeded from another generator's output.
    ///
    /// # Errors
    ///
    /// Never fails for the vendored generators; the `Result` mirrors the
    /// `rand 0.8` signature.
    fn from_rng<R: RngCore>(mut rng: R) -> Result<Self, Error> {
        Ok(Self::seed_from_u64(rng.next_u64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_samples_are_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n = r.gen_range(0..7usize);
            assert!(n < 7);
            let m = r.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&m));
        }
    }

    #[test]
    fn from_rng_derives_new_stream() {
        let mut base = StdRng::seed_from_u64(5);
        let mut derived = StdRng::from_rng(&mut base).expect("infallible");
        assert_ne!(derived.next_u64(), base.next_u64());
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut base = StdRng::seed_from_u64(6);
        let dyn_rng: &mut dyn RngCore = &mut base;
        let _ = StdRng::from_rng(dyn_rng).expect("infallible");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
