//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` shim.
//!
//! Parses the item's token stream directly (no `syn`/`quote` — the
//! registry is unreachable) and emits value-tree conversions following
//! upstream serde's data model for the shapes this workspace uses:
//!
//! - named-field structs  → map of fields
//! - unit structs         → null
//! - newtype structs      → the inner value
//! - tuple structs        → sequence
//! - enums (externally tagged): unit variants → the variant name as a
//!   string; newtype variants → `{"Variant": value}`; tuple variants →
//!   `{"Variant": [..]}`; struct variants → `{"Variant": {..}}`
//!
//! Generic parameters and `#[serde(...)]` attributes are unsupported and
//! rejected with a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// The shape of a struct body or an enum variant's payload.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    kind: Kind,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error tokens parse"),
    }
}

// ---- parsing --------------------------------------------------------------

type Iter = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut it: Iter = input.into_iter().peekable();
    let keyword = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next(); // the attribute's bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // optional restriction: pub(crate) etc.
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(other) => return Err(format!("unexpected token `{other}` before item keyword")),
            None => return Err("empty derive input".to_string()),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic item `{name}` is unsupported"
        ));
    }
    let kind = if keyword == "struct" {
        Kind::Struct(parse_struct_body(&mut it, &name)?)
    } else {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream(), &name)?)
            }
            other => return Err(format!("expected enum body for `{name}`, found {other:?}")),
        }
    };
    Ok(Item { name, kind })
}

fn parse_struct_body(it: &mut Iter, name: &str) -> Result<Fields, String> {
    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Ok(Fields::Named(parse_named_fields(g.stream())?))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Fields::Tuple(count_tuple_fields(g.stream())))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Fields::Unit),
        other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
    }
}

/// Field names of `{ a: T, pub b: U, ... }`. Types are skipped with
/// angle-bracket awareness (generic arguments contain top-level commas).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut it: Iter = body.into_iter().peekable();
    loop {
        // skip attributes and visibility
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    it.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    it.next();
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = it.next() else { break };
        let TokenTree::Ident(field) = tt else {
            return Err(format!("expected field name, found `{tt}`"));
        };
        fields.push(field.to_string());
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field, found {other:?}")),
        }
        // consume the type up to the next top-level comma
        let mut angle_depth = 0i32;
        for tt in it.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Arity of a tuple body `(A, B, ...)`.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut count = 0usize;
    let mut saw_tokens = false;
    for tt in body {
        saw_tokens = true;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    // `(A, B)` has one separator; `(A, B,)` would double-count, but the
    // trailing element after the last comma is what `saw_tokens` covers —
    // recount conservatively below.
    if saw_tokens {
        count + 1
    } else {
        0
    }
}

fn parse_variants(body: TokenStream, enum_name: &str) -> Result<Vec<(String, Fields)>, String> {
    let mut variants = Vec::new();
    let mut it: Iter = body.into_iter().peekable();
    loop {
        while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            it.next();
            it.next();
        }
        let Some(tt) = it.next() else { break };
        let TokenTree::Ident(variant) = tt else {
            return Err(format!(
                "expected variant name in `{enum_name}`, found `{tt}`"
            ));
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                it.next();
                Fields::Named(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                it.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // skip an explicit discriminant, then the separating comma
        let mut angle_depth = 0i32;
        while let Some(tt) = it.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    it.next();
                    break;
                }
                _ => {}
            }
            it.next();
        }
        variants.push((variant.to_string(), fields));
    }
    Ok(variants)
}

// ---- code generation ------------------------------------------------------

fn tuple_bindings(arity: usize) -> Vec<String> {
    (0..arity).map(|i| format!("__f{i}")).collect()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::Struct(Fields::Named(fields)) => gen_named_to_map(fields, "self.", ""),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "Self::{v} => ::serde::Value::Str({v:?}.to_string()),"
                    ),
                    Fields::Tuple(n) => {
                        let binds = tuple_bindings(*n);
                        let inner = if *n == 1 {
                            format!("::serde::Serialize::to_value({})", binds[0])
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        format!(
                            "Self::{v}({}) => ::serde::Value::Map(vec![({v:?}.to_string(), {inner})]),",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(fields) => {
                        let pat = fields.join(", ");
                        let map = gen_named_to_map(fields, "", "");
                        format!(
                            "Self::{v} {{ {pat} }} => ::serde::Value::Map(vec![({v:?}.to_string(), {map})]),"
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// `Value::Map` construction from named fields; `prefix` is `self.` for
/// structs and empty for enum-variant bindings.
fn gen_named_to_map(fields: &[String], prefix: &str, _unused: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&{prefix}{f}))"))
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => format!("Ok({name})"),
        Kind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Seq(__items) if __items.len() == {n} => \
                         Ok({name}({items})),\n\
                     __other => Err(::serde::DeError::custom(format!(\
                         \"expected {n}-element sequence for `{name}`, got {{}}\", __other.kind()))),\n\
                 }}",
                items = items.join(", ")
            )
        }
        Kind::Struct(Fields::Named(fields)) => {
            let inits = gen_named_from_map(name, fields);
            format!(
                "match __v {{\n\
                     ::serde::Value::Map(__fields) => Ok({name} {{ {inits} }}),\n\
                     __other => Err(::serde::DeError::custom(format!(\
                         \"expected map for `{name}`, got {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
        Kind::Enum(variants) => gen_enum_from_value(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn gen_named_from_map(name: &str, fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::__field(__fields, {f:?})\
                 .map_err(|e| ::serde::DeError::custom(format!(\"in `{name}`: {{e}}\")))?)?,"
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn gen_enum_from_value(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(v, _)| format!("{v:?} => Ok(Self::{v}),"))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|(v, fields)| match fields {
            Fields::Unit => None,
            Fields::Tuple(1) => Some(format!(
                "{v:?} => Ok(Self::{v}(::serde::Deserialize::from_value(__inner)?)),"
            )),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                Some(format!(
                    "{v:?} => match __inner {{\n\
                         ::serde::Value::Seq(__items) if __items.len() == {n} => \
                             Ok(Self::{v}({items})),\n\
                         __other => Err(::serde::DeError::custom(format!(\
                             \"expected {n}-element sequence for `{name}::{v}`, got {{}}\", \
                             __other.kind()))),\n\
                     }},",
                    items = items.join(", ")
                ))
            }
            Fields::Named(fs) => {
                let inits = gen_named_from_map(name, fs);
                Some(format!(
                    "{v:?} => match __inner {{\n\
                         ::serde::Value::Map(__fields) => Ok(Self::{v} {{ {inits} }}),\n\
                         __other => Err(::serde::DeError::custom(format!(\
                             \"expected map for `{name}::{v}`, got {{}}\", __other.kind()))),\n\
                     }},",
                ))
            }
        })
        .collect();
    format!(
        "match __v {{\n\
             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {units}\n\
                 __other => Err(::serde::DeError::custom(format!(\
                     \"unknown unit variant `{{__other}}` for `{name}`\"))),\n\
             }},\n\
             ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = &__m[0];\n\
                 match __tag.as_str() {{\n\
                     {tagged}\n\
                     __other => Err(::serde::DeError::custom(format!(\
                         \"unknown variant `{{__other}}` for `{name}`\"))),\n\
                 }}\n\
             }}\n\
             __other => Err(::serde::DeError::custom(format!(\
                 \"expected variant string or single-key map for `{name}`, got {{}}\", \
                 __other.kind()))),\n\
         }}",
        units = unit_arms.join("\n"),
        tagged = tagged_arms.join("\n"),
    )
}
