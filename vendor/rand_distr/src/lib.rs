//! Offline stand-in for `rand_distr`: the [`Distribution`] trait and the
//! [`Normal`] distribution (Box–Muller), which is all this workspace uses.

use rand::{RngCore, StandardSample};
use std::fmt;

/// Types that sample values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Normal::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev²)`.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] if `std_dev` is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if std_dev < 0.0 || !std_dev.is_finite() || !mean.is_finite() {
            return Err(NormalError);
        }
        Ok(Self { mean, std_dev })
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; u1 is mapped to (0, 1] so the log never sees zero.
        let u1 = 1.0 - f64::standard_sample(&mut *rng);
        let u2 = f64::standard_sample(&mut *rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
        assert!(Normal::new(1.5, 0.0).is_ok());
    }

    #[test]
    fn moments_are_plausible() {
        let n = Normal::new(3.0, 2.0).expect("valid");
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (samples.len() - 1) as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn samples_are_finite() {
        let n = Normal::new(0.0, 1.0).expect("valid");
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..10_000 {
            assert!(n.sample(&mut rng).is_finite());
        }
    }
}
