//! Offline stand-in for `criterion`: wall-clock micro-benchmarking with the
//! `Criterion` / `BenchmarkGroup` / `Bencher` API and the
//! `criterion_group!` / `criterion_main!` macros. Reports median and
//! min/max ns-per-iteration to stdout; no statistical analysis, plots, or
//! saved baselines.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), self.sample_size, self.measurement_time, f);
        self
    }

    /// Starts a named group sharing this driver's configuration.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _criterion: self,
            name: name.as_ref().to_string(),
            sample_size,
            measurement_time,
        }
    }
}

/// A group of related benchmarks with an overridable configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_one(&full, self.sample_size, self.measurement_time, f);
        self
    }

    /// Ends the group (upstream-compatible no-op).
    pub fn finish(self) {}
}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    measurement_time: Duration,
    mut f: F,
) {
    // Calibrate the per-sample iteration count so a full run of `samples`
    // samples lands near `measurement_time`.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let budget = measurement_time.as_nanos() / samples.max(1) as u128;
    let iters = (budget / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let min = per_iter_ns[0];
    let max = per_iter_ns[per_iter_ns.len() - 1];
    println!("{name:<50} median {median:>12.1} ns/iter  (min {min:.1}, max {max:.1}, {samples} samples × {iters} iters)");
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        c.bench_function("shim/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("shim/group");
        group.sample_size(3);
        group.bench_function("mul", |b| b.iter(|| black_box(6u64) * 7));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(5));
        targets = work
    }

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
