//! Collection strategies (`vec`).

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Length specification for [`vec`]: an exact length or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.sample_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_length_and_range_length() {
        let mut rng = TestRng(StdRng::seed_from_u64(1));
        let exact = vec(0.0..1.0f64, 12).generate(&mut rng);
        assert_eq!(exact.len(), 12);
        for _ in 0..50 {
            let ranged = vec(0.0..1.0f64, 1..6).generate(&mut rng);
            assert!((1..6).contains(&ranged.len()));
        }
    }
}
