//! Offline mini property-testing harness under the `proptest` name.
//!
//! Supports the subset this workspace's test suites use: the `proptest!`
//! macro (with an optional `#![proptest_config(..)]` header), range and
//! tuple strategies, `prop_map`, `collection::vec`, `Just`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Each test
//! runs `cases` deterministic iterations seeded from the test name, so
//! failures reproduce without a persistence file. There is **no input
//! shrinking** — the failure message reports the case index and seed
//! instead.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleRange, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod collection;

pub mod prelude {
    //! The glob-imported surface, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Deterministic RNG handed to strategies.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// Draws from a range (strategy support).
    pub fn sample_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Seed offset, letting a failing case be replayed in isolation.
    pub seed: u64,
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64, seed: 0 }
    }
}

/// A failed or rejected test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold; the message explains why.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; the case is retried.
    Reject(String),
}

/// Generators of test-case inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates with an inner strategy derived from this one's output.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Executes `cases` iterations of a property; called by the `proptest!`
/// expansion, not directly.
///
/// # Panics
///
/// Panics (failing the surrounding `#[test]`) when a case fails.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base = fnv1a(name).wrapping_add(config.seed);
    let mut passed = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(config.cases) * 16;
    while passed < config.cases {
        assert!(
            attempts < max_attempts,
            "proptest `{name}`: too many rejected cases ({attempts} attempts for {passed} passes)"
        );
        let seed = base.wrapping_add(attempts);
        let mut rng = TestRng(StdRng::seed_from_u64(seed));
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {passed} (seed {seed}): {msg}");
            }
        }
        attempts += 1;
    }
}

/// Types with a canonical whole-domain strategy — the stand-in for
/// `proptest`'s `Arbitrary`, used by the `name: Type` parameter form.
pub trait Arbitrary: Sized {
    /// Draws one value spanning the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: verification code under test treats NaN as a
        // diagnostic condition, which dedicated fixtures cover explicitly.
        Strategy::generate(&(-1.0e6..1.0e6f64), rng)
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The `proptest! { ... }` block macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $crate::__proptest_bind! { __rng; $($params)* }
                let __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
}

/// Internal parameter binder for [`proptest!`]: each parameter is either
/// `pattern in strategy` or `name: Type` (drawn via [`Arbitrary`]).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat_param in $strat:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::Strategy::generate(&$strat, $rng);
        $($crate::__proptest_bind! { $rng; $($rest)* })?
    };
    ($rng:ident; $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $name: $ty = $crate::Arbitrary::arbitrary($rng);
        $($crate::__proptest_bind! { $rng; $($rest)* })?
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // the negation must see the caller's expression verbatim, so the
        // neg-cmp lint is silenced here rather than at every call site
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let holds = $cond;
        if !holds {
            return ::std::result::Result::Err(
                $crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)*)
        );
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)*)
        );
    }};
}

/// Rejects the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let holds = $cond;
        if !holds {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -3.0..7.0f64, n in 1usize..10) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn tuples_and_map_compose(pair in (0.0..1.0f64, 0.0..1.0f64).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&pair));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0.0..1.0f64) {
            prop_assume!(x > 0.25);
            prop_assert!(x > 0.25);
        }

        #[test]
        fn vec_strategy_obeys_length_range(v in crate::collection::vec(-1.0..1.0f64, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases(&ProptestConfig::with_cases(8), "always_fails", |_| {
                Err(TestCaseError::Fail("boom".to_string()))
            });
        });
        let msg = *result
            .unwrap_err()
            .downcast::<String>()
            .expect("string panic");
        assert!(msg.contains("always_fails") && msg.contains("boom") && msg.contains("seed"));
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::run_cases(&ProptestConfig::with_cases(5), "det", |rng| {
                out.push(crate::Strategy::generate(&(0.0..1.0f64), rng));
                Ok(())
            });
        }
        assert_eq!(first, second);
    }
}
