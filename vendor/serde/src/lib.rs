//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors a *value-based* serialization framework under the `serde` name:
//! [`Serialize`] lowers a type to a [`Value`] tree and [`Deserialize`]
//! rebuilds it. `#[derive(Serialize, Deserialize)]` is provided by the
//! companion `serde_derive` proc-macro (enabled through the `derive`
//! feature, exactly like upstream) and follows upstream serde's data model
//! for the shapes this workspace uses: named-field structs, unit structs,
//! tuple structs, and externally-tagged enums.
//!
//! This is intentionally *not* upstream serde: there is no `Serializer` /
//! `Deserializer` zero-copy core, no `#[serde(...)]` attributes, and no
//! lifetime-generic `Deserialize<'de>`. The workspace only ever round-trips
//! its own artifacts through `serde_json`, which the sibling shim provides
//! over the same [`Value`] tree.

pub mod value;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, or explains why the tree has the wrong shape.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value tree does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a struct field in a map value (derive-macro support).
///
/// # Errors
///
/// Returns [`DeError`] when the field is absent.
pub fn __field<'a>(fields: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

// ---- primitive impls ------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::I(*self as i64))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::custom(format!(
                        "expected integer, got {}", v.kind())))?;
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::custom(format!(
                        "expected unsigned integer, got {}", v.kind())))?;
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::custom(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($len:expr; $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::custom(format!(
                        "expected {}-tuple, got {}", $len, other.kind()))),
                }
            }
        }
    };
}

impl_tuple!(2; A.0, B.1);
impl_tuple!(3; A.0, B.1, C.2);
impl_tuple!(4; A.0, B.1, C.2, D.3);

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Keys are arbitrary types, so a map lowers to a sequence of
        // [key, value] pairs rather than a string-keyed object.
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items
                .iter()
                .map(|pair| match pair {
                    Value::Seq(kv) if kv.len() == 2 => {
                        Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                    }
                    other => Err(DeError::custom(format!(
                        "expected [key, value] pair, got {}",
                        other.kind()
                    ))),
                })
                .collect(),
            other => Err(DeError::custom(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // Upstream serde encodes Duration as {secs, nanos}.
        Value::Map(vec![
            ("secs".to_string(), Value::Num(Number::U(self.as_secs()))),
            (
                "nanos".to_string(),
                Value::Num(Number::U(u64::from(self.subsec_nanos()))),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(fields) => {
                let secs = u64::from_value(__field(fields, "secs")?)?;
                let nanos = u32::from_value(__field(fields, "nanos")?)?;
                Ok(std::time::Duration::new(secs, nanos))
            }
            other => Err(DeError::custom(format!(
                "expected map, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(u64::from_value(&7u64.to_value()), Ok(7));
        assert_eq!(i32::from_value(&(-3i32).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn float_accepts_integer_values() {
        assert_eq!(f64::from_value(&Value::Num(Number::I(4))), Ok(4.0));
        assert_eq!(f64::from_value(&Value::Num(Number::U(4))), Ok(4.0));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()), Ok(v));
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()), Ok(None));
        let t = (1u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_value(&t.to_value()), Ok(t));
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(bool::from_value(&Value::Null).is_err());
        assert!(u32::from_value(&Value::Num(Number::I(-1))).is_err());
        assert!(Vec::<f64>::from_value(&Value::Bool(true)).is_err());
        let missing = __field(&[], "weights");
        assert!(missing.unwrap_err().message().contains("weights"));
    }
}
