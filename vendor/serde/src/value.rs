//! The value tree both `serde` traits and the `serde_json` shim share.

/// A JSON-shaped number. Integers keep full precision; floats carry
/// whatever `f64` carries (including non-finite values, which the JSON
//  layer prints as `NaN` / `Infinity` literals).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    I(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U(u64),
    /// Floating point.
    F(f64),
}

/// A dynamically-typed value tree. Maps preserve insertion order so
/// serialized artifacts are byte-stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(Number),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object (ordered).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// A short noun for error messages ("map", "sequence", …).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// The numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(Number::I(n)) => Some(*n as f64),
            Value::Num(Number::U(n)) => Some(*n as f64),
            Value::Num(Number::F(x)) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as `i64`, if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(Number::I(n)) => Some(*n),
            Value::Num(Number::U(n)) => i64::try_from(*n).ok(),
            Value::Num(Number::F(x)) if x.fract() == 0.0 && x.abs() < 9.0e15 => Some(*x as i64),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(Number::U(n)) => Some(*n),
            Value::Num(Number::I(n)) => u64::try_from(*n).ok(),
            Value::Num(Number::F(x)) if x.fract() == 0.0 && *x >= 0.0 && *x < 1.9e19 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence items, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_coercions() {
        assert_eq!(Value::Num(Number::U(5)).as_i64(), Some(5));
        assert_eq!(Value::Num(Number::I(-5)).as_u64(), None);
        assert_eq!(Value::Num(Number::F(2.0)).as_i64(), Some(2));
        assert_eq!(Value::Num(Number::F(2.5)).as_i64(), None);
        assert_eq!(Value::Num(Number::U(u64::MAX)).as_i64(), None);
    }

    #[test]
    fn accessors_reject_other_kinds() {
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_map(), None);
        assert_eq!(Value::Bool(true).as_seq(), None);
        assert_eq!(Value::Seq(vec![]).kind(), "sequence");
    }
}
