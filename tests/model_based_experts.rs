//! Integration of the model-based expert families (LQR, MPC) with the
//! Cocktail pipeline — the paper's "experts could be based on
//! well-established model-based approaches such as MPC or LQR".

use cocktail_control::lqr::{linearize, lqr_controller};
use cocktail_control::{Controller, MpcConfig, MpcController};
use cocktail_core::experiment::pipeline_config;
use cocktail_core::metrics::{evaluate, EvalConfig};
use cocktail_core::pipeline::Cocktail;
use cocktail_core::{Preset, SystemId};
use cocktail_math::linalg::spectral_radius;
use std::sync::Arc;

#[test]
fn lqr_gains_schur_stabilize_every_system() {
    for sys_id in SystemId::all() {
        let sys = sys_id.dynamics();
        let sw = vec![1.0; sys.state_dim()];
        let cw = vec![0.5; sys.control_dim()];
        let k = lqr_controller(sys.as_ref(), &sw, &cw, "lqr").expect("stabilizable");
        let lin = linearize(
            sys.as_ref(),
            &vec![0.0; sys.state_dim()],
            &vec![0.0; sys.control_dim()],
        );
        let mut a_cl = lin.a.clone();
        a_cl.axpy(-1.0, &lin.b.matmul(k.gain()));
        let rho = spectral_radius(&a_cl);
        assert!(rho < 1.0, "{sys_id}: closed-loop spectral radius {rho}");
    }
}

#[test]
fn lqr_expert_pair_feeds_the_pipeline() {
    let sys_id = SystemId::Oscillator;
    let sys = sys_id.dynamics();
    let soft = lqr_controller(sys.as_ref(), &[1.0, 1.0], &[2.0], "lqr-soft").expect("ok");
    let hard = lqr_controller(sys.as_ref(), &[10.0, 10.0], &[0.2], "lqr-hard").expect("ok");
    let experts: Vec<Arc<dyn Controller>> = vec![Arc::new(soft), Arc::new(hard)];
    // recovering already-strong experts needs a real (if modest) PPO
    // budget; the Smoke preset's 4 iterations are not enough
    let mut config = pipeline_config(sys_id, Preset::Smoke, 0);
    config.ppo.iterations = 40;
    config.ppo.episodes_per_iteration = 8;
    let result = Cocktail::new(sys_id, experts.clone())
        .with_config(config)
        .run();
    let cfg = EvalConfig {
        samples: 120,
        ..Default::default()
    };
    let mixed = evaluate(sys.as_ref(), result.mixed.as_ref(), &cfg);
    let best_expert = experts
        .iter()
        .map(|e| evaluate(sys.as_ref(), e.as_ref(), &cfg).safe_rate)
        .fold(0.0, f64::max);
    assert!(
        mixed.safe_rate >= best_expert - 0.15,
        "mixed {} vs best expert {}",
        mixed.safe_rate,
        best_expert
    );
    assert!(result.kappa_star.lipschitz_constant().is_finite());
}

#[test]
fn mpc_expert_controls_and_can_be_distilled() {
    let sys_id = SystemId::Oscillator;
    let sys = sys_id.dynamics();
    let mpc = MpcController::new(
        sys.clone(),
        MpcConfig {
            horizon: 8,
            samples: 32,
            iterations: 2,
            ..Default::default()
        },
    );
    // MPC is slow per step; evaluate with a small budget
    let eval = evaluate(
        sys.as_ref(),
        &mpc,
        &EvalConfig {
            samples: 25,
            horizon: Some(40),
            ..Default::default()
        },
    );
    assert!(eval.safe_rate > 0.7, "MPC S_r {}", eval.safe_rate);

    // distill the MPC expert into a fast student network
    let data =
        cocktail_distill::TeacherDataset::sample_uniform(&mpc, &sys.verification_domain(), 256, 0);
    let student = cocktail_distill::direct_distill(
        &data,
        &cocktail_distill::DistillConfig {
            epochs: 60,
            hidden: 16,
            ..Default::default()
        },
    );
    let student_eval = evaluate(
        sys.as_ref(),
        &student,
        &EvalConfig {
            samples: 60,
            ..Default::default()
        },
    );
    assert!(
        student_eval.safe_rate > 0.5,
        "distilled MPC student S_r {}",
        student_eval.safe_rate
    );
}
