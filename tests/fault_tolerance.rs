//! Fault-injection, graceful-degradation and checkpoint/rewind
//! integration tests: the determinism and safety contracts of the
//! fault-tolerance subsystem, exercised end to end.

#![allow(
    clippy::expect_used,
    reason = "test helpers panic freely, like the #[test] fns they serve"
)]

use cocktail_control::{
    Controller, DegradationConfig, DegradationReason, FaultyExpert, MixedController,
};
use cocktail_core::experts::cloned_experts;
use cocktail_core::metrics::{evaluate, EvalConfig};
use cocktail_core::pipeline::{Cocktail, CocktailConfig, CocktailResult};
use cocktail_core::supervisor::{DivergenceConfig, PipelineError, SupervisorConfig};
use cocktail_core::SystemId;
use cocktail_distill::DistillConfig;
use cocktail_env::fault::{FaultKind, FaultPlan};
use cocktail_env::{try_rollout, RolloutConfig};
use cocktail_math::parallel::{map_range_with_workers, task_seed};
use cocktail_rl::PpoConfig;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

fn oscillator_experts() -> &'static Vec<Arc<dyn Controller>> {
    static CELL: OnceLock<Vec<Arc<dyn Controller>>> = OnceLock::new();
    CELL.get_or_init(|| cloned_experts(SystemId::Oscillator, 0))
}

/// A pipeline config small enough that the kill-and-resume drills run the
/// full pipeline several times in seconds.
fn tiny_config() -> CocktailConfig {
    CocktailConfig {
        ppo: PpoConfig {
            iterations: 4,
            episodes_per_iteration: 4,
            hidden: 8,
            ..Default::default()
        },
        distill: DistillConfig {
            epochs: 12,
            hidden: 8,
            ..Default::default()
        },
        dataset_uniform: 128,
        dataset_episodes: 4,
        ..Default::default()
    }
}

fn tiny_run(sup: &SupervisorConfig) -> Result<CocktailResult, PipelineError> {
    Cocktail::new(SystemId::Oscillator, oscillator_experts().clone())
        .with_config(tiny_config())
        .run_supervised(sup)
}

/// The bit-comparable fingerprint of a pipeline result.
fn fingerprint(result: &CocktailResult) -> (String, String, String) {
    (
        serde_json::to_string(result.kappa_star.network()).expect("serialize"),
        serde_json::to_string(result.kappa_d.network()).expect("serialize"),
        serde_json::to_string(&result.ppo_history).expect("serialize"),
    )
}

fn reference_fingerprint() -> &'static (String, String, String) {
    static CELL: OnceLock<(String, String, String)> = OnceLock::new();
    CELL.get_or_init(|| {
        let result = Cocktail::new(SystemId::Oscillator, oscillator_experts().clone())
            .with_config(tiny_config())
            .run();
        fingerprint(&result)
    })
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cocktail-ft-{tag}-{}", std::process::id()))
}

/// A faulted mixed oscillator controller, built fresh per episode so the
/// stuck-at memory and quarantine clocks never leak across episodes.
fn faulted_mixed(plan: &FaultPlan, seed: u64) -> MixedController {
    let experts = oscillator_experts();
    let wrapped: Vec<Arc<dyn Controller>> = vec![
        Arc::new(FaultyExpert::new(experts[0].clone(), plan.clone(), seed)),
        experts[1].clone(),
    ];
    MixedController::new(
        wrapped,
        Arc::new(cocktail_control::ConstantWeights(vec![0.5, 0.5])),
        vec![-20.0],
        vec![20.0],
    )
    .with_degradation(DegradationConfig::default())
}

#[test]
fn faulty_rollouts_are_worker_count_invariant() {
    let sys = SystemId::Oscillator.dynamics();
    let episodes = 24;
    let run = |workers: usize| {
        map_range_with_workers(episodes, workers, |i| {
            let seed = task_seed(999, i as u64);
            // every episode gets its own random fault schedule and its own
            // injector/monitor state
            let plan = FaultPlan::random(seed, 60, 3);
            let mixed = faulted_mixed(&plan, seed);
            let mut rng = cocktail_math::rng::seeded(seed ^ 0x5EED);
            let s0 = cocktail_math::rng::uniform_in_box(&mut rng, &sys.initial_set());
            let mut control = |s: &[f64]| mixed.control(s);
            let mut no_attack = |_t: usize, s: &[f64]| s.to_vec();
            let outcome = try_rollout(
                sys.as_ref(),
                &mut control,
                &mut no_attack,
                &s0,
                &RolloutConfig {
                    horizon: Some(60),
                    seed,
                    ..Default::default()
                },
            );
            let events: Vec<(u64, usize, bool)> = mixed
                .degradation_events()
                .iter()
                .map(|e| {
                    (
                        e.call,
                        e.expert,
                        matches!(e.reason, DegradationReason::NonFinite),
                    )
                })
                .collect();
            match outcome {
                Ok(traj) => (
                    true,
                    traj.is_safe(),
                    traj.energy().to_bits(),
                    traj.states.last().expect("nonempty")[0].to_bits(),
                    events,
                ),
                Err(_) => (false, false, 0, 0, events),
            }
        })
    };
    let reference = run(1);
    assert!(
        reference
            .iter()
            .any(|(_, _, _, _, events)| !events.is_empty()),
        "the random fault plans should trip the degradation monitor at least once"
    );
    for workers in [2, 8] {
        assert_eq!(run(workers), reference, "workers = {workers}");
    }
}

#[test]
fn quarantine_keeps_a_nan_expert_safe() {
    let sys = SystemId::Oscillator.dynamics();
    let eval_config = EvalConfig {
        samples: 80,
        seed: 42,
        ..Default::default()
    };
    // a third, lightly-weighted expert on top of the two cloned ones; this
    // is the one that faults, so the quarantined mixture keeps both strong
    // experts (renormalized 0.45/0.45 → 0.5/0.5)
    let third: Arc<dyn Controller> = Arc::new(cocktail_control::LinearFeedbackController::new(
        cocktail_math::Matrix::from_rows(vec![vec![2.0, 3.0]]),
    ));
    let weights = Arc::new(cocktail_control::ConstantWeights(vec![0.45, 0.45, 0.1]));
    let mix = |last: Arc<dyn Controller>| {
        let experts = oscillator_experts();
        MixedController::new(
            vec![experts[0].clone(), experts[1].clone(), last],
            weights.clone(),
            vec![-20.0],
            vec![20.0],
        )
    };
    let nan_expert = || -> Arc<dyn Controller> {
        Arc::new(FaultyExpert::new(
            third.clone(),
            FaultPlan::permanent(FaultKind::NanOutput),
            7,
        ))
    };

    let healthy = evaluate(sys.as_ref(), &mix(third.clone()), &eval_config);
    let unguarded = evaluate(sys.as_ref(), &mix(nan_expert()), &eval_config);
    let guarded_mixed = mix(nan_expert()).with_degradation(DegradationConfig::default());
    let guarded = evaluate(sys.as_ref(), &guarded_mixed, &eval_config);

    // without quarantine every control is NaN: the rollout aborts and the
    // episode counts as unsafe
    assert_eq!(unguarded.safe_rate, 0.0, "NaN must not count as safe");
    // with quarantine the surviving experts carry the episode: within 5
    // safe-rate points of the all-healthy mixture (the issue's bound)
    assert!(
        (healthy.safe_rate - guarded.safe_rate).abs() <= 0.05,
        "guarded {} vs healthy {}",
        guarded.safe_rate,
        healthy.safe_rate
    );
    assert!(
        guarded.safe_rate > 0.5,
        "guarded rate {} should be far above the unguarded 0",
        guarded.safe_rate
    );
    // the offense is on the record, attributed to the wrapped expert
    let events = guarded_mixed.degradation_events();
    assert!(!events.is_empty(), "quarantine must log events");
    assert!(events
        .iter()
        .all(|e| e.expert == 2 && e.reason == DegradationReason::NonFinite));
}

#[test]
fn telemetry_streams_are_deterministic_and_worker_count_invariant() {
    use cocktail_obs::InMemorySink;
    // same seed, same config: the event stream (durations excluded — wall
    // clock is the one non-deterministic field, and it lives outside the
    // payload) must be byte-identical run over run and for any worker count
    let run = |workers: usize| -> String {
        let sink = Arc::new(InMemorySink::new());
        let result = Cocktail::new(SystemId::Oscillator, oscillator_experts().clone())
            .with_config(tiny_config())
            .with_telemetry(sink.clone())
            .with_workers(workers)
            .run_supervised(&SupervisorConfig::default())
            .expect("healthy run");
        // attaching a sink must not perturb the trained artifacts either
        assert_eq!(&fingerprint(&result), reference_fingerprint());
        let sanitized: Vec<_> = sink
            .take()
            .into_iter()
            .map(cocktail_obs::Event::without_duration)
            .collect();
        serde_json::to_string(&sanitized).expect("events serialize")
    };
    let reference = run(1);
    for name in [
        "pipeline/preflight",
        "pipeline/ppo-mixing",
        "pipeline/dataset",
        "pipeline/direct-distill",
        "pipeline/robust-distill",
        "ppo.minibatch_updates",
        "distill.fgsm_applied",
    ] {
        assert!(reference.contains(name), "stream must mention {name}");
    }
    assert_eq!(run(1), reference, "same seed must replay the same stream");
    for workers in [2, 8] {
        assert_eq!(run(workers), reference, "workers = {workers}");
    }
}

#[test]
fn unsupervised_and_supervised_runs_agree_bit_for_bit() {
    // no checkpoint dir, no divergence: the supervised runner must be a
    // numeric no-op wrapper around the plain pipeline
    let supervised = tiny_run(&SupervisorConfig::default()).expect("healthy run");
    assert_eq!(&fingerprint(&supervised), reference_fingerprint());
}

#[test]
fn kill_and_resume_mid_ppo_matches_the_uninterrupted_run() {
    let dir = temp_dir("mid-ppo");
    std::fs::remove_dir_all(&dir).ok();

    // interrupt after 2 of the 4 PPO iterations
    let interrupted = tiny_run(&SupervisorConfig {
        interrupt_after: Some(2),
        ..SupervisorConfig::to_dir(&dir)
    });
    match interrupted {
        Err(PipelineError::Interrupted { stage, checkpoint }) => {
            assert_eq!(stage, "ppo-mixing");
            assert!(checkpoint.exists(), "checkpoint file must be on disk");
        }
        other => panic!("expected Interrupted, got {:?}", other.err()),
    }

    let resumed = tiny_run(&SupervisorConfig::to_dir(&dir)).expect("resume");
    assert_eq!(&fingerprint(&resumed), reference_fingerprint());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_and_resume_mid_distill_matches_the_uninterrupted_run() {
    let dir = temp_dir("mid-distill");
    std::fs::remove_dir_all(&dir).ok();

    // 4 PPO iterations + 5 of the 12 distillation epochs, then die
    let interrupted = tiny_run(&SupervisorConfig {
        interrupt_after: Some(9),
        ..SupervisorConfig::to_dir(&dir)
    });
    match interrupted {
        Err(PipelineError::Interrupted { stage, checkpoint }) => {
            assert_eq!(stage, "robust-distill");
            assert!(checkpoint.exists());
        }
        other => panic!("expected Interrupted, got {:?}", other.err()),
    }

    let resumed = tiny_run(&SupervisorConfig::to_dir(&dir)).expect("resume");
    assert_eq!(&fingerprint(&resumed), reference_fingerprint());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exhausted_retries_surface_as_a_typed_divergence_error() {
    // an impossibly strict collapse threshold: every unit after the first
    // counts as diverged, so the retry budget must run out
    let result = tiny_run(&SupervisorConfig {
        divergence: DivergenceConfig {
            max_retries: 1,
            collapse_drop: Some(-1.0e18),
        },
        ..SupervisorConfig::default()
    });
    match result {
        Err(PipelineError::Diverged {
            stage, attempts, ..
        }) => {
            assert_eq!(stage, "ppo-mixing");
            assert_eq!(attempts, 2, "initial attempt + 1 retry");
        }
        other => panic!("expected Diverged, got {:?}", other.err()),
    }
}

#[test]
fn checkpoints_from_a_different_seed_are_rejected() {
    let dir = temp_dir("seed-mismatch");
    std::fs::remove_dir_all(&dir).ok();

    let interrupted = tiny_run(&SupervisorConfig {
        interrupt_after: Some(1),
        ..SupervisorConfig::to_dir(&dir)
    });
    assert!(matches!(
        interrupted,
        Err(PipelineError::Interrupted { .. })
    ));

    // the same directory, but a pipeline running a different master seed
    let other_seed = Cocktail::new(SystemId::Oscillator, oscillator_experts().clone())
        .with_config(CocktailConfig {
            seed: 1,
            ..tiny_config()
        })
        .run_supervised(&SupervisorConfig::to_dir(&dir));
    match other_seed {
        Err(PipelineError::Checkpoint { detail, .. }) => {
            assert!(detail.contains("seed"), "{detail}");
        }
        other => panic!("expected Checkpoint error, got {:?}", other.err()),
    }
    std::fs::remove_dir_all(&dir).ok();
}
