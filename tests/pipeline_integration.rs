//! End-to-end pipeline integration tests across all three benchmark
//! systems (smoke preset: small training budgets, seconds per system).

use cocktail_control::Controller;
use cocktail_core::experiment::{
    build_controller_set, fig2_trace, table1_rows, table2_entries, Preset,
};
use cocktail_core::experts::cloned_experts;
use cocktail_core::metrics::{evaluate, EvalConfig};
use cocktail_core::pipeline::Cocktail;
use cocktail_core::SystemId;
use std::sync::OnceLock;

fn smoke_set(sys_id: SystemId) -> &'static cocktail_core::experiment::ControllerSet {
    static OSC: OnceLock<cocktail_core::experiment::ControllerSet> = OnceLock::new();
    static P3D: OnceLock<cocktail_core::experiment::ControllerSet> = OnceLock::new();
    static CP: OnceLock<cocktail_core::experiment::ControllerSet> = OnceLock::new();
    let cell = match sys_id {
        SystemId::Oscillator => &OSC,
        SystemId::Poly3d => &P3D,
        SystemId::CartPole => &CP,
    };
    cell.get_or_init(|| build_controller_set(sys_id, Preset::Smoke, 0))
}

#[test]
fn pipeline_runs_on_all_three_systems() {
    for sys_id in SystemId::all() {
        let set = smoke_set(sys_id);
        let sys = sys_id.dynamics();
        assert_eq!(set.kappa_star.state_dim(), sys.state_dim());
        assert_eq!(set.kappa_star.control_dim(), sys.control_dim());
        assert!(set.kappa_star.lipschitz_constant().is_finite());
        assert!(set.kappa_d.lipschitz_constant().is_finite());
    }
}

#[test]
fn students_are_nontrivial_controllers_everywhere() {
    // the distilled students must act like controllers, not constants:
    // outputs vary with the state and stay inside the control bound
    for sys_id in SystemId::all() {
        let set = smoke_set(sys_id);
        let sys = sys_id.dynamics();
        let (lo, hi) = sys.control_bounds();
        let x0 = sys.initial_set();
        let mut rng = cocktail_math::rng::seeded(1);
        let mut outputs = Vec::new();
        for _ in 0..20 {
            let s = cocktail_math::rng::uniform_in_box(&mut rng, &x0);
            let u = set.kappa_star.control(&s);
            assert_eq!(u.len(), sys.control_dim());
            // students are unclipped MLPs; outputs may exceed U slightly,
            // the rollout clips — but they must stay within 3x the bound
            assert!(
                u[0].abs() <= 3.0 * hi[0].max(-lo[0]),
                "{}: wild output {u:?}",
                sys_id
            );
            outputs.push(u[0]);
        }
        let spread = cocktail_math::stats::std_dev(&outputs);
        assert!(spread > 1e-3, "{sys_id}: student output is constant");
    }
}

#[test]
fn table1_rows_have_the_paper_shape_on_oscillator() {
    let set = smoke_set(SystemId::Oscillator);
    let rows = table1_rows(set, 150, 7);
    let by_name = |n: &str| rows.iter().find(|r| r.controller == n).expect("present");
    let k1 = by_name("kappa1");
    let k2 = by_name("kappa2");
    let aw = by_name("A_W");
    let ks = by_name("kappa_star");
    // mixing must at least match the experts on the safe control rate;
    // the Smoke preset under-trains PPO, so allow a small slack here (the
    // Fast/Full presets used by the bench binaries achieve strict
    // dominance — see EXPERIMENTS.md)
    assert!(
        aw.safe_rate_percent >= k1.safe_rate_percent.max(k2.safe_rate_percent) - 5.0,
        "A_W {} vs experts {}/{}",
        aw.safe_rate_percent,
        k1.safe_rate_percent,
        k2.safe_rate_percent
    );
    // the robust student tracks the teacher closely
    assert!(
        (ks.safe_rate_percent - aw.safe_rate_percent).abs() < 15.0,
        "kappa_star {} vs A_W {}",
        ks.safe_rate_percent,
        aw.safe_rate_percent
    );
    // Lipschitz column: "-" for the composites
    assert!(by_name("A_S").lipschitz.is_none());
    assert!(aw.lipschitz.is_none());
    assert!(ks.lipschitz.is_some());
}

#[test]
fn table2_reports_finite_entries_under_both_threats() {
    let set = smoke_set(SystemId::Oscillator);
    let entries = table2_entries(set, 0.12, 100, 3);
    assert_eq!(entries.len(), 4);
    for e in &entries {
        assert!((0.0..=100.0).contains(&e.safe_rate_percent), "{e:?}");
        assert!(e.energy.is_finite() || e.safe_rate_percent == 0.0, "{e:?}");
    }
}

#[test]
fn fig2_traces_cover_the_horizon() {
    let set = smoke_set(SystemId::Oscillator);
    let trace = fig2_trace(set, 0.12, 5);
    let horizon = SystemId::Oscillator.dynamics().horizon();
    assert_eq!(trace.kappa_d.len(), horizon);
    assert_eq!(trace.kappa_star.len(), horizon);
}

#[test]
fn pipeline_is_reproducible_from_the_seed() {
    let sys_id = SystemId::Oscillator;
    let run = || {
        let experts = cloned_experts(sys_id, 3);
        Cocktail::new(sys_id, experts)
            .with_config(Preset::Smoke.config())
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.kappa_star.network(), b.kappa_star.network());
    assert_eq!(a.kappa_d.network(), b.kappa_d.network());
}

#[test]
fn evaluation_sample_count_controls_result_granularity() {
    let set = smoke_set(SystemId::Oscillator);
    let sys = SystemId::Oscillator.dynamics();
    let small = evaluate(
        sys.as_ref(),
        set.kappa_star.as_ref(),
        &EvalConfig {
            samples: 10,
            ..Default::default()
        },
    );
    assert_eq!(small.samples, 10);
    assert!(small.safe_count <= 10);
}
