//! Integration tests of the verification stack against pipeline-produced
//! students: the certificates must be sound for the *actual* networks the
//! framework emits, and the analyses must agree with simulation.

#![allow(clippy::expect_used, clippy::unwrap_used)] // test helpers panic on setup failure by design

use cocktail_control::Controller;
use cocktail_core::experiment::{build_controller_set, ControllerSet, Preset};
use cocktail_core::SystemId;
use cocktail_env::{rollout, RolloutConfig};
use cocktail_math::BoxRegion;
use cocktail_verify::lyapunov::{
    solve_discrete_lyapunov, verify_ellipsoid_invariant, QuadraticForm,
};
use cocktail_verify::reach::ReachMode;
use cocktail_verify::{
    invariant_set, reach_analysis, BernsteinCertificate, CertificateConfig, ControlEnclosure,
    InvariantConfig, ReachConfig, VerifyError,
};
use std::sync::OnceLock;

fn oscillator_set() -> &'static ControllerSet {
    static CELL: OnceLock<ControllerSet> = OnceLock::new();
    CELL.get_or_init(|| build_controller_set(SystemId::Oscillator, Preset::Smoke, 0))
}

fn certificate(student: &cocktail_control::NnController) -> BernsteinCertificate {
    let sys = SystemId::Oscillator.dynamics();
    BernsteinCertificate::build(
        student.network(),
        student.scale(),
        &sys.verification_domain(),
        &CertificateConfig {
            degree: 4,
            tolerance: 0.3,
            max_pieces: 1 << 17,
            error_samples_per_dim: 7,
        },
    )
    .expect("smoke students fit the budget")
}

#[test]
fn certificate_is_sound_for_pipeline_students() {
    let set = oscillator_set();
    let sys = SystemId::Oscillator.dynamics();
    for student in [&set.kappa_star, &set.kappa_d] {
        let cert = certificate(student);
        let mut rng = cocktail_math::rng::seeded(2);
        for _ in 0..200 {
            let s = cocktail_math::rng::uniform_in_box(&mut rng, &sys.verification_domain());
            let truth = student.control(&s)[0];
            let tiny =
                BoxRegion::from_bounds(&[s[0] - 1e-9, s[1] - 1e-9], &[s[0] + 1e-9, s[1] + 1e-9])
                    .intersect(&sys.verification_domain())
                    .expect("inside");
            let bound = cert.enclose(&tiny)[0];
            assert!(
                bound.inflate(1e-6).contains(truth),
                "{truth} escapes {bound}"
            );
        }
    }
}

#[test]
fn certified_invariant_cells_are_safe_under_simulation() {
    let set = oscillator_set();
    let sys = SystemId::Oscillator.dynamics();
    let cert = certificate(&set.kappa_star);
    let inv = invariant_set(
        sys.as_ref(),
        &cert,
        &InvariantConfig {
            grid: 50,
            max_iterations: 500,
        },
    )
    .expect("dimensions agree");
    // the smoke student may or may not admit a non-empty grid-invariant
    // set; when it does, every cell must be safe under long simulation
    let cells = inv.cells();
    if cells.is_empty() {
        return;
    }
    let mut rng = cocktail_math::rng::seeded(3);
    for (i, cell) in cells.iter().step_by(cells.len().div_ceil(25)).enumerate() {
        let s0 = cocktail_math::rng::uniform_in_box(&mut rng, cell);
        let mut control = |s: &[f64]| set.kappa_star.control(s);
        let mut no_attack = |_t: usize, s: &[f64]| vec![0.0; s.len()];
        let traj = rollout(
            sys.as_ref(),
            &mut control,
            &mut no_attack,
            &s0,
            &RolloutConfig {
                horizon: Some(500),
                seed: i as u64,
                ..Default::default()
            },
        );
        assert!(
            traj.is_safe(),
            "invariant cell {cell} produced unsafe trajectory"
        );
    }
}

#[test]
fn reach_frames_contain_simulated_student_trajectories() {
    let set = oscillator_set();
    let sys = SystemId::Oscillator.dynamics();
    let cert = certificate(&set.kappa_star);
    let x0 = BoxRegion::from_bounds(&[0.2, 0.2], &[0.3, 0.3]);
    let result = reach_analysis(
        sys.as_ref(),
        &cert,
        &x0,
        &ReachConfig {
            steps: 12,
            split_width: 0.05,
            mode: ReachMode::Subdivision,
            ..Default::default()
        },
    )
    .expect("verifies");
    // the reach analysis assumes worst-case disturbance; simulate with the
    // sampled disturbance and check frame membership
    let mut rng = cocktail_math::rng::seeded(5);
    for run in 0..10 {
        let mut s = cocktail_math::rng::uniform_in_box(&mut rng, &x0);
        let mut omega_rng = cocktail_math::rng::seeded(run);
        for frame in &result.frames {
            assert!(
                frame.iter().any(|b| b.inflate(1e-9).contains(&s)),
                "state {s:?} escapes its frame"
            );
            let u = sys.clip_control(&set.kappa_star.control(&s));
            let w = cocktail_math::rng::uniform_symmetric(&mut omega_rng, 1, 0.05);
            s = sys.step(&s, &u, &w);
        }
    }
}

#[test]
fn tighter_budgets_fail_gracefully_not_catastrophically() {
    let set = oscillator_set();
    let sys = SystemId::Oscillator.dynamics();
    let result = BernsteinCertificate::build(
        set.kappa_d.network(),
        set.kappa_d.scale(),
        &sys.verification_domain(),
        &CertificateConfig {
            degree: 4,
            tolerance: 1e-4,
            max_pieces: 64,
            error_samples_per_dim: 5,
        },
    );
    assert!(matches!(result, Err(VerifyError::ResourceExhausted { .. })));
}

/// Lyapunov path on a pipeline student: linearize the *neural* closed
/// loop at the attractor numerically, solve the discrete Lyapunov
/// equation, and soundly verify an ellipsoidal invariant set with the
/// Bernstein enclosure.
#[test]
fn ellipsoid_certificate_for_pipeline_student() {
    let set = oscillator_set();
    let sys = SystemId::Oscillator.dynamics();
    let student = &set.kappa_star;

    // find the closed-loop equilibrium by long simulation from the origin
    let mut s_eq = vec![0.0, 0.0];
    for _ in 0..4000 {
        let u = sys.clip_control(&student.control(&s_eq));
        s_eq = sys.step(&s_eq, &u, &[0.0]);
    }
    // numeric Jacobian of the closed loop at the equilibrium
    let h = 1e-6;
    let mut a_cl = cocktail_math::Matrix::zeros(2, 2);
    for j in 0..2 {
        let mut sp = s_eq.clone();
        sp[j] += h;
        let mut sm = s_eq.clone();
        sm[j] -= h;
        let fp = sys.step(&sp, &sys.clip_control(&student.control(&sp)), &[0.0]);
        let fm = sys.step(&sm, &sys.clip_control(&student.control(&sm)), &[0.0]);
        for i in 0..2 {
            a_cl[(i, j)] = (fp[i] - fm[i]) / (2.0 * h);
        }
    }
    let p = match solve_discrete_lyapunov(&a_cl, &cocktail_math::Matrix::identity(2)) {
        Ok(p) => p,
        // a smoke-trained student may be only marginally contractive at
        // its equilibrium; that refutes nothing about the machinery
        Err(_) => return,
    };
    // symmetrize numeric asymmetry before constructing the form
    let p_sym = cocktail_math::Matrix::from_fn(2, 2, |i, j| 0.5 * (p[(i, j)] + p[(j, i)]));
    let form = QuadraticForm::new(p_sym);
    let cert = certificate(student);
    // probe a few levels; whichever verifies must report a sound ratio.
    // note: the form is centred at the origin while the student's true
    // equilibrium may be offset, so small levels can legitimately fail.
    let p_inv = match cocktail_math::linalg::inverse(form.matrix()) {
        Ok(m) => m,
        Err(_) => return,
    };
    let max_diag = p_inv[(0, 0)].max(p_inv[(1, 1)]);
    for radius in [1.0, 1.3, 1.6] {
        let c = radius * radius / max_diag;
        if let Ok(check) = verify_ellipsoid_invariant(sys.as_ref(), &cert, &form, c, 20) {
            if check.invariant {
                assert!(check.worst_ratio <= 1.0);
                assert!(check.cells_checked > 0);
                return;
            }
        }
    }
    // no level verifying is acceptable for a smoke-budget student; the
    // machinery itself is covered by the unit tests
}

#[test]
fn verification_cost_tracks_the_lipschitz_gap() {
    // the paper's core verifiability claim: the lower-Lipschitz student is
    // cheaper to certify (fewer Bernstein pieces) whenever the L gap is
    // substantial
    let set = oscillator_set();
    let l_star = set.kappa_star.lipschitz_constant();
    let l_d = set.kappa_d.lipschitz_constant();
    if l_d < 1.5 * l_star {
        // smoke-budget training happened to produce similar constants;
        // the claim is only meaningful with a real gap
        return;
    }
    let cert_star = certificate(&set.kappa_star);
    let cert_d = certificate(&set.kappa_d);
    assert!(
        cert_star.piece_count() <= cert_d.piece_count(),
        "kappa_star (L={l_star:.1}) needed {} pieces vs kappa_D (L={l_d:.1}) {}",
        cert_star.piece_count(),
        cert_d.piece_count()
    );
}
