//! Cross-crate consistency tests: the contracts between the environment,
//! control, RL and distillation crates that no single crate can test
//! alone.

use cocktail_control::{ConstantWeights, Controller, LinearFeedbackController, MixedController};
use cocktail_core::experts::reference_laws;
use cocktail_core::metrics::{evaluate, signal_trace, EvalConfig};
use cocktail_core::SystemId;
use cocktail_distill::{AttackModel, TeacherDataset};
use cocktail_env::{rollout, RolloutConfig};
use cocktail_math::Matrix;
use cocktail_rl::{Mdp, MixingMdp, RewardConfig};
use std::sync::Arc;

/// The mixing MDP's plant input must equal the `MixedController`'s output
/// for the same weights (Eq. 4 implemented twice must agree).
#[test]
fn mixing_mdp_agrees_with_mixed_controller() {
    let sys_id = SystemId::Oscillator;
    let sys = sys_id.dynamics();
    let (law1, law2) = reference_laws(sys_id);
    let experts: Vec<Arc<dyn Controller>> = vec![
        Arc::new(law1.controller("e1")),
        Arc::new(law2.controller("e2")),
    ];
    let weights = vec![0.7, -1.2];
    let (u_lo, u_hi) = sys.control_bounds();
    let mixed = MixedController::new(
        experts.clone(),
        Arc::new(ConstantWeights(weights.clone())),
        u_lo,
        u_hi,
    );

    // drive the MDP with the same constant weights and compare the
    // resulting state sequence with a rollout of the MixedController
    let reward = RewardConfig::default();
    let mut mdp = MixingMdp::new(sys.clone(), experts, 2.0, reward, 9);
    let mut rng = cocktail_math::rng::seeded(10);
    let s0 = mdp.reset(&mut rng);

    let mut control_fn = |s: &[f64]| mixed.control(s);
    let mut no_attack = |_t: usize, s: &[f64]| vec![0.0; s.len()];
    let traj = rollout(
        sys.as_ref(),
        &mut control_fn,
        &mut no_attack,
        &s0,
        &RolloutConfig {
            horizon: Some(20),
            seed: 9,
            stop_on_violation: false,
            ..Default::default()
        },
    );

    let mut mdp_states = vec![s0.clone()];
    loop {
        let (next, _, done) = mdp.step(&weights);
        mdp_states.push(next);
        if done || mdp_states.len() > 20 {
            break;
        }
    }
    // both paths sample ω from the same seeded stream
    for (a, b) in traj.states.iter().zip(&mdp_states) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "state divergence: {a:?} vs {b:?}");
        }
    }
}

/// FGSM perturbations must respect their bound along a full rollout, and
/// attacked evaluations must never *increase* the safe rate on a fragile
/// controller.
#[test]
fn fgsm_bound_respected_in_closed_loop() {
    let sys = SystemId::Oscillator.dynamics();
    let (law1, _) = reference_laws(SystemId::Oscillator);
    let controller = law1.controller("victim");
    let domain = sys.verification_domain();
    let attack = AttackModel::scaled_to(&domain, 0.15, true);
    let bound: Vec<f64> = domain
        .intervals()
        .iter()
        .map(|iv| 0.15 * iv.radius())
        .collect();

    let mut perturb = attack.perturbation(&controller, 3);
    let mut max_seen = [0.0_f64; 2];
    let mut control_fn = |s: &[f64]| controller.control(s);
    let mut checked_perturb = |t: usize, s: &[f64]| {
        let d = perturb(t, s);
        for (m, v) in max_seen.iter_mut().zip(&d) {
            *m = m.max(v.abs());
        }
        d
    };
    let _ = rollout(
        sys.as_ref(),
        &mut control_fn,
        &mut checked_perturb,
        &[0.5, 0.5],
        &RolloutConfig::default(),
    );
    for (seen, b) in max_seen.iter().zip(&bound) {
        assert!(
            seen <= &(b + 1e-12),
            "perturbation {seen} exceeds bound {b}"
        );
        assert!(*seen > 0.0, "FGSM must actually perturb");
    }
}

/// Energy accounting: the evaluation's mean energy must match a manual
/// recomputation from trajectories.
#[test]
fn evaluation_energy_matches_manual_recomputation() {
    let sys = SystemId::Oscillator.dynamics();
    let controller = LinearFeedbackController::new(Matrix::from_rows(vec![vec![3.0, 4.0]]));
    let cfg = EvalConfig {
        samples: 40,
        seed: 21,
        ..Default::default()
    };
    let eval = evaluate(sys.as_ref(), &controller, &cfg);

    // manual: same seeds, same sampling protocol
    let mut rng = cocktail_math::rng::seeded(cfg.seed);
    let x0 = sys.initial_set();
    let mut energies = Vec::new();
    let mut safe = 0;
    for i in 0..cfg.samples {
        let s0 = cocktail_math::rng::uniform_in_box(&mut rng, &x0);
        let mut control_fn = |s: &[f64]| controller.control(s);
        let mut no_attack = |_t: usize, s: &[f64]| vec![0.0; s.len()];
        let traj = rollout(
            sys.as_ref(),
            &mut control_fn,
            &mut no_attack,
            &s0,
            &RolloutConfig {
                seed: cfg.seed.wrapping_add(1).wrapping_add(i as u64),
                ..Default::default()
            },
        );
        if traj.is_safe() {
            safe += 1;
            energies.push(traj.energy());
        }
    }
    assert_eq!(eval.safe_count, safe);
    assert!((eval.mean_energy - cocktail_math::stats::mean(&energies)).abs() < 1e-9);
}

/// Teacher datasets must be consistent with the teacher they sample.
#[test]
fn dataset_labels_match_live_teacher_queries() {
    let sys = SystemId::Poly3d.dynamics();
    let (_, law2) = reference_laws(SystemId::Poly3d);
    let teacher = law2.controller("teacher");
    let data = TeacherDataset::sample_on_policy(&teacher, sys.as_ref(), 2, 5);
    for (s, u) in data.states().iter().zip(data.controls()).take(50) {
        assert_eq!(u, &teacher.control(s));
    }
}

/// Signal traces must agree with the applied (clipped) controls of a
/// rollout under the same attack and seed.
#[test]
fn signal_trace_matches_rollout_controls() {
    let sys = SystemId::Oscillator.dynamics();
    let (law1, _) = reference_laws(SystemId::Oscillator);
    let controller = law1.controller("traced");
    let attack = AttackModel::scaled_to(&sys.verification_domain(), 0.1, true);
    let trace = signal_trace(sys.as_ref(), &controller, &[1.0, -1.0], &attack, 17);
    let (lo, hi) = sys.control_bounds();
    assert_eq!(trace.len(), sys.horizon());
    assert!(trace.iter().all(|u| (lo[0]..=hi[0]).contains(u)));
}

/// Rollouts must be invariant to the controller's internal representation:
/// a cloned network driven through `Arc<dyn Controller>` and through the
/// concrete type must produce identical trajectories.
#[test]
fn dyn_dispatch_does_not_change_behaviour() {
    let sys = SystemId::Oscillator.dynamics();
    let concrete = LinearFeedbackController::new(Matrix::from_rows(vec![vec![2.0, 3.0]]));
    let dynamic: Arc<dyn Controller> = Arc::new(concrete.clone());
    let run = |c: &dyn Controller| {
        let mut control_fn = |s: &[f64]| c.control(s);
        let mut no_attack = |_t: usize, s: &[f64]| vec![0.0; s.len()];
        rollout(
            sys.as_ref(),
            &mut control_fn,
            &mut no_attack,
            &[1.0, 1.0],
            &RolloutConfig {
                seed: 2,
                ..Default::default()
            },
        )
    };
    assert_eq!(run(&concrete).states, run(dynamic.as_ref()).states);
}
