//! Teacher-labelled training data for distillation.

use cocktail_control::Controller;
use cocktail_env::{rollout, Dynamics, RolloutConfig};
use cocktail_math::{parallel, rng, BoxRegion};

/// A set of `(state, teacher control)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct TeacherDataset {
    states: Vec<Vec<f64>>,
    controls: Vec<Vec<f64>>,
}

impl TeacherDataset {
    /// Builds a dataset from parallel state/control vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are empty or their lengths differ.
    pub fn new(states: Vec<Vec<f64>>, controls: Vec<Vec<f64>>) -> Self {
        assert!(!states.is_empty(), "dataset is empty");
        assert_eq!(
            states.len(),
            controls.len(),
            "states/controls length mismatch"
        );
        Self { states, controls }
    }

    /// Labels `count` uniformly-sampled states of `domain` with the
    /// teacher's control. Labeling runs on [`parallel::default_workers`]
    /// threads; the result is identical for any worker count.
    pub fn sample_uniform(
        teacher: &dyn Controller,
        domain: &BoxRegion,
        count: usize,
        seed: u64,
    ) -> Self {
        Self::sample_uniform_with_workers(teacher, domain, count, seed, parallel::default_workers())
    }

    /// [`Self::sample_uniform`] with an explicit worker count.
    pub fn sample_uniform_with_workers(
        teacher: &dyn Controller,
        domain: &BoxRegion,
        count: usize,
        seed: u64,
        workers: usize,
    ) -> Self {
        assert!(count > 0, "dataset needs at least one sample");
        let mut r = rng::seeded(seed);
        let states = rng::sample_box(&mut r, domain, count);
        let controls =
            parallel::map_indexed_with_workers(&states, workers, |_, s| teacher.control(s));
        Self { states, controls }
    }

    /// Labels the states visited by the teacher's own closed-loop
    /// trajectories from `episodes` random initial states — the
    /// distribution the student will actually be queried on. Episodes
    /// roll out on [`parallel::default_workers`] threads; the result is
    /// identical for any worker count.
    pub fn sample_on_policy(
        teacher: &dyn Controller,
        sys: &dyn Dynamics,
        episodes: usize,
        seed: u64,
    ) -> Self {
        Self::sample_on_policy_with_workers(
            teacher,
            sys,
            episodes,
            seed,
            parallel::default_workers(),
        )
    }

    /// [`Self::sample_on_policy`] with an explicit worker count.
    pub fn sample_on_policy_with_workers(
        teacher: &dyn Controller,
        sys: &dyn Dynamics,
        episodes: usize,
        seed: u64,
        workers: usize,
    ) -> Self {
        assert!(episodes > 0, "dataset needs at least one episode");
        // Initial states come from one shared stream, drawn up front so
        // the episodes themselves can run on any number of workers
        // without changing what each one sees.
        let mut r = rng::seeded(seed);
        let starts: Vec<Vec<f64>> = (0..episodes)
            .map(|_| rng::uniform_in_box(&mut r, &sys.initial_set()))
            .collect();
        let episodes_data = parallel::map_indexed_with_workers(&starts, workers, |ep, s0| {
            let mut control_fn = |s: &[f64]| teacher.control(s);
            let mut no_attack = |_t: usize, s: &[f64]| vec![0.0; s.len()];
            let traj = rollout(
                sys,
                &mut control_fn,
                &mut no_attack,
                s0,
                &RolloutConfig {
                    seed: seed.wrapping_add(ep as u64),
                    ..Default::default()
                },
            );
            let controls: Vec<Vec<f64>> = traj.states.iter().map(|s| teacher.control(s)).collect();
            (traj.states, controls)
        });
        let mut states = Vec::new();
        let mut controls = Vec::new();
        for (s, c) in episodes_data {
            states.extend(s);
            controls.extend(c);
        }
        Self::new(states, controls)
    }

    /// Concatenates two datasets.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions disagree.
    pub fn merge(mut self, other: TeacherDataset) -> Self {
        assert_eq!(
            self.states[0].len(),
            other.states[0].len(),
            "state dimension mismatch"
        );
        assert_eq!(
            self.controls[0].len(),
            other.controls[0].len(),
            "control dimension mismatch"
        );
        self.states.extend(other.states);
        self.controls.extend(other.controls);
        self
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the dataset is empty (never true for a constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The sampled states.
    pub fn states(&self) -> &[Vec<f64>] {
        &self.states
    }

    /// The teacher's control labels.
    pub fn controls(&self) -> &[Vec<f64>] {
        &self.controls
    }

    /// State dimension.
    pub fn state_dim(&self) -> usize {
        self.states[0].len()
    }

    /// Control dimension.
    pub fn control_dim(&self) -> usize {
        self.controls[0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_control::LinearFeedbackController;
    use cocktail_env::systems::VanDerPol;
    use cocktail_math::Matrix;

    fn teacher() -> LinearFeedbackController {
        LinearFeedbackController::new(Matrix::from_rows(vec![vec![2.0, 2.0]]))
    }

    #[test]
    fn uniform_sampling_labels_match_teacher() {
        let t = teacher();
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let data = TeacherDataset::sample_uniform(&t, &domain, 50, 1);
        assert_eq!(data.len(), 50);
        for (s, u) in data.states().iter().zip(data.controls()) {
            assert!(domain.contains(s));
            assert_eq!(u, &t.control(s));
        }
    }

    #[test]
    fn on_policy_sampling_visits_trajectory_states() {
        let t = teacher();
        let sys = VanDerPol::new();
        let data = TeacherDataset::sample_on_policy(&t, &sys, 3, 2);
        // 3 episodes × (≤101 states each)
        assert!(data.len() > 100, "got {}", data.len());
        assert_eq!(data.state_dim(), 2);
        assert_eq!(data.control_dim(), 1);
    }

    #[test]
    fn merge_concatenates() {
        let t = teacher();
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let a = TeacherDataset::sample_uniform(&t, &domain, 10, 1);
        let b = TeacherDataset::sample_uniform(&t, &domain, 20, 2);
        let merged = a.merge(b);
        assert_eq!(merged.len(), 30);
    }

    #[test]
    fn uniform_sampling_is_worker_count_invariant() {
        let t = teacher();
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let reference = TeacherDataset::sample_uniform_with_workers(&t, &domain, 64, 9, 1);
        for workers in [2, 8] {
            let got = TeacherDataset::sample_uniform_with_workers(&t, &domain, 64, 9, workers);
            assert_eq!(got, reference, "workers = {workers}");
        }
    }

    #[test]
    fn on_policy_sampling_is_worker_count_invariant() {
        let t = teacher();
        let sys = VanDerPol::new();
        let reference = TeacherDataset::sample_on_policy_with_workers(&t, &sys, 6, 4, 1);
        for workers in [2, 8] {
            let got = TeacherDataset::sample_on_policy_with_workers(&t, &sys, 6, 4, workers);
            assert_eq!(got, reference, "workers = {workers}");
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let t = teacher();
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let a = TeacherDataset::sample_uniform(&t, &domain, 10, 7);
        let b = TeacherDataset::sample_uniform(&t, &domain, 10, 7);
        assert_eq!(a, b);
    }
}
