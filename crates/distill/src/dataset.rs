//! Teacher-labelled training data for distillation.

use cocktail_control::Controller;
use cocktail_env::{rollout, Dynamics, RolloutConfig};
use cocktail_math::{rng, BoxRegion};

/// A set of `(state, teacher control)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct TeacherDataset {
    states: Vec<Vec<f64>>,
    controls: Vec<Vec<f64>>,
}

impl TeacherDataset {
    /// Builds a dataset from parallel state/control vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are empty or their lengths differ.
    pub fn new(states: Vec<Vec<f64>>, controls: Vec<Vec<f64>>) -> Self {
        assert!(!states.is_empty(), "dataset is empty");
        assert_eq!(
            states.len(),
            controls.len(),
            "states/controls length mismatch"
        );
        Self { states, controls }
    }

    /// Labels `count` uniformly-sampled states of `domain` with the
    /// teacher's control.
    pub fn sample_uniform(
        teacher: &dyn Controller,
        domain: &BoxRegion,
        count: usize,
        seed: u64,
    ) -> Self {
        assert!(count > 0, "dataset needs at least one sample");
        let mut r = rng::seeded(seed);
        let states = rng::sample_box(&mut r, domain, count);
        let controls = states.iter().map(|s| teacher.control(s)).collect();
        Self { states, controls }
    }

    /// Labels the states visited by the teacher's own closed-loop
    /// trajectories from `episodes` random initial states — the
    /// distribution the student will actually be queried on.
    pub fn sample_on_policy(
        teacher: &dyn Controller,
        sys: &dyn Dynamics,
        episodes: usize,
        seed: u64,
    ) -> Self {
        assert!(episodes > 0, "dataset needs at least one episode");
        let mut r = rng::seeded(seed);
        let mut states = Vec::new();
        let mut controls = Vec::new();
        for ep in 0..episodes {
            let s0 = rng::uniform_in_box(&mut r, &sys.initial_set());
            let mut control_fn = |s: &[f64]| teacher.control(s);
            let mut no_attack = |_t: usize, s: &[f64]| vec![0.0; s.len()];
            let traj = rollout(
                sys,
                &mut control_fn,
                &mut no_attack,
                &s0,
                &RolloutConfig {
                    seed: seed.wrapping_add(ep as u64),
                    ..Default::default()
                },
            );
            for s in &traj.states {
                states.push(s.clone());
                controls.push(teacher.control(s));
            }
        }
        Self::new(states, controls)
    }

    /// Concatenates two datasets.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions disagree.
    pub fn merge(mut self, other: TeacherDataset) -> Self {
        assert_eq!(
            self.states[0].len(),
            other.states[0].len(),
            "state dimension mismatch"
        );
        assert_eq!(
            self.controls[0].len(),
            other.controls[0].len(),
            "control dimension mismatch"
        );
        self.states.extend(other.states);
        self.controls.extend(other.controls);
        self
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the dataset is empty (never true for a constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The sampled states.
    pub fn states(&self) -> &[Vec<f64>] {
        &self.states
    }

    /// The teacher's control labels.
    pub fn controls(&self) -> &[Vec<f64>] {
        &self.controls
    }

    /// State dimension.
    pub fn state_dim(&self) -> usize {
        self.states[0].len()
    }

    /// Control dimension.
    pub fn control_dim(&self) -> usize {
        self.controls[0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_control::LinearFeedbackController;
    use cocktail_env::systems::VanDerPol;
    use cocktail_math::Matrix;

    fn teacher() -> LinearFeedbackController {
        LinearFeedbackController::new(Matrix::from_rows(vec![vec![2.0, 2.0]]))
    }

    #[test]
    fn uniform_sampling_labels_match_teacher() {
        let t = teacher();
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let data = TeacherDataset::sample_uniform(&t, &domain, 50, 1);
        assert_eq!(data.len(), 50);
        for (s, u) in data.states().iter().zip(data.controls()) {
            assert!(domain.contains(s));
            assert_eq!(u, &t.control(s));
        }
    }

    #[test]
    fn on_policy_sampling_visits_trajectory_states() {
        let t = teacher();
        let sys = VanDerPol::new();
        let data = TeacherDataset::sample_on_policy(&t, &sys, 3, 2);
        // 3 episodes × (≤101 states each)
        assert!(data.len() > 100, "got {}", data.len());
        assert_eq!(data.state_dim(), 2);
        assert_eq!(data.control_dim(), 1);
    }

    #[test]
    fn merge_concatenates() {
        let t = teacher();
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let a = TeacherDataset::sample_uniform(&t, &domain, 10, 1);
        let b = TeacherDataset::sample_uniform(&t, &domain, 20, 2);
        let merged = a.merge(b);
        assert_eq!(merged.len(), 30);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let t = teacher();
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let a = TeacherDataset::sample_uniform(&t, &domain, 10, 7);
        let b = TeacherDataset::sample_uniform(&t, &domain, 10, 7);
        assert_eq!(a, b);
    }
}
