//! Evaluation-time threat models (Table II): FGSM adversarial attacks and
//! uniform measurement noise on the observed state.

use cocktail_control::Controller;
use cocktail_math::{rng, vector, BoxRegion};
use serde::{Deserialize, Serialize};

/// Sign of the gradient of the control-magnitude objective
/// `g(s) = ‖κ(s)‖²` with respect to the state, computed by central finite
/// differences (controller-agnostic; state dimensions here are ≤ 4).
///
/// FGSM with this objective destabilizes the closed loop by steering the
/// controller toward its most aggressive response — exactly the failure
/// signature Table II shows for `κ_D` (energy blow-up, lost safety).
///
/// All `2·dim` probe states are evaluated through one
/// [`Controller::control_batch`] call, so neural controllers pay a single
/// batched forward per direction; the result is identical to probing one
/// state at a time.
///
/// # Panics
///
/// Panics if `s.len() != controller.state_dim()`.
pub fn fgsm_direction(controller: &dyn Controller, s: &[f64]) -> Vec<f64> {
    assert_eq!(s.len(), controller.state_dim(), "state dimension mismatch");
    let h = 1e-5;
    let mut probes = Vec::with_capacity(2 * s.len());
    for i in 0..s.len() {
        let mut xp = s.to_vec();
        xp[i] += h;
        probes.push(xp);
        let mut xm = s.to_vec();
        xm[i] -= h;
        probes.push(xm);
    }
    let us = controller.control_batch(&probes);
    let grad: Vec<f64> = (0..s.len())
        .map(|i| {
            let op = vector::dot(&us[2 * i], &us[2 * i]);
            let om = vector::dot(&us[2 * i + 1], &us[2 * i + 1]);
            (op - om) / (2.0 * h)
        })
        .collect();
    vector::sign(&grad)
}

/// Projected gradient descent on the control-magnitude objective: `steps`
/// iterations of step size `Δ/steps` along the FGSM direction, each
/// projected back into the `±Δ` box. Strictly stronger than single-step
/// FGSM (a one-step PGD *is* FGSM) — an extension beyond the paper's
/// evaluation used in the ablation suite.
///
/// # Panics
///
/// Panics if `steps == 0` or `s.len() != bound.len()`.
pub fn pgd_perturbation(
    controller: &dyn Controller,
    s: &[f64],
    bound: &[f64],
    steps: usize,
) -> Vec<f64> {
    assert!(steps > 0, "PGD needs at least one step");
    assert_eq!(s.len(), bound.len(), "bound dimension mismatch");
    let mut delta = vec![0.0; s.len()];
    for _ in 0..steps {
        let probe = vector::add(s, &delta);
        let dir = fgsm_direction(controller, &probe);
        for ((d, g), b) in delta.iter_mut().zip(&dir).zip(bound) {
            *d = (*d + g * b / steps as f64).clamp(-b, *b);
        }
    }
    delta
}

/// A materialized per-step perturbation closure `(t, s) ↦ δ`, as consumed
/// by `cocktail_env::rollout`.
pub type Perturbation<'c> = Box<dyn FnMut(usize, &[f64]) -> Vec<f64> + 'c>;

/// A per-step perturbation `δ(t)` applied to the controller's observation.
///
/// The paper evaluates at noise/attack amplitudes of 10–15 % of the state
/// bound; [`AttackModel::scaled_to`] derives the per-dimension amplitude
/// from a domain box and a fraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttackModel {
    /// No perturbation (`δ = 0`).
    None,
    /// Per-step uniform noise with the given per-dimension amplitudes.
    UniformNoise(Vec<f64>),
    /// FGSM: `δ = Δ ⊙ sign(∇_s ‖κ(s)‖²)` with per-dimension bounds `Δ`.
    Fgsm(Vec<f64>),
    /// Multi-step PGD with the given per-dimension bounds and step count
    /// (strictly generalizes FGSM; extension beyond the paper).
    Pgd {
        /// Per-dimension perturbation bounds `Δ`.
        bound: Vec<f64>,
        /// Gradient steps per perturbation.
        steps: usize,
    },
}

impl AttackModel {
    /// Derives per-dimension amplitudes as `fraction` of each dimension's
    /// half-width in `domain`; `kind` selects noise or FGSM.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative.
    pub fn scaled_to(domain: &BoxRegion, fraction: f64, adversarial: bool) -> Self {
        assert!(fraction >= 0.0, "fraction must be non-negative");
        if fraction == 0.0 {
            return AttackModel::None;
        }
        let amp: Vec<f64> = domain
            .intervals()
            .iter()
            .map(|iv| fraction * iv.radius())
            .collect();
        if adversarial {
            AttackModel::Fgsm(amp)
        } else {
            AttackModel::UniformNoise(amp)
        }
    }

    /// Materializes the perturbation closure for a rollout against
    /// `controller`. Each call site gets an independent seeded RNG.
    pub fn perturbation<'c>(&self, controller: &'c dyn Controller, seed: u64) -> Perturbation<'c> {
        match self.clone() {
            AttackModel::None => Box::new(|_t, s: &[f64]| vec![0.0; s.len()]),
            AttackModel::UniformNoise(amp) => {
                let mut r = rng::seeded(seed);
                Box::new(move |_t, s: &[f64]| {
                    assert_eq!(s.len(), amp.len(), "amplitude dimension mismatch");
                    amp.iter()
                        .map(|&a| {
                            if a > 0.0 {
                                rng::uniform_symmetric(&mut r, 1, a)[0]
                            } else {
                                0.0
                            }
                        })
                        .collect()
                })
            }
            AttackModel::Fgsm(bound) => Box::new(move |_t, s: &[f64]| {
                assert_eq!(s.len(), bound.len(), "bound dimension mismatch");
                let dir = fgsm_direction(controller, s);
                dir.iter().zip(&bound).map(|(d, b)| d * b).collect()
            }),
            AttackModel::Pgd { bound, steps } => {
                Box::new(move |_t, s: &[f64]| pgd_perturbation(controller, s, &bound, steps))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_control::LinearFeedbackController;
    use cocktail_math::Matrix;

    fn controller() -> LinearFeedbackController {
        LinearFeedbackController::new(Matrix::from_rows(vec![vec![3.0, -1.0]]))
    }

    #[test]
    fn fgsm_direction_maximizes_control_magnitude() {
        // u = -(3s₁ - s₂); ‖u‖² grows with |3s₁ - s₂|. At s = (1, 0),
        // u = -3: increasing s₁ increases |u| ⇒ ∂‖u‖²/∂s₁ > 0.
        let dir = fgsm_direction(&controller(), &[1.0, 0.0]);
        assert_eq!(dir, vec![1.0, -1.0]);
        // at the mirror state the gradient flips
        let dir = fgsm_direction(&controller(), &[-1.0, 0.0]);
        assert_eq!(dir, vec![-1.0, 1.0]);
    }

    #[test]
    fn fgsm_perturbation_respects_bound() {
        let c = controller();
        let model = AttackModel::Fgsm(vec![0.2, 0.3]);
        let mut p = model.perturbation(&c, 0);
        let d = p(0, &[1.0, 0.5]);
        assert!(d[0].abs() <= 0.2 + 1e-12 && d[1].abs() <= 0.3 + 1e-12);
        assert!(d[0].abs() == 0.2 || d[0] == 0.0, "FGSM saturates the bound");
    }

    #[test]
    fn uniform_noise_respects_bound_and_varies() {
        let c = controller();
        let model = AttackModel::UniformNoise(vec![0.1, 0.1]);
        let mut p = model.perturbation(&c, 1);
        let d1 = p(0, &[0.0, 0.0]);
        let d2 = p(1, &[0.0, 0.0]);
        assert!(d1.iter().all(|x| x.abs() <= 0.1));
        assert_ne!(d1, d2, "noise must vary step to step");
    }

    #[test]
    fn none_is_zero() {
        let c = controller();
        let mut p = AttackModel::None.perturbation(&c, 0);
        assert_eq!(p(0, &[1.0, 2.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn pgd_respects_bounds_and_beats_or_matches_fgsm() {
        let c = controller();
        let s = [1.2, -0.4];
        let bound = [0.2, 0.2];
        let fgsm: Vec<f64> = fgsm_direction(&c, &s)
            .iter()
            .zip(&bound)
            .map(|(d, b)| d * b)
            .collect();
        let pgd = pgd_perturbation(&c, &s, &bound, 5);
        assert!(pgd.iter().zip(&bound).all(|(d, b)| d.abs() <= b + 1e-12));
        // PGD maximizes the same objective with more steps: it must reach
        // at least FGSM's objective value (on this convex quadratic the
        // one-step solution is already optimal, so equality is allowed)
        let obj = |d: &[f64]| {
            let u = c.control(&cocktail_math::vector::add(&s, d));
            u[0] * u[0]
        };
        assert!(
            obj(&pgd) >= obj(&fgsm) - 1e-9,
            "pgd {} fgsm {}",
            obj(&pgd),
            obj(&fgsm)
        );
    }

    #[test]
    fn one_step_pgd_is_fgsm() {
        let c = controller();
        let s = [0.7, 0.9];
        let bound = [0.15, 0.15];
        let fgsm: Vec<f64> = fgsm_direction(&c, &s)
            .iter()
            .zip(&bound)
            .map(|(d, b)| d * b)
            .collect();
        assert_eq!(pgd_perturbation(&c, &s, &bound, 1), fgsm);
    }

    #[test]
    fn scaled_to_uses_domain_radius() {
        let domain = BoxRegion::cube(2, -2.0, 2.0);
        match AttackModel::scaled_to(&domain, 0.1, false) {
            AttackModel::UniformNoise(amp) => assert_eq!(amp, vec![0.2, 0.2]),
            other => panic!("expected noise, got {other:?}"),
        }
        match AttackModel::scaled_to(&domain, 0.15, true) {
            AttackModel::Fgsm(amp) => assert!((amp[0] - 0.3).abs() < 1e-12),
            other => panic!("expected FGSM, got {other:?}"),
        }
        assert_eq!(
            AttackModel::scaled_to(&domain, 0.0, true),
            AttackModel::None
        );
    }
}
