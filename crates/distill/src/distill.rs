//! Direct and robust distillation (Algorithm 1 lines 11–14).

use crate::dataset::TeacherDataset;
use cocktail_control::NnController;
use cocktail_math::{vector, Matrix};
use cocktail_nn::{loss, Activation, Adam, BatchCache, GradStore, MlpBuilder, Optimizer};
use cocktail_obs::{Event, NullSink, Span, Telemetry};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Distillation hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistillConfig {
    /// Training epochs over the dataset.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Hidden width of the student (two Tanh hidden layers).
    pub hidden: usize,
    /// Probability `p` of replacing a sample by its FGSM adversary
    /// (Algorithm 1 line 12; only used by robust distillation).
    pub fgsm_prob: f64,
    /// FGSM perturbation bound `Δ` per state dimension (robust only). An
    /// empty vector derives it as `fgsm_fraction` of the data's state range.
    pub fgsm_bound: Vec<f64>,
    /// Fraction of the per-dimension state half-range used when
    /// `fgsm_bound` is empty.
    pub fgsm_fraction: f64,
    /// L2 regularization weight `λ` (robust only).
    pub lambda: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DistillConfig {
    fn default() -> Self {
        Self {
            epochs: 150,
            batch_size: 64,
            learning_rate: 5e-3,
            hidden: 24,
            fgsm_prob: 0.5,
            fgsm_bound: Vec::new(),
            fgsm_fraction: 0.1,
            lambda: 1e-4,
            seed: 0,
        }
    }
}

fn student_arch(data: &TeacherDataset, config: &DistillConfig) -> cocktail_nn::Mlp {
    MlpBuilder::new(data.state_dim())
        .hidden(config.hidden, Activation::Tanh)
        .hidden(config.hidden, Activation::Tanh)
        .output(data.control_dim(), Activation::Identity)
        .seed(config.seed)
        .build()
}

/// Per-dimension FGSM bound: explicit config, or derived from the data's
/// state spread.
fn resolve_fgsm_bound(data: &TeacherDataset, config: &DistillConfig) -> Vec<f64> {
    if !config.fgsm_bound.is_empty() {
        assert_eq!(
            config.fgsm_bound.len(),
            data.state_dim(),
            "fgsm_bound dimension mismatch"
        );
        return config.fgsm_bound.clone();
    }
    let dim = data.state_dim();
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    for s in data.states() {
        for i in 0..dim {
            lo[i] = lo[i].min(s[i]);
            hi[i] = hi[i].max(s[i]);
        }
    }
    lo.iter()
        .zip(&hi)
        .map(|(&l, &h)| config.fgsm_fraction * 0.5 * (h - l))
        .collect()
}

/// Direct distillation (`κ_D`): plain MSE regression of the teacher map,
/// no adversarial training, no regularization.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn direct_distill(data: &TeacherDataset, config: &DistillConfig) -> NnController {
    let mut net = student_arch(data, config);
    cocktail_nn::train::fit_regression(
        &mut net,
        data.states(),
        data.controls(),
        &cocktail_nn::train::TrainConfig {
            epochs: config.epochs,
            batch_size: config.batch_size,
            learning_rate: config.learning_rate,
            weight_decay: 0.0,
            grad_clip: Some(10.0),
            seed: config.seed,
            ..Default::default()
        },
    );
    NnController::unscaled(net, "kappa_D")
}

/// Robust distillation (`κ*`): the paper's probabilistic adversarial
/// training with L2 regularization. Per sample, with probability `p` the
/// input is replaced by its FGSM adversary
/// `s + Δ ⊙ sign(∇_s ℓ(κ*(s; q), u))` before the regression step, and
/// every update carries the `λ‖q‖²` weight-decay gradient.
///
/// # Panics
///
/// Panics if the dataset is empty or configured bounds mismatch.
pub fn robust_distill(data: &TeacherDataset, config: &DistillConfig) -> NnController {
    let mut session = RobustDistillSession::new(data, config);
    while !session.is_complete() {
        session.step_epoch(data);
    }
    session.finish()
}

/// A serializable snapshot of an in-flight robust distillation.
///
/// Captures the student net, optimizer moments, the exact RNG stream
/// position **and the shuffled sample order** (the permutation carries
/// across epochs), so [`RobustDistillSession::from_checkpoint`] resumes
/// bit-for-bit. The dataset itself is *not* stored — it is a pure function
/// of the pipeline seed and is regenerated on resume. Construct via
/// [`RobustDistillSession::checkpoint`]; the fields are deliberately opaque.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistillCheckpoint {
    config: DistillConfig,
    net: cocktail_nn::Mlp,
    bound: Vec<f64>,
    opt: Adam,
    /// xoshiro256** words of the shuffle/FGSM RNG (length 4; a `Vec`
    /// because the vendored serde shim does not serialize arrays).
    rng_state: Vec<u64>,
    order: Vec<usize>,
    epoch: usize,
}

/// Resumable, checkpointable robust distillation.
///
/// [`robust_distill`] is a thin loop over this type, so driving a session
/// manually (checkpointing between epochs) yields bit-identical students.
pub struct RobustDistillSession {
    config: DistillConfig,
    net: cocktail_nn::Mlp,
    bound: Vec<f64>,
    opt: Adam,
    rng: rand::rngs::StdRng,
    order: Vec<usize>,
    epoch: usize,
    /// Telemetry sink; never serialized — a restored session starts on the
    /// [`NullSink`] until the caller re-attaches one.
    tel: Arc<dyn Telemetry>,
}

impl RobustDistillSession {
    /// Starts a fresh session with a newly-initialized student.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or configured bounds mismatch.
    pub fn new(data: &TeacherDataset, config: &DistillConfig) -> Self {
        Self {
            config: config.clone(),
            net: student_arch(data, config),
            bound: resolve_fgsm_bound(data, config),
            opt: Adam::new(config.learning_rate),
            rng: cocktail_math::rng::seeded(config.seed.wrapping_add(17)),
            order: (0..data.len()).collect(),
            epoch: 0,
            tel: Arc::new(NullSink),
        }
    }

    /// Attaches a telemetry sink (builder-style). Telemetry never enters
    /// the checkpoint and never perturbs the update: every event payload is
    /// derived from values the epoch already computes.
    #[must_use]
    pub fn with_telemetry(mut self, tel: Arc<dyn Telemetry>) -> Self {
        self.tel = tel;
        self
    }

    /// Attaches a telemetry sink to an existing session (e.g. one restored
    /// from a checkpoint).
    pub fn set_telemetry(&mut self, tel: Arc<dyn Telemetry>) {
        self.tel = tel;
    }

    /// Restores a session from a checkpoint, resuming the exact RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's RNG state does not have exactly 4 words.
    pub fn from_checkpoint(ckpt: DistillCheckpoint) -> Self {
        assert_eq!(
            ckpt.rng_state.len(),
            4,
            "distill checkpoint RNG state must have 4 words"
        );
        let words = [
            ckpt.rng_state[0],
            ckpt.rng_state[1],
            ckpt.rng_state[2],
            ckpt.rng_state[3],
        ];
        Self {
            config: ckpt.config,
            net: ckpt.net,
            bound: ckpt.bound,
            opt: ckpt.opt,
            rng: rand::rngs::StdRng::from_state(words),
            order: ckpt.order,
            epoch: ckpt.epoch,
            tel: Arc::new(NullSink),
        }
    }

    /// Snapshots the complete training state.
    pub fn checkpoint(&self) -> DistillCheckpoint {
        DistillCheckpoint {
            config: self.config.clone(),
            net: self.net.clone(),
            bound: self.bound.clone(),
            opt: self.opt.clone(),
            rng_state: self.rng.state().to_vec(),
            order: self.order.clone(),
            epoch: self.epoch,
        }
    }

    /// Epochs completed so far.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Whether all configured epochs have run.
    pub fn is_complete(&self) -> bool {
        self.epoch >= self.config.epochs.max(1)
    }

    /// Deterministically re-derives the shuffle/FGSM stream for divergence
    /// retry `retry` (≥ 1).
    pub fn reseed_for_retry(&mut self, retry: u64) {
        self.rng = cocktail_math::rng::seeded(cocktail_math::parallel::task_seed(
            self.config.seed.wrapping_add(17),
            retry,
        ));
    }

    /// Runs one epoch over `data` and returns the mean per-sample training
    /// loss (MSE on the possibly-FGSM-perturbed inputs) — the signal the
    /// pipeline supervisor watches for divergence. The loss is a pure
    /// observation of values the update already computes, so enabling
    /// supervision does not change a single weight.
    ///
    /// # Panics
    ///
    /// Panics if the session [`Self::is_complete`] or `data` does not have
    /// the sample count the session was created with.
    pub fn step_epoch(&mut self, data: &TeacherDataset) -> f64 {
        assert!(!self.is_complete(), "distill session already complete");
        assert_eq!(
            data.len(),
            self.order.len(),
            "dataset size changed between resume and creation"
        );
        let _span = Span::enter_with(
            &*self.tel,
            "robust-distill/epoch",
            vec![("epoch".to_string(), self.epoch.into())],
        );
        let config = &self.config;
        let net = &mut self.net;
        let mut grads = GradStore::zeros_like(net);
        let batch = config.batch_size.max(1).min(data.len());
        let in_dim = data.state_dim();
        let out_dim = data.control_dim();
        let mut cache = BatchCache::new();
        let mut fgsm_cache = BatchCache::new();
        let mut loss_sum = 0.0;
        let mut fgsm_applied = 0u64;
        let mut minibatches = 0u64;

        self.order.shuffle(&mut self.rng);
        for chunk in self.order.chunks(batch) {
            grads.reset();
            let scale = 1.0 / chunk.len() as f64;
            // Algorithm 1 line 12-13: z ~ U[0,1] per sample, in chunk order
            // (the draws happen up front so the batched FGSM below leaves
            // the RNG stream identical to the historical per-sample loop);
            // a sample becomes adversarial iff z ≤ p.
            let zs: Vec<f64> = chunk
                .iter()
                .map(|_| self.rng.gen_range(0.0..=1.0))
                .collect();
            let adv_rows: Vec<usize> = (0..chunk.len())
                .filter(|&r| zs[r] <= config.fgsm_prob)
                .collect();
            fgsm_applied += adv_rows.len() as u64;
            minibatches += 1;

            let mut x = Matrix::zeros(chunk.len(), in_dim);
            for (r, &i) in chunk.iter().enumerate() {
                x.row_mut(r).copy_from_slice(&data.states()[i]);
            }

            // δ = Δ·sign(∇_s ℓ(κ*(s;q), u)) via one batched backprop over
            // the adversarial subset
            if !adv_rows.is_empty() {
                let mut xa = Matrix::zeros(adv_rows.len(), in_dim);
                for (rr, &r) in adv_rows.iter().enumerate() {
                    xa.row_mut(rr).copy_from_slice(x.row(r));
                }
                net.forward_batch_cached(&xa, &mut fgsm_cache);
                let mut g_out = Matrix::zeros(adv_rows.len(), out_dim);
                for (rr, &r) in adv_rows.iter().enumerate() {
                    let u = &data.controls()[chunk[r]];
                    g_out
                        .row_mut(rr)
                        .copy_from_slice(&loss::mse_gradient(fgsm_cache.output().row(rr), u));
                }
                let g_in = net.input_gradient_batch(&fgsm_cache, &g_out);
                for (rr, &r) in adv_rows.iter().enumerate() {
                    let dir = vector::sign(g_in.row(rr));
                    for (xi, (d, b)) in x.row_mut(r).iter_mut().zip(dir.iter().zip(&self.bound)) {
                        *xi += d * b;
                    }
                }
            }

            net.forward_batch_cached(&x, &mut cache);
            let mut g = Matrix::zeros(chunk.len(), out_dim);
            for (r, &i) in chunk.iter().enumerate() {
                let u = &data.controls()[i];
                loss_sum += loss::mse(cache.output().row(r), u);
                g.row_mut(r)
                    .copy_from_slice(&loss::mse_gradient(cache.output().row(r), u));
            }
            net.backward_batch(&cache, &g, &mut grads, scale);

            if config.lambda > 0.0 {
                grads.add_weight_decay(net, config.lambda);
            }
            grads.clip_global_norm(10.0);
            self.opt.step(net, &grads);
        }
        self.epoch += 1;
        let mean_loss = loss_sum / data.len() as f64;
        if self.tel.enabled() {
            self.tel.counter("distill.epochs", 1);
            self.tel.counter("distill.minibatch_updates", minibatches);
            self.tel.counter("distill.fgsm_applied", fgsm_applied);
            self.tel.record(
                Event::point("distill.epoch")
                    .with("epoch", self.epoch - 1)
                    .with("mean_loss", mean_loss),
            );
            self.tel.observe("distill.mean_loss", mean_loss);
        }
        mean_loss
    }

    /// Finalizes the session into the robust student `κ*`.
    pub fn finish(self) -> NnController {
        NnController::unscaled(self.net, "kappa_star")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_control::{Controller, LinearFeedbackController};
    use cocktail_math::{BoxRegion, Matrix};

    fn teacher() -> LinearFeedbackController {
        LinearFeedbackController::new(Matrix::from_rows(vec![vec![4.0, 2.0]]))
    }

    fn dataset() -> TeacherDataset {
        TeacherDataset::sample_uniform(&teacher(), &BoxRegion::cube(2, -1.0, 1.0), 400, 3)
    }

    #[test]
    fn direct_distillation_fits_teacher() {
        let data = dataset();
        let student = direct_distill(
            &data,
            &DistillConfig {
                epochs: 250,
                ..Default::default()
            },
        );
        let t = teacher();
        let mut worst: f64 = 0.0;
        for s in data.states().iter().take(50) {
            worst = worst.max((student.control(s)[0] - t.control(s)[0]).abs());
        }
        assert!(worst < 0.5, "worst error {worst}");
        assert_eq!(student.name(), "kappa_D");
    }

    #[test]
    fn robust_distillation_fits_teacher() {
        let data = dataset();
        let student = robust_distill(
            &data,
            &DistillConfig {
                epochs: 250,
                ..Default::default()
            },
        );
        let t = teacher();
        let mut worst: f64 = 0.0;
        for s in data.states().iter().take(50) {
            worst = worst.max((student.control(s)[0] - t.control(s)[0]).abs());
        }
        assert!(worst < 1.0, "worst error {worst}");
        assert_eq!(student.name(), "kappa_star");
    }

    #[test]
    fn robust_student_has_smaller_lipschitz_constant() {
        let data = dataset();
        let cfg = DistillConfig {
            epochs: 200,
            ..Default::default()
        };
        let kd = direct_distill(&data, &cfg);
        let ks = robust_distill(
            &data,
            &DistillConfig {
                lambda: 1e-3,
                fgsm_prob: 0.5,
                ..cfg
            },
        );
        assert!(
            ks.lipschitz_constant() < kd.lipschitz_constant(),
            "robust {} vs direct {}",
            ks.lipschitz_constant(),
            kd.lipschitz_constant()
        );
    }

    #[test]
    fn fgsm_bound_resolution() {
        let data = dataset();
        let explicit = DistillConfig {
            fgsm_bound: vec![0.3, 0.4],
            ..Default::default()
        };
        assert_eq!(resolve_fgsm_bound(&data, &explicit), vec![0.3, 0.4]);
        let derived = resolve_fgsm_bound(&data, &DistillConfig::default());
        // states span ≈[-1,1] per dim ⇒ bound ≈ 0.1 at the default fraction
        assert!(
            derived.iter().all(|&b| (0.05..0.15).contains(&b)),
            "{derived:?}"
        );
    }

    #[test]
    fn distillation_is_seed_deterministic() {
        let data = dataset();
        let cfg = DistillConfig {
            epochs: 30,
            ..Default::default()
        };
        let a = robust_distill(&data, &cfg);
        let b = robust_distill(&data, &cfg);
        assert_eq!(a.network(), b.network());
    }

    #[test]
    fn checkpointed_session_resumes_bit_for_bit() {
        let data = dataset();
        let cfg = DistillConfig {
            epochs: 20,
            ..Default::default()
        };
        let uninterrupted = robust_distill(&data, &cfg);

        // interrupt after 7 epochs, round-trip through JSON, resume
        let mut first = RobustDistillSession::new(&data, &cfg);
        for _ in 0..7 {
            first.step_epoch(&data);
        }
        let json = serde_json::to_string(&first.checkpoint()).expect("checkpoint json");
        drop(first);
        let restored: DistillCheckpoint = serde_json::from_str(&json).expect("checkpoint back");
        let mut resumed = RobustDistillSession::from_checkpoint(restored);
        assert_eq!(resumed.epoch(), 7);
        while !resumed.is_complete() {
            resumed.step_epoch(&data);
        }
        assert_eq!(resumed.finish().network(), uninterrupted.network());
    }

    #[test]
    fn epoch_loss_decreases_and_retry_reseed_diverges() {
        let data = dataset();
        let cfg = DistillConfig {
            epochs: 40,
            ..Default::default()
        };
        let mut session = RobustDistillSession::new(&data, &cfg);
        let first = session.step_epoch(&data);
        let mut last = first;
        while !session.is_complete() {
            last = session.step_epoch(&data);
        }
        assert!(last.is_finite() && last < first, "loss {first} -> {last}");

        let run = |retry: Option<u64>| {
            let mut s = RobustDistillSession::new(&data, &cfg);
            if let Some(r) = retry {
                s.reseed_for_retry(r);
            }
            for _ in 0..3 {
                s.step_epoch(&data);
            }
            s.finish()
        };
        assert_ne!(run(Some(2)).network(), run(None).network());
        assert_eq!(run(Some(2)).network(), run(Some(2)).network());
    }
}
