//! Direct and robust distillation (Algorithm 1 lines 11–14).

use crate::dataset::TeacherDataset;
use cocktail_control::NnController;
use cocktail_math::{vector, Matrix};
use cocktail_nn::{loss, Activation, Adam, BatchCache, GradStore, MlpBuilder, Optimizer};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distillation hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistillConfig {
    /// Training epochs over the dataset.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Hidden width of the student (two Tanh hidden layers).
    pub hidden: usize,
    /// Probability `p` of replacing a sample by its FGSM adversary
    /// (Algorithm 1 line 12; only used by robust distillation).
    pub fgsm_prob: f64,
    /// FGSM perturbation bound `Δ` per state dimension (robust only). An
    /// empty vector derives it as `fgsm_fraction` of the data's state range.
    pub fgsm_bound: Vec<f64>,
    /// Fraction of the per-dimension state half-range used when
    /// `fgsm_bound` is empty.
    pub fgsm_fraction: f64,
    /// L2 regularization weight `λ` (robust only).
    pub lambda: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DistillConfig {
    fn default() -> Self {
        Self {
            epochs: 150,
            batch_size: 64,
            learning_rate: 5e-3,
            hidden: 24,
            fgsm_prob: 0.5,
            fgsm_bound: Vec::new(),
            fgsm_fraction: 0.1,
            lambda: 1e-4,
            seed: 0,
        }
    }
}

fn student_arch(data: &TeacherDataset, config: &DistillConfig) -> cocktail_nn::Mlp {
    MlpBuilder::new(data.state_dim())
        .hidden(config.hidden, Activation::Tanh)
        .hidden(config.hidden, Activation::Tanh)
        .output(data.control_dim(), Activation::Identity)
        .seed(config.seed)
        .build()
}

/// Per-dimension FGSM bound: explicit config, or derived from the data's
/// state spread.
fn resolve_fgsm_bound(data: &TeacherDataset, config: &DistillConfig) -> Vec<f64> {
    if !config.fgsm_bound.is_empty() {
        assert_eq!(
            config.fgsm_bound.len(),
            data.state_dim(),
            "fgsm_bound dimension mismatch"
        );
        return config.fgsm_bound.clone();
    }
    let dim = data.state_dim();
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    for s in data.states() {
        for i in 0..dim {
            lo[i] = lo[i].min(s[i]);
            hi[i] = hi[i].max(s[i]);
        }
    }
    lo.iter()
        .zip(&hi)
        .map(|(&l, &h)| config.fgsm_fraction * 0.5 * (h - l))
        .collect()
}

/// Direct distillation (`κ_D`): plain MSE regression of the teacher map,
/// no adversarial training, no regularization.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn direct_distill(data: &TeacherDataset, config: &DistillConfig) -> NnController {
    let mut net = student_arch(data, config);
    cocktail_nn::train::fit_regression(
        &mut net,
        data.states(),
        data.controls(),
        &cocktail_nn::train::TrainConfig {
            epochs: config.epochs,
            batch_size: config.batch_size,
            learning_rate: config.learning_rate,
            weight_decay: 0.0,
            grad_clip: Some(10.0),
            seed: config.seed,
            ..Default::default()
        },
    );
    NnController::unscaled(net, "kappa_D")
}

/// Robust distillation (`κ*`): the paper's probabilistic adversarial
/// training with L2 regularization. Per sample, with probability `p` the
/// input is replaced by its FGSM adversary
/// `s + Δ ⊙ sign(∇_s ℓ(κ*(s; q), u))` before the regression step, and
/// every update carries the `λ‖q‖²` weight-decay gradient.
///
/// # Panics
///
/// Panics if the dataset is empty or configured bounds mismatch.
pub fn robust_distill(data: &TeacherDataset, config: &DistillConfig) -> NnController {
    let mut net = student_arch(data, config);
    let bound = resolve_fgsm_bound(data, config);
    let mut rng = cocktail_math::rng::seeded(config.seed.wrapping_add(17));
    let mut opt = Adam::new(config.learning_rate);
    let mut grads = GradStore::zeros_like(&net);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let batch = config.batch_size.max(1).min(data.len());
    let in_dim = data.state_dim();
    let out_dim = data.control_dim();
    let mut cache = BatchCache::new();
    let mut fgsm_cache = BatchCache::new();

    for _ in 0..config.epochs.max(1) {
        order.shuffle(&mut rng);
        for chunk in order.chunks(batch) {
            grads.reset();
            let scale = 1.0 / chunk.len() as f64;
            // Algorithm 1 line 12-13: z ~ U[0,1] per sample, in chunk order
            // (the draws happen up front so the batched FGSM below leaves
            // the RNG stream identical to the historical per-sample loop);
            // a sample becomes adversarial iff z ≤ p.
            let zs: Vec<f64> = chunk.iter().map(|_| rng.gen_range(0.0..=1.0)).collect();
            let adv_rows: Vec<usize> = (0..chunk.len())
                .filter(|&r| zs[r] <= config.fgsm_prob)
                .collect();

            let mut x = Matrix::zeros(chunk.len(), in_dim);
            for (r, &i) in chunk.iter().enumerate() {
                x.row_mut(r).copy_from_slice(&data.states()[i]);
            }

            // δ = Δ·sign(∇_s ℓ(κ*(s;q), u)) via one batched backprop over
            // the adversarial subset
            if !adv_rows.is_empty() {
                let mut xa = Matrix::zeros(adv_rows.len(), in_dim);
                for (rr, &r) in adv_rows.iter().enumerate() {
                    xa.row_mut(rr).copy_from_slice(x.row(r));
                }
                net.forward_batch_cached(&xa, &mut fgsm_cache);
                let mut g_out = Matrix::zeros(adv_rows.len(), out_dim);
                for (rr, &r) in adv_rows.iter().enumerate() {
                    let u = &data.controls()[chunk[r]];
                    g_out
                        .row_mut(rr)
                        .copy_from_slice(&loss::mse_gradient(fgsm_cache.output().row(rr), u));
                }
                let g_in = net.input_gradient_batch(&fgsm_cache, &g_out);
                for (rr, &r) in adv_rows.iter().enumerate() {
                    let dir = vector::sign(g_in.row(rr));
                    for (xi, (d, b)) in x.row_mut(r).iter_mut().zip(dir.iter().zip(&bound)) {
                        *xi += d * b;
                    }
                }
            }

            net.forward_batch_cached(&x, &mut cache);
            let mut g = Matrix::zeros(chunk.len(), out_dim);
            for (r, &i) in chunk.iter().enumerate() {
                let u = &data.controls()[i];
                g.row_mut(r)
                    .copy_from_slice(&loss::mse_gradient(cache.output().row(r), u));
            }
            net.backward_batch(&cache, &g, &mut grads, scale);

            if config.lambda > 0.0 {
                grads.add_weight_decay(&net, config.lambda);
            }
            grads.clip_global_norm(10.0);
            opt.step(&mut net, &grads);
        }
    }
    NnController::unscaled(net, "kappa_star")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_control::{Controller, LinearFeedbackController};
    use cocktail_math::{BoxRegion, Matrix};

    fn teacher() -> LinearFeedbackController {
        LinearFeedbackController::new(Matrix::from_rows(vec![vec![4.0, 2.0]]))
    }

    fn dataset() -> TeacherDataset {
        TeacherDataset::sample_uniform(&teacher(), &BoxRegion::cube(2, -1.0, 1.0), 400, 3)
    }

    #[test]
    fn direct_distillation_fits_teacher() {
        let data = dataset();
        let student = direct_distill(
            &data,
            &DistillConfig {
                epochs: 250,
                ..Default::default()
            },
        );
        let t = teacher();
        let mut worst: f64 = 0.0;
        for s in data.states().iter().take(50) {
            worst = worst.max((student.control(s)[0] - t.control(s)[0]).abs());
        }
        assert!(worst < 0.5, "worst error {worst}");
        assert_eq!(student.name(), "kappa_D");
    }

    #[test]
    fn robust_distillation_fits_teacher() {
        let data = dataset();
        let student = robust_distill(
            &data,
            &DistillConfig {
                epochs: 250,
                ..Default::default()
            },
        );
        let t = teacher();
        let mut worst: f64 = 0.0;
        for s in data.states().iter().take(50) {
            worst = worst.max((student.control(s)[0] - t.control(s)[0]).abs());
        }
        assert!(worst < 1.0, "worst error {worst}");
        assert_eq!(student.name(), "kappa_star");
    }

    #[test]
    fn robust_student_has_smaller_lipschitz_constant() {
        let data = dataset();
        let cfg = DistillConfig {
            epochs: 200,
            ..Default::default()
        };
        let kd = direct_distill(&data, &cfg);
        let ks = robust_distill(
            &data,
            &DistillConfig {
                lambda: 1e-3,
                fgsm_prob: 0.5,
                ..cfg
            },
        );
        assert!(
            ks.lipschitz_constant() < kd.lipschitz_constant(),
            "robust {} vs direct {}",
            ks.lipschitz_constant(),
            kd.lipschitz_constant()
        );
    }

    #[test]
    fn fgsm_bound_resolution() {
        let data = dataset();
        let explicit = DistillConfig {
            fgsm_bound: vec![0.3, 0.4],
            ..Default::default()
        };
        assert_eq!(resolve_fgsm_bound(&data, &explicit), vec![0.3, 0.4]);
        let derived = resolve_fgsm_bound(&data, &DistillConfig::default());
        // states span ≈[-1,1] per dim ⇒ bound ≈ 0.1 at the default fraction
        assert!(
            derived.iter().all(|&b| (0.05..0.15).contains(&b)),
            "{derived:?}"
        );
    }

    #[test]
    fn distillation_is_seed_deterministic() {
        let data = dataset();
        let cfg = DistillConfig {
            epochs: 30,
            ..Default::default()
        };
        let a = robust_distill(&data, &cfg);
        let b = robust_distill(&data, &cfg);
        assert_eq!(a.network(), b.network());
    }
}
