//! Teacher-student distillation with probabilistic adversarial training —
//! the second stage of the Cocktail framework (Algorithm 1 lines 11–14).
//!
//! Given the mixed controller design `A_W` (the teacher), this crate
//! synthesizes a single student MLP in two flavours:
//!
//! * **direct distillation** (`κ_D`) — plain MSE regression of the
//!   teacher's state→control map ([`distill::direct_distill`]);
//! * **robust distillation** (`κ*`) — the paper's min-max
//!   `min_q max_{‖δ‖≤Δ} ℓ(κ*(s+δ; q), u) + λ‖q‖²`, solved by FGSM inner
//!   steps applied with probability `p` plus L2 regularization
//!   ([`distill::robust_distill`]), which demonstrably shrinks the
//!   student's Lipschitz constant.
//!
//! The [`attack`] module provides the evaluation-time threat models of
//! Table II: per-step uniform measurement noise and FGSM adversarial
//! perturbations at 10–15 % of the state bound.
//!
//! # Examples
//!
//! ```
//! use cocktail_distill::dataset::TeacherDataset;
//! use cocktail_distill::distill::{direct_distill, DistillConfig};
//! use cocktail_control::{Controller, LinearFeedbackController};
//! use cocktail_math::{BoxRegion, Matrix};
//!
//! let teacher = LinearFeedbackController::new(Matrix::from_rows(vec![vec![2.0, 1.0]]));
//! let domain = BoxRegion::cube(2, -1.0, 1.0);
//! let data = TeacherDataset::sample_uniform(&teacher, &domain, 256, 0);
//! let student = direct_distill(&data, &DistillConfig { epochs: 200, ..DistillConfig::default() });
//! let err = (student.control(&[0.5, 0.5])[0] - teacher.control(&[0.5, 0.5])[0]).abs();
//! assert!(err < 0.3, "student should approximate the teacher, err {err}");
//! ```

pub mod attack;
pub mod dataset;
pub mod distill;

pub use attack::{fgsm_direction, pgd_perturbation, AttackModel, Perturbation};
pub use dataset::TeacherDataset;
pub use distill::{
    direct_distill, robust_distill, DistillCheckpoint, DistillConfig, RobustDistillSession,
};
