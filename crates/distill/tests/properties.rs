//! Property-based tests of the distillation substrate: attack bounds,
//! dataset integrity and FGSM gradient-direction correctness.

use cocktail_control::{Controller, LinearFeedbackController};
use cocktail_distill::{fgsm_direction, AttackModel, TeacherDataset};
use cocktail_math::{rng, BoxRegion, Matrix};
use proptest::prelude::*;

fn controller(g0: f64, g1: f64) -> LinearFeedbackController {
    LinearFeedbackController::new(Matrix::from_rows(vec![vec![g0, g1]]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FGSM on a linear controller has a closed form: the gradient of
    /// ‖Ks‖² points along 2(Ks)Kᵀ, so the sign pattern must match.
    #[test]
    fn fgsm_direction_matches_linear_closed_form(
        g0 in 0.1..5.0f64, g1 in 0.1..5.0f64,
        s0 in -2.0..2.0f64, s1 in -2.0..2.0f64,
    ) {
        let c = controller(g0, g1);
        let s = [s0, s1];
        let u = g0 * s0 + g1 * s1; // -control
        prop_assume!(u.abs() > 1e-6);
        let expected = [
            (2.0 * u * g0).signum(),
            (2.0 * u * g1).signum(),
        ];
        let dir = fgsm_direction(&c, &s);
        prop_assert_eq!(dir, expected.to_vec());
    }

    /// Every attack model's perturbation respects its per-dimension bound.
    #[test]
    fn attack_perturbations_respect_bounds(
        seed in 0u64..1000, fraction in 0.01..0.3f64, adversarial: bool,
        s0 in -2.0..2.0f64, s1 in -2.0..2.0f64,
    ) {
        let domain = BoxRegion::cube(2, -2.0, 2.0);
        let c = controller(1.0, 2.0);
        let attack = AttackModel::scaled_to(&domain, fraction, adversarial);
        let mut p = attack.perturbation(&c, seed);
        let bound = fraction * 2.0; // radius of the ±2 cube
        for t in 0..10 {
            let d = p(t, &[s0, s1]);
            prop_assert!(d.iter().all(|x| x.abs() <= bound + 1e-12), "{d:?} exceeds {bound}");
        }
    }

    /// FGSM at the controller's zero-output point is zero (no gradient).
    #[test]
    fn fgsm_direction_zero_at_null_state(g0 in 0.1..5.0f64, g1 in 0.1..5.0f64) {
        let c = controller(g0, g1);
        let dir = fgsm_direction(&c, &[0.0, 0.0]);
        prop_assert_eq!(dir, vec![0.0, 0.0]);
    }

    /// Datasets always carry exactly the teacher's labels, regardless of
    /// the sampling seed or count.
    #[test]
    fn dataset_labels_are_teacher_outputs(seed in 0u64..1000, count in 1usize..100) {
        let c = controller(2.0, -1.0);
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let data = TeacherDataset::sample_uniform(&c, &domain, count, seed);
        prop_assert_eq!(data.len(), count);
        for (s, u) in data.states().iter().zip(data.controls()) {
            prop_assert!(domain.contains(s));
            prop_assert_eq!(u.clone(), c.control(s));
        }
    }

    /// Merging preserves sample counts and dimensions.
    #[test]
    fn dataset_merge_preserves_counts(na in 1usize..50, nb in 1usize..50) {
        let c = controller(1.0, 1.0);
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let a = TeacherDataset::sample_uniform(&c, &domain, na, 1);
        let b = TeacherDataset::sample_uniform(&c, &domain, nb, 2);
        let merged = a.merge(b);
        prop_assert_eq!(merged.len(), na + nb);
        prop_assert_eq!(merged.state_dim(), 2);
        prop_assert_eq!(merged.control_dim(), 1);
    }

    /// Noise attacks are seed-deterministic; FGSM attacks are
    /// deterministic functions of the state.
    #[test]
    fn attacks_are_deterministic(seed in 0u64..1000, s0 in -1.0..1.0f64, s1 in -1.0..1.0f64) {
        let c = controller(3.0, 1.0);
        let domain = BoxRegion::cube(2, -2.0, 2.0);
        for adversarial in [true, false] {
            let attack = AttackModel::scaled_to(&domain, 0.1, adversarial);
            let mut p1 = attack.perturbation(&c, seed);
            let mut p2 = attack.perturbation(&c, seed);
            for t in 0..5 {
                prop_assert_eq!(p1(t, &[s0, s1]), p2(t, &[s0, s1]));
            }
        }
    }

    /// Uniform sampling covers the domain (no corner of a coarse 2×2
    /// partition is starved with enough samples).
    #[test]
    fn uniform_sampling_covers_quadrants(seed in 0u64..200) {
        let c = controller(1.0, 1.0);
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let data = TeacherDataset::sample_uniform(&c, &domain, 256, seed);
        let mut quadrant_hits = [false; 4];
        for s in data.states() {
            let q = usize::from(s[0] > 0.0) + 2 * usize::from(s[1] > 0.0);
            quadrant_hits[q] = true;
        }
        prop_assert!(quadrant_hits.iter().all(|&h| h), "{quadrant_hits:?}");
        // sanity: the rng helper itself respects the box
        let mut r = rng::seeded(seed);
        let p = rng::uniform_in_box(&mut r, &domain);
        prop_assert!(domain.contains(&p));
    }
}
