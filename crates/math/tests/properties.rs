//! Property-based tests for the math substrate.
//!
//! These pin down the soundness invariants the verification crate relies on:
//! interval arithmetic must contain every concrete image, boxes must tile
//! under subdivision, and the matrix norms must dominate the corresponding
//! vector amplification.

use cocktail_math::interval::{BoxRegion, Interval};
use cocktail_math::matrix::Matrix;
use cocktail_math::poly::MultiPoly;
use cocktail_math::vector;
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    -10.0..10.0f64
}

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (small_f64(), small_f64()).prop_map(|(a, b)| Interval::new(a.min(b), a.max(b)))
}

fn point_in(iv: Interval) -> impl Strategy<Value = f64> {
    (0.0..=1.0f64).prop_map(move |t| iv.lo() + t * iv.width())
}

proptest! {
    #[test]
    fn interval_add_sound(x in interval_strategy(), y in interval_strategy(), tx in 0.0..=1.0f64, ty in 0.0..=1.0f64) {
        let a = x.lo() + tx * x.width();
        let b = y.lo() + ty * y.width();
        prop_assert!((x + y).inflate(1e-9).contains(a + b));
        prop_assert!((x - y).inflate(1e-9).contains(a - b));
        prop_assert!((x * y).inflate(1e-9).contains(a * b));
    }

    #[test]
    fn interval_square_sound(x in interval_strategy(), t in 0.0..=1.0f64) {
        let a = x.lo() + t * x.width();
        prop_assert!(x.square().inflate(1e-9).contains(a * a));
        prop_assert!(x.square().lo() >= 0.0);
    }

    #[test]
    fn interval_powi_sound(x in interval_strategy(), t in 0.0..=1.0f64, n in 0u32..6) {
        let a = x.lo() + t * x.width();
        prop_assert!(x.powi(n).inflate(1e-6 * x.mag().powi(n as i32).max(1.0)).contains(a.powi(n as i32)));
    }

    #[test]
    fn interval_transcendental_sound(x in interval_strategy(), t in 0.0..=1.0f64) {
        let a = x.lo() + t * x.width();
        prop_assert!(x.sin().inflate(1e-12).contains(a.sin()));
        prop_assert!(x.cos().inflate(1e-9).contains(a.cos()));
        prop_assert!(x.tanh().contains(a.tanh()));
        prop_assert!(x.relu().contains(a.max(0.0)));
        prop_assert!(x.sigmoid().contains(1.0 / (1.0 + (-a).exp())));
    }

    #[test]
    fn interval_hull_contains_both(x in interval_strategy(), y in interval_strategy()) {
        let h = x.hull(&y);
        prop_assert!(h.contains_interval(&x));
        prop_assert!(h.contains_interval(&y));
    }

    #[test]
    fn box_subdivision_tiles(k in 1usize..4, lo in -5.0..0.0f64, hi in 0.1..5.0f64) {
        let b = BoxRegion::cube(2, lo, hi);
        let cells = b.subdivide(k);
        prop_assert_eq!(cells.len(), k * k);
        let vol: f64 = cells.iter().map(BoxRegion::volume).sum();
        prop_assert!((vol - b.volume()).abs() < 1e-9 * b.volume().max(1.0));
        for c in &cells {
            prop_assert!(b.contains_box(c));
        }
    }

    #[test]
    fn box_lerp_membership(t0 in 0.0..=1.0f64, t1 in 0.0..=1.0f64) {
        let b = BoxRegion::from_bounds(&[-2.0, 1.0], &[3.0, 4.0]);
        let p = b.lerp(&[t0, t1]);
        prop_assert!(b.contains(&p));
        let u = b.to_unit(&p);
        prop_assert!((u[0] - t0).abs() < 1e-12);
        prop_assert!((u[1] - t1).abs() < 1e-12);
    }

    #[test]
    fn matvec_linear(a0 in small_f64(), a1 in small_f64(), a2 in small_f64(), a3 in small_f64(),
                     x0 in small_f64(), x1 in small_f64(), s in small_f64()) {
        let m = Matrix::from_rows(vec![vec![a0, a1], vec![a2, a3]]);
        let x = [x0, x1];
        let sx = [s * x0, s * x1];
        let y = m.matvec(&x);
        let ys = m.matvec(&sx);
        prop_assert!((ys[0] - s * y[0]).abs() < 1e-6 * (1.0 + y[0].abs() * s.abs()));
        prop_assert!((ys[1] - s * y[1]).abs() < 1e-6 * (1.0 + y[1].abs() * s.abs()));
    }

    #[test]
    fn spectral_norm_dominates_amplification(
        a0 in small_f64(), a1 in small_f64(), a2 in small_f64(), a3 in small_f64(),
        x0 in small_f64(), x1 in small_f64())
    {
        let m = Matrix::from_rows(vec![vec![a0, a1], vec![a2, a3]]);
        let x = [x0, x1];
        let nx = vector::norm_2(&x);
        prop_assume!(nx > 1e-6);
        let y = m.matvec(&x);
        let amplification = vector::norm_2(&y) / nx;
        prop_assert!(amplification <= m.spectral_norm() * (1.0 + 1e-6) + 1e-9);
    }

    #[test]
    fn matmul_associative(vals in proptest::collection::vec(small_f64(), 12)) {
        let a = Matrix::from_vec(2, 2, vals[0..4].to_vec());
        let b = Matrix::from_vec(2, 2, vals[4..8].to_vec());
        let c = Matrix::from_vec(2, 2, vals[8..12].to_vec());
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() < 1e-6 * (1.0 + l.abs()));
        }
    }

    #[test]
    fn transpose_reverses_product(vals in proptest::collection::vec(small_f64(), 8)) {
        let a = Matrix::from_vec(2, 2, vals[0..4].to_vec());
        let b = Matrix::from_vec(2, 2, vals[4..8].to_vec());
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((l - r).abs() < 1e-9 * (1.0 + l.abs()));
        }
    }

    #[test]
    fn clip_is_idempotent_and_bounded(xs in proptest::collection::vec(-100.0..100.0f64, 1..6)) {
        let lo = vec![-1.5; xs.len()];
        let hi = vec![2.5; xs.len()];
        let once = vector::clip(&xs, &lo, &hi);
        let twice = vector::clip(&once, &lo, &hi);
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.iter().all(|&v| (-1.5..=2.5).contains(&v)));
    }

    #[test]
    fn poly_interval_eval_sound(c0 in small_f64(), c1 in small_f64(), c2 in small_f64(),
                                t0 in 0.0..=1.0f64, t1 in 0.0..=1.0f64) {
        let p = MultiPoly::from_terms(2, vec![
            (vec![0, 0], c0),
            (vec![1, 1], c1),
            (vec![2, 0], c2),
        ]);
        let b = BoxRegion::from_bounds(&[-1.0, -2.0], &[2.0, 1.0]);
        let x = b.lerp(&[t0, t1]);
        let bound = p.eval_interval(&b);
        prop_assert!(bound.inflate(1e-9 * (1.0 + bound.mag())).contains(p.eval(&x)));
    }

    #[test]
    fn poly_ring_axioms(c in small_f64(), x in small_f64(), y in small_f64()) {
        let n = 2;
        let p = MultiPoly::from_terms(n, vec![(vec![1, 0], 2.0), (vec![0, 2], c)]);
        let q = MultiPoly::from_terms(n, vec![(vec![0, 1], -1.0), (vec![1, 1], 0.5)]);
        let pt = [x, y];
        let sum = p.add(&q).eval(&pt);
        prop_assert!((sum - (p.eval(&pt) + q.eval(&pt))).abs() < 1e-9 * (1.0 + sum.abs()));
        let prod = p.mul(&q).eval(&pt);
        prop_assert!((prod - p.eval(&pt) * q.eval(&pt)).abs() < 1e-6 * (1.0 + prod.abs()));
    }

    // drop `_iv` unused warning helper
    #[test]
    fn interval_membership_strategy_consistent(iv in interval_strategy()) {
        prop_assert!(iv.lo() <= iv.hi());
        let _ = point_in(iv);
    }
}
