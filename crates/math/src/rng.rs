//! Seeded random sampling helpers.
//!
//! Every stochastic piece of the reproduction (initial-state sampling,
//! exploration noise, disturbances, adversarial noise) draws through these
//! helpers so that experiments are reproducible from a single `u64` seed.

use crate::interval::BoxRegion;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Creates the workspace-standard seeded RNG.
///
/// # Examples
///
/// ```
/// use rand::Rng;
///
/// let mut a = cocktail_math::rng::seeded(7);
/// let mut b = cocktail_math::rng::seeded(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples a point uniformly from a box region.
///
/// # Examples
///
/// ```
/// use cocktail_math::BoxRegion;
///
/// let b = BoxRegion::cube(3, -0.5, 0.5);
/// let mut rng = cocktail_math::rng::seeded(1);
/// let p = cocktail_math::rng::uniform_in_box(&mut rng, &b);
/// assert!(b.contains(&p));
/// ```
pub fn uniform_in_box<R: Rng + ?Sized>(rng: &mut R, b: &BoxRegion) -> Vec<f64> {
    b.intervals()
        .iter()
        .map(|d| {
            if d.width() == 0.0 {
                d.lo()
            } else {
                rng.gen_range(d.lo()..=d.hi())
            }
        })
        .collect()
}

/// Samples a vector whose components are uniform in `[-amplitude, amplitude]`.
///
/// # Panics
///
/// Panics if `amplitude < 0`.
pub fn uniform_symmetric<R: Rng + ?Sized>(rng: &mut R, dim: usize, amplitude: f64) -> Vec<f64> {
    assert!(amplitude >= 0.0, "amplitude must be non-negative");
    if amplitude == 0.0 {
        return vec![0.0; dim];
    }
    (0..dim)
        .map(|_| rng.gen_range(-amplitude..=amplitude))
        .collect()
}

/// Samples a vector of iid Gaussians `N(0, std²)`.
///
/// # Panics
///
/// Panics if `std < 0` or is not finite.
#[allow(
    clippy::expect_used,
    reason = "std is validated finite and positive just above"
)]
pub fn gaussian_vector<R: Rng + ?Sized>(rng: &mut R, dim: usize, std: f64) -> Vec<f64> {
    assert!(
        std >= 0.0 && std.is_finite(),
        "std must be finite and non-negative"
    );
    if std == 0.0 {
        return vec![0.0; dim];
    }
    let normal = Normal::new(0.0, std).expect("validated std");
    (0..dim).map(|_| normal.sample(rng)).collect()
}

/// Draws `count` points uniformly from a box (the paper's 500-sample
/// initial-state evaluation).
pub fn sample_box<R: Rng + ?Sized>(rng: &mut R, b: &BoxRegion, count: usize) -> Vec<Vec<f64>> {
    (0..count).map(|_| uniform_in_box(rng, b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        let xa: Vec<f64> = (0..10).map(|_| a.gen()).collect();
        let xb: Vec<f64> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(xa, xb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let xa: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let xb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn uniform_in_box_stays_inside() {
        let b = BoxRegion::from_bounds(&[-2.0, 0.0, 10.0], &[2.0, 0.0, 11.0]);
        let mut rng = seeded(3);
        for _ in 0..100 {
            let p = uniform_in_box(&mut rng, &b);
            assert!(b.contains(&p));
            assert_eq!(p[1], 0.0); // degenerate dimension
        }
    }

    #[test]
    fn uniform_symmetric_respects_amplitude() {
        let mut rng = seeded(4);
        for _ in 0..50 {
            let v = uniform_symmetric(&mut rng, 5, 0.3);
            assert!(v.iter().all(|x| x.abs() <= 0.3));
        }
        assert_eq!(uniform_symmetric(&mut rng, 3, 0.0), vec![0.0; 3]);
    }

    #[test]
    fn gaussian_vector_zero_std_is_zero() {
        let mut rng = seeded(5);
        assert_eq!(gaussian_vector(&mut rng, 4, 0.0), vec![0.0; 4]);
    }

    #[test]
    fn gaussian_vector_has_plausible_spread() {
        let mut rng = seeded(6);
        let v = gaussian_vector(&mut rng, 10_000, 2.0);
        let std = crate::stats::std_dev(&v);
        assert!((std - 2.0).abs() < 0.1, "std {std}");
    }

    #[test]
    fn sample_box_count_and_membership() {
        let b = BoxRegion::new(vec![Interval::new(0.0, 1.0)]);
        let mut rng = seeded(7);
        let pts = sample_box(&mut rng, &b, 17);
        assert_eq!(pts.len(), 17);
        assert!(pts.iter().all(|p| b.contains(p)));
    }
}
