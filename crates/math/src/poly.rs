//! Sparse multivariate polynomials over `f64`.
//!
//! [`MultiPoly`] backs two pieces of the reproduction: the model-based
//! polynomial expert of the 3D system (Sassi et al. \[25\] produce polynomial
//! feedback laws) and the polynomial closed-loop dynamics handed to the
//! verification crate once the neural controller has been replaced by its
//! Bernstein certificate. Terms are stored as exponent vectors with
//! coefficients; evaluation supports both concrete points and intervals.

use crate::interval::{BoxRegion, Interval};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A sparse multivariate polynomial in `n` variables.
///
/// # Examples
///
/// ```
/// use cocktail_math::MultiPoly;
///
/// // p(x, y) = 2 x² y - 3 y + 1
/// let p = MultiPoly::from_terms(2, vec![
///     (vec![2, 1], 2.0),
///     (vec![0, 1], -3.0),
///     (vec![0, 0], 1.0),
/// ]);
/// assert_eq!(p.eval(&[1.0, 2.0]), 2.0 * 2.0 - 3.0 * 2.0 + 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiPoly {
    nvars: usize,
    /// exponent vector → coefficient; zero coefficients are pruned.
    terms: BTreeMap<Vec<u32>, f64>,
}

impl MultiPoly {
    /// The zero polynomial in `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `nvars == 0`.
    pub fn zero(nvars: usize) -> Self {
        assert!(nvars > 0, "polynomial needs at least one variable");
        Self {
            nvars,
            terms: BTreeMap::new(),
        }
    }

    /// The constant polynomial `c`.
    pub fn constant(nvars: usize, c: f64) -> Self {
        let mut p = Self::zero(nvars);
        p.add_term(&vec![0; nvars], c);
        p
    }

    /// The monomial `x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nvars`.
    pub fn var(nvars: usize, i: usize) -> Self {
        assert!(i < nvars, "variable index out of bounds");
        let mut exps = vec![0; nvars];
        exps[i] = 1;
        let mut p = Self::zero(nvars);
        p.add_term(&exps, 1.0);
        p
    }

    /// Builds a polynomial from `(exponents, coefficient)` pairs; repeated
    /// exponent vectors accumulate.
    ///
    /// # Panics
    ///
    /// Panics if any exponent vector's length differs from `nvars`.
    pub fn from_terms(nvars: usize, terms: Vec<(Vec<u32>, f64)>) -> Self {
        let mut p = Self::zero(nvars);
        for (e, c) in terms {
            p.add_term(&e, c);
        }
        p
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Number of (non-zero) terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over `(exponents, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&[u32], f64)> {
        self.terms.iter().map(|(e, &c)| (e.as_slice(), c))
    }

    /// Total degree (max over terms of the exponent sum); 0 for zero poly.
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(|e| e.iter().sum()).max().unwrap_or(0)
    }

    /// Adds `c · x^e` to the polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `e.len() != nvars`.
    pub fn add_term(&mut self, e: &[u32], c: f64) {
        assert_eq!(e.len(), self.nvars, "exponent arity mismatch");
        if c == 0.0 {
            return;
        }
        let entry = self.terms.entry(e.to_vec()).or_insert(0.0);
        *entry += c;
        if *entry == 0.0 {
            self.terms.remove(e);
        }
    }

    /// Evaluates at a concrete point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nvars`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.nvars, "evaluation arity mismatch");
        self.terms
            .iter()
            .map(|(e, c)| {
                c * e
                    .iter()
                    .zip(x)
                    .map(|(&p, &xi)| xi.powi(p as i32))
                    .product::<f64>()
            })
            .sum()
    }

    /// Sound interval evaluation over a box.
    ///
    /// # Panics
    ///
    /// Panics if `x.dim() != nvars`.
    pub fn eval_interval(&self, x: &BoxRegion) -> Interval {
        assert_eq!(x.dim(), self.nvars, "evaluation arity mismatch");
        let mut acc = Interval::point(0.0);
        for (e, c) in &self.terms {
            let mut term = Interval::point(*c);
            for (i, &p) in e.iter().enumerate() {
                if p > 0 {
                    term = term * x.interval(i).powi(p);
                }
            }
            acc = acc + term;
        }
        acc
    }

    /// Polynomial sum.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn add(&self, other: &MultiPoly) -> MultiPoly {
        assert_eq!(self.nvars, other.nvars, "variable count mismatch");
        let mut out = self.clone();
        for (e, c) in &other.terms {
            out.add_term(e, *c);
        }
        out
    }

    /// Polynomial difference.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn sub(&self, other: &MultiPoly) -> MultiPoly {
        self.add(&other.scale(-1.0))
    }

    /// Polynomial product.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn mul(&self, other: &MultiPoly) -> MultiPoly {
        assert_eq!(self.nvars, other.nvars, "variable count mismatch");
        let mut out = MultiPoly::zero(self.nvars);
        for (ea, ca) in &self.terms {
            for (eb, cb) in &other.terms {
                let e: Vec<u32> = ea.iter().zip(eb).map(|(a, b)| a + b).collect();
                out.add_term(&e, ca * cb);
            }
        }
        out
    }

    /// Scales every coefficient by `s`.
    pub fn scale(&self, s: f64) -> MultiPoly {
        if s == 0.0 {
            return MultiPoly::zero(self.nvars);
        }
        MultiPoly {
            nvars: self.nvars,
            terms: self.terms.iter().map(|(e, c)| (e.clone(), c * s)).collect(),
        }
    }

    /// Partial derivative with respect to variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nvars`.
    pub fn derivative(&self, i: usize) -> MultiPoly {
        assert!(i < self.nvars, "variable index out of bounds");
        let mut out = MultiPoly::zero(self.nvars);
        for (e, c) in &self.terms {
            if e[i] == 0 {
                continue;
            }
            let mut d = e.clone();
            d[i] -= 1;
            out.add_term(&d, c * e[i] as f64);
        }
        out
    }
}

impl fmt::Display for MultiPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (e, c) in &self.terms {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            write!(f, "{c}")?;
            for (i, &p) in e.iter().enumerate() {
                match p {
                    0 => {}
                    1 => write!(f, "·x{i}")?,
                    _ => write!(f, "·x{i}^{p}")?,
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_evaluates_everywhere() {
        let p = MultiPoly::constant(3, 4.5);
        assert_eq!(p.eval(&[1.0, -2.0, 100.0]), 4.5);
        assert_eq!(p.degree(), 0);
    }

    #[test]
    fn var_picks_component() {
        let p = MultiPoly::var(2, 1);
        assert_eq!(p.eval(&[3.0, 7.0]), 7.0);
    }

    #[test]
    fn add_term_cancellation_prunes() {
        let mut p = MultiPoly::var(1, 0);
        p.add_term(&[1], -1.0);
        assert_eq!(p.term_count(), 0);
        assert_eq!(p.eval(&[5.0]), 0.0);
    }

    #[test]
    fn product_of_linear_factors() {
        // (x + 1)(x - 1) = x² - 1
        let n = 1;
        let x = MultiPoly::var(n, 0);
        let p = x
            .add(&MultiPoly::constant(n, 1.0))
            .mul(&x.sub(&MultiPoly::constant(n, 1.0)));
        assert_eq!(p.eval(&[3.0]), 8.0);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn derivative_of_quadratic() {
        // d/dx (x² y) = 2 x y
        let p = MultiPoly::from_terms(2, vec![(vec![2, 1], 1.0)]);
        let d = p.derivative(0);
        assert_eq!(d.eval(&[2.0, 3.0]), 12.0);
    }

    #[test]
    fn derivative_of_constant_is_zero() {
        let p = MultiPoly::constant(2, 7.0);
        assert_eq!(p.derivative(1).term_count(), 0);
    }

    #[test]
    fn interval_eval_contains_point_eval() {
        // p(x, y) = x² y - 3 x + y
        let p = MultiPoly::from_terms(
            2,
            vec![(vec![2, 1], 1.0), (vec![1, 0], -3.0), (vec![0, 1], 1.0)],
        );
        let b = BoxRegion::from_bounds(&[-1.0, 0.0], &[2.0, 1.0]);
        let bounds = p.eval_interval(&b);
        for i in 0..=4 {
            for j in 0..=4 {
                let x = -1.0 + 3.0 * i as f64 / 4.0;
                let y = j as f64 / 4.0;
                assert!(
                    bounds.contains(p.eval(&[x, y])),
                    "p({x},{y}) escapes {bounds}"
                );
            }
        }
    }

    #[test]
    fn display_roundtrip_is_readable() {
        let p = MultiPoly::from_terms(2, vec![(vec![1, 2], 3.0)]);
        let s = format!("{p}");
        assert!(s.contains("x0") && s.contains("x1^2"));
        assert_eq!(format!("{}", MultiPoly::zero(1)), "0");
    }

    #[test]
    fn scale_by_zero_gives_zero_poly() {
        let p = MultiPoly::var(2, 0).scale(0.0);
        assert_eq!(p.term_count(), 0);
    }
}
