//! Deterministic fork–join parallelism over indexed work items.
//!
//! Every parallel site in the workspace (Monte-Carlo evaluation, PPO episode
//! collection, dataset labeling) follows the same discipline: the work is a
//! pure function of a task *index*, any randomness is derived from
//! [`task_seed`]`(base_seed, index)`, and results land in the output slot for
//! that index. Because neither the split of indices across workers nor the
//! worker count can change what any single task computes, the result vector
//! is bit-identical for 1, 2 or N workers — parallelism is purely a
//! wall-clock optimization and never a semantics change.
//!
//! # Examples
//!
//! ```
//! use cocktail_math::parallel;
//!
//! let squares = parallel::map_range(8, |i| (i * i) as f64);
//! assert_eq!(squares[3], 9.0);
//! let same = parallel::map_range_with_workers(8, 1, |i| (i * i) as f64);
//! assert_eq!(squares, same);
//! ```

use std::thread;

/// Worker count used by the `map_*` entry points without an explicit count.
///
/// Reads `COCKTAIL_WORKERS` (a positive integer) if set, otherwise the
/// machine's available parallelism. Always at least 1.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("COCKTAIL_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Derives an independent RNG seed for task `index` from `base`.
///
/// Uses the splitmix64 finalizer so that consecutive indices map to
/// decorrelated seeds; the mapping depends only on `(base, index)`, never on
/// which worker runs the task.
pub fn task_seed(base: u64, index: u64) -> u64 {
    let mut z =
        (base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Applies `f(index)` for `0..n` across [`default_workers`] threads and
/// collects the results in index order.
pub fn map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    map_range_with_workers(n, default_workers(), f)
}

/// Applies `f(index)` for `0..n` across at most `workers` threads and
/// collects the results in index order.
///
/// The output is bit-identical for every `workers >= 1`: indices are split
/// into contiguous chunks purely for scheduling, and each result is written
/// to its own slot. Small workloads (`n < 2 * workers`) and `workers <= 1`
/// run sequentially on the calling thread.
pub fn map_range_with_workers<R, F>(n: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 || n < 2 * workers {
        return (0..n).map(f).collect();
    }

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers);
    let f = &f;
    thread::scope(|scope| {
        for (c, out) in slots.chunks_mut(chunk).enumerate() {
            let start = c * chunk;
            scope.spawn(move || {
                for (offset, slot) in out.iter_mut().enumerate() {
                    *slot = Some(f(start + offset));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(
                #[allow(clippy::panic, reason = "filled slots are a scope invariant")]
                || panic!("parallel worker left a slot unfilled"),
            )
        })
        .collect()
}

/// Applies `f(index, item)` to every item across [`default_workers`] threads,
/// collecting results in item order.
pub fn map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_indexed_with_workers(items, default_workers(), f)
}

/// Applies `f(index, item)` to every item across at most `workers` threads,
/// collecting results in item order. Same determinism contract as
/// [`map_range_with_workers`].
pub fn map_indexed_with_workers<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_range_with_workers(items.len(), workers, |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_range_preserves_order() {
        let out = map_range_with_workers(100, 4, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_range_empty() {
        let out: Vec<usize> = map_range_with_workers(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let reference = map_range_with_workers(37, 1, |i| task_seed(42, i as u64));
        for workers in [2, 3, 8, 64] {
            let got = map_range_with_workers(37, workers, |i| task_seed(42, i as u64));
            assert_eq!(got, reference, "workers = {workers}");
        }
    }

    #[test]
    fn map_indexed_sees_items() {
        let items = vec![10.0, 20.0, 30.0];
        let out = map_indexed_with_workers(&items, 2, |i, &x| x + i as f64);
        assert_eq!(out, vec![10.0, 21.0, 32.0]);
    }

    #[test]
    fn task_seed_is_index_sensitive() {
        let a = task_seed(7, 0);
        let b = task_seed(7, 1);
        let c = task_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Zero inputs must not collapse to a zero seed.
        assert_ne!(task_seed(0, 0), 0);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
