//! Dense linear solvers: Gauss–Jordan inverse, linear solve and
//! determinant with partial pivoting.
//!
//! Sized for the control problems of this workspace (n ≤ ~10): the
//! discrete Riccati iteration behind LQR synthesis needs `A⁻¹` of
//! `R + Bᵀ P B`-sized matrices, which are at most a few columns wide.

use crate::matrix::Matrix;
use std::error::Error;
use std::fmt;

/// The matrix was (numerically) singular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError;

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("matrix is singular to working precision")
    }
}

impl Error for SingularMatrixError {}

/// Row with the largest absolute value in `col`, scanning rows
/// `col..n`. Total for every `col < n`, so pivot selection cannot fail.
fn partial_pivot(m: &Matrix, col: usize, n: usize) -> (usize, f64) {
    let mut pivot_row = col;
    let mut pivot_val = m[(col, col)].abs();
    for r in col + 1..n {
        let v = m[(r, col)].abs();
        if v > pivot_val {
            pivot_row = r;
            pivot_val = v;
        }
    }
    (pivot_row, pivot_val)
}

/// Inverts a square matrix by Gauss–Jordan elimination with partial
/// pivoting.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] when a pivot falls below `1e-12`
/// relative to the largest row entry.
///
/// # Panics
///
/// Panics if the matrix is not square.
///
/// # Examples
///
/// ```
/// use cocktail_math::linalg::inverse;
/// use cocktail_math::Matrix;
///
/// let a = Matrix::from_rows(vec![vec![4.0, 7.0], vec![2.0, 6.0]]);
/// let inv = inverse(&a)?;
/// let id = a.matmul(&inv);
/// assert!((id[(0, 0)] - 1.0).abs() < 1e-12);
/// assert!(id[(0, 1)].abs() < 1e-12);
/// # Ok::<(), cocktail_math::linalg::SingularMatrixError>(())
/// ```
pub fn inverse(a: &Matrix) -> Result<Matrix, SingularMatrixError> {
    assert_eq!(a.rows(), a.cols(), "inverse needs a square matrix");
    let n = a.rows();
    // augmented [A | I]
    let mut m = Matrix::from_fn(n, 2 * n, |r, c| {
        if c < n {
            a[(r, c)]
        } else if c - n == r {
            1.0
        } else {
            0.0
        }
    });
    for col in 0..n {
        let (pivot_row, pivot_val) = partial_pivot(&m, col, n);
        if pivot_val < 1e-12 {
            return Err(SingularMatrixError);
        }
        if pivot_row != col {
            for c in 0..2 * n {
                let tmp = m[(col, c)];
                m[(col, c)] = m[(pivot_row, c)];
                m[(pivot_row, c)] = tmp;
            }
        }
        let p = m[(col, col)];
        for c in 0..2 * n {
            m[(col, c)] /= p;
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = m[(r, col)];
            if f == 0.0 {
                continue;
            }
            for c in 0..2 * n {
                m[(r, c)] -= f * m[(col, c)];
            }
        }
    }
    Ok(Matrix::from_fn(n, n, |r, c| m[(r, c + n)]))
}

/// Solves `A x = b` for a square `A`.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] when `A` is singular.
///
/// # Panics
///
/// Panics if `A` is not square or `b.len() != A.rows()`.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
    assert_eq!(a.rows(), a.cols(), "solve needs a square matrix");
    assert_eq!(b.len(), a.rows(), "right-hand side length mismatch");
    Ok(inverse(a)?.matvec(b))
}

/// Determinant by LU-style elimination with partial pivoting.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn determinant(a: &Matrix) -> f64 {
    assert_eq!(a.rows(), a.cols(), "determinant needs a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut det = 1.0;
    for col in 0..n {
        let (pivot_row, pivot_val) = partial_pivot(&m, col, n);
        if pivot_val == 0.0 {
            return 0.0;
        }
        if pivot_row != col {
            det = -det;
            for c in 0..n {
                let tmp = m[(col, c)];
                m[(col, c)] = m[(pivot_row, c)];
                m[(pivot_row, c)] = tmp;
            }
        }
        det *= m[(col, col)];
        for r in col + 1..n {
            let f = m[(r, col)] / m[(col, col)];
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                m[(r, c)] -= f * m[(col, c)];
            }
        }
    }
    det
}

/// Spectral radius estimate (largest |eigenvalue|) by power iteration on
/// the matrix itself — used to test closed-loop stability of LQR designs.
///
/// The estimate converges for matrices whose dominant eigenvalue is real
/// or complex with distinct modulus; for the Schur-stable closed loops we
/// test it against, 200 iterations are ample.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn spectral_radius(a: &Matrix) -> f64 {
    assert_eq!(a.rows(), a.cols(), "spectral radius needs a square matrix");
    let n = a.rows();
    // power iteration on A with periodic normalization; for complex
    // dominant pairs, track the growth rate of the norm instead of the
    // Rayleigh quotient
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
    let mut rate = 0.0;
    for _ in 0..200 {
        let w = a.matvec(&v);
        let norm = crate::vector::norm_2(&w);
        if norm <= f64::MIN_POSITIVE {
            return 0.0;
        }
        rate = norm / crate::vector::norm_2(&v).max(f64::MIN_POSITIVE);
        v = crate::vector::scale(&w, 1.0 / norm);
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_of_identity_is_identity() {
        let id = Matrix::identity(4);
        assert_eq!(inverse(&id).expect("regular"), id);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(vec![
            vec![2.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 4.0],
        ]);
        let inv = inverse(&a).expect("regular");
        let id = a.matmul(&inv);
        for r in 0..3 {
            for c in 0..3 {
                let want = if r == c { 1.0 } else { 0.0 };
                assert!((id[(r, c)] - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(inverse(&a), Err(SingularMatrixError));
    }

    #[test]
    fn solve_matches_hand_computation() {
        // x + y = 3, x - y = 1 → x = 2, y = 1
        let a = Matrix::from_rows(vec![vec![1.0, 1.0], vec![1.0, -1.0]]);
        let x = solve(&a, &[3.0, 1.0]).expect("regular");
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_of_triangular_is_product() {
        let a = Matrix::from_rows(vec![
            vec![2.0, 5.0, 1.0],
            vec![0.0, 3.0, 7.0],
            vec![0.0, 0.0, 4.0],
        ]);
        assert!((determinant(&a) - 24.0).abs() < 1e-10);
    }

    #[test]
    fn determinant_sign_tracks_row_swaps() {
        let a = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!((determinant(&a) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_zero_for_singular() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(determinant(&a), 0.0);
    }

    #[test]
    fn spectral_radius_of_diagonal() {
        let a = Matrix::from_rows(vec![vec![0.5, 0.0], vec![0.0, -0.9]]);
        assert!((spectral_radius(&a) - 0.9).abs() < 1e-6);
    }

    #[test]
    fn spectral_radius_of_rotation_scaled() {
        // 0.8 × rotation: complex eigenvalues with modulus 0.8
        let c = 0.8 * (0.3_f64).cos();
        let s = 0.8 * (0.3_f64).sin();
        let a = Matrix::from_rows(vec![vec![c, -s], vec![s, c]]);
        assert!((spectral_radius(&a) - 0.8).abs() < 1e-6);
    }
}
