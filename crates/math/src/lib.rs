//! Dense linear algebra, interval arithmetic, multivariate polynomials and
//! statistics kernels for the Cocktail reproduction.
//!
//! This crate is the NumPy-replacement substrate of the workspace. Everything
//! downstream — the neural-network crate, the reinforcement-learning crate and
//! the verification crate — is built on the primitives defined here:
//!
//! * [`matrix::Matrix`] — a row-major dense `f64` matrix with the product,
//!   norm and decomposition-free spectral estimates the NN layers need;
//! * [`interval::Interval`] and [`interval::BoxRegion`] — sound interval
//!   arithmetic used by the reachability analysis;
//! * [`poly::MultiPoly`] — sparse multivariate polynomials used by the
//!   model-based expert of the 3D system and by Bernstein certificates;
//! * [`stats`] — running statistics for reward normalization;
//! * [`rng`] — seeded sampling helpers so every experiment is reproducible;
//! * [`parallel`] — deterministic fork–join maps with per-task RNG seeding,
//!   so parallel data generation is bit-identical for any worker count.
//!
//! # Examples
//!
//! ```
//! use cocktail_math::matrix::Matrix;
//!
//! let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
//! let x = [1.0, 1.0];
//! assert_eq!(a.matvec(&x), vec![3.0, 7.0]);
//! ```

pub mod interval;
pub mod linalg;
pub mod matrix;
pub mod parallel;
pub mod poly;
pub mod rng;
pub mod stats;
pub mod vector;

pub use interval::{BoxRegion, Interval};
pub use matrix::Matrix;
pub use poly::MultiPoly;
