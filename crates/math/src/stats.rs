//! Summary statistics and running (Welford) accumulators.
//!
//! The RL crate normalizes advantages per batch and the experiment harness
//! reports means over 500-sample evaluations; both use the helpers here.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Standardizes a slice to zero mean / unit variance in place; a slice with
/// (near-)zero variance is only centered.
///
/// The degeneracy floor is *relative* to the data's magnitude: a batch
/// sitting at `1e6` with spread `1e-4` is near-constant in every sense
/// that matters, and dividing by that spread would manufacture O(1)
/// "signal" out of rounding noise.
pub fn standardize(xs: &mut [f64]) {
    let m = mean(xs);
    let s = std_dev(xs);
    let floor = 1e-8 * m.abs().max(1.0);
    let denom = if s > floor { s } else { 1.0 };
    for x in xs.iter_mut() {
        *x = (*x - m) / denom;
    }
}

/// Minimum of a slice; `None` when empty.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum of a slice; `None` when empty.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Numerically stable running mean/variance accumulator (Welford).
///
/// # Examples
///
/// ```
/// use cocktail_math::stats::Running;
///
/// let mut acc = Running::new();
/// for x in [1.0, 2.0, 3.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean so far; 0 before any observation.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance so far.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation so far.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_and_variance_match_manual() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn standardize_produces_zero_mean_unit_std() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0];
        standardize(&mut xs);
        assert!(mean(&xs).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standardize_constant_slice_centers_only() {
        let mut xs = vec![5.0, 5.0, 5.0];
        standardize(&mut xs);
        assert!(xs.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn standardize_large_magnitude_near_constant_slice_centers_only() {
        // std here is ~3e-8 — above the old absolute 1e-8 floor, but five
        // orders of magnitude below any meaningful spread at |mean| = 1e6.
        // Dividing by it would blow rounding noise up to O(1); the relative
        // floor (1e-8 * 1e6 = 1e-2) must refuse and only center.
        let mut xs: Vec<f64> = (0..8).map(|i| 1.0e6 + f64::from(i) * 1e-8).collect();
        standardize(&mut xs);
        assert!(
            xs.iter().all(|&x| x.abs() < 1e-6),
            "near-constant batch must not be inflated: {xs:?}"
        );
    }

    #[test]
    fn min_max_of_slice() {
        let xs = [3.0, -1.0, 2.0];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(3.0));
        assert_eq!(min(&[]), None);
    }

    #[test]
    fn running_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = Running::new();
        for &x in &xs {
            acc.push(x);
        }
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - mean(&xs)).abs() < 1e-12);
        assert!((acc.variance() - variance(&xs)).abs() < 1e-12);
    }

    #[test]
    fn running_single_observation() {
        let mut acc = Running::new();
        acc.push(42.0);
        assert_eq!(acc.mean(), 42.0);
        assert_eq!(acc.variance(), 0.0);
    }
}
