//! Free functions on `f64` slices.
//!
//! Keeping these as plain functions (rather than a wrapper vector type) lets
//! every crate pass `&[f64]` state and control vectors around without
//! conversions; the newtype-level distinctions live in the `env` and
//! `control` crates, closest to the domain meaning.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
///
/// # Examples
///
/// ```
/// assert_eq!(cocktail_math::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm_2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm `Σ |a_i|` — the paper's control-energy measure (Eq. 3 uses the
/// 1-norm of the control input).
pub fn norm_1(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

/// L∞ norm `max |a_i|`.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Element-wise `a + s * b`, returning a new vector.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(a: &[f64], s: f64, b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    a.iter().zip(b).map(|(x, y)| x + s * y).collect()
}

/// In-place `a += s * b`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy_inplace(a: &mut [f64], s: f64, b: &[f64]) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += s * y;
    }
}

/// Element-wise difference `a - b`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise sum `a + b`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Scales every element by `s`, returning a new vector.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// Clamps every element of `a` into `[lo[i], hi[i]]` — the paper's
/// `clip(·, U_inf, U_sup)` operator (Eq. 4).
///
/// # Panics
///
/// Panics if lengths differ or any `lo[i] > hi[i]`.
///
/// # Examples
///
/// ```
/// let u = cocktail_math::vector::clip(&[25.0, -3.0], &[-20.0, -20.0], &[20.0, 20.0]);
/// assert_eq!(u, vec![20.0, -3.0]);
/// ```
pub fn clip(a: &[f64], lo: &[f64], hi: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), lo.len(), "clip length mismatch");
    assert_eq!(a.len(), hi.len(), "clip length mismatch");
    a.iter()
        .zip(lo.iter().zip(hi))
        .map(|(&v, (&l, &h))| {
            assert!(l <= h, "clip bounds inverted");
            v.clamp(l, h)
        })
        .collect()
}

/// Mean squared error between two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ or the slices are empty.
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse length mismatch");
    assert!(!a.is_empty(), "mse of empty slices");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64
}

/// Sign of every element (`-1.0`, `0.0` or `1.0`), as used by FGSM.
pub fn sign(a: &[f64]) -> Vec<f64> {
    a.iter()
        .map(|&v| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// Linear interpolation `(1 - t) a + t b`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn lerp(a: &[f64], b: &[f64], t: f64) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "lerp length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (1.0 - t) * x + t * y)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn norms_agree_on_unit_axis() {
        let e = [0.0, -1.0, 0.0];
        assert_eq!(norm_1(&e), 1.0);
        assert_eq!(norm_2(&e), 1.0);
        assert_eq!(norm_inf(&e), 1.0);
    }

    #[test]
    fn norm_ordering_holds() {
        let v = [3.0, -4.0, 1.0];
        assert!(norm_inf(&v) <= norm_2(&v));
        assert!(norm_2(&v) <= norm_1(&v));
    }

    #[test]
    fn axpy_matches_manual() {
        assert_eq!(axpy(&[1.0, 2.0], 3.0, &[1.0, -1.0]), vec![4.0, -1.0]);
        let mut a = vec![1.0, 2.0];
        axpy_inplace(&mut a, -1.0, &[1.0, 1.0]);
        assert_eq!(a, vec![0.0, 1.0]);
    }

    #[test]
    fn clip_respects_bounds() {
        let out = clip(&[-100.0, 0.5, 100.0], &[-1.0; 3], &[1.0; 3]);
        assert_eq!(out, vec![-1.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn clip_inverted_bounds_panics() {
        clip(&[0.0], &[1.0], &[-1.0]);
    }

    #[test]
    fn mse_of_identical_slices_is_zero() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mse_matches_manual() {
        assert_eq!(mse(&[0.0, 0.0], &[2.0, 4.0]), 10.0);
    }

    #[test]
    fn sign_has_three_values() {
        assert_eq!(sign(&[-2.5, 0.0, 0.1]), vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn lerp_endpoints() {
        let a = [0.0, 10.0];
        let b = [4.0, -10.0];
        assert_eq!(lerp(&a, &b, 0.0), a.to_vec());
        assert_eq!(lerp(&a, &b, 1.0), b.to_vec());
        assert_eq!(lerp(&a, &b, 0.5), vec![2.0, 0.0]);
    }
}
