//! Sound interval arithmetic and axis-aligned box regions.
//!
//! These types carry the over-approximation semantics of the verification
//! crate: every operation on [`Interval`] returns an interval that contains
//! the exact image of the operands, so any property proved on the intervals
//! holds for all concrete values inside them.
//!
//! # Rounding discipline
//!
//! The transcendental images ([`Interval::tanh`], [`Interval::sigmoid`],
//! [`Interval::sin`], [`Interval::cos`]) are computed with **outward
//! rounding**: the endpoint images produced by `libm` are round-to-nearest
//! and may sit on the wrong side of the true value by up to an ulp (more
//! for composed expressions like the sigmoid), so each endpoint is widened
//! outward by a small, documented ulp budget and then intersected with the
//! function's true codomain. Any point image therefore lies inside the
//! returned interval — the property the certification code downstream
//! (activation bounds, the analysis range pass, `crates/verify`, the serve
//! fast-tier error certificates) relies on.
//!
//! The *algebraic* ops (`+`, `-`, `*`, `/`, [`Interval::square`],
//! [`Interval::powi`]) remain round-to-nearest: their endpoint arithmetic
//! is a single correctly-rounded operation whose 0.5-ulp slack is absorbed
//! by callers that need hard guarantees via [`Interval::inflate`] (the
//! fast-tanh certifier does exactly this). The containment invariants of
//! both families are property-tested with random points that must never
//! escape.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Outward-rounding budget (in ulps) for single-call transcendentals
/// (`tanh`, `sin`, `cos`): `libm` is faithfully rounded (< 1 ulp), so two
/// ulps of slack strictly covers the true value on both sides, including
/// the quadratically-small error of evaluating at an approximated extremum
/// abscissa (`sin`/`cos` interior extrema at `π/2 + kπ`).
const TRANS_ULPS: u32 = 2;

/// Outward-rounding budget for the sigmoid `1 / (1 + e^{-x})`: the
/// composed expression accumulates one < 1-ulp `exp`, one 0.5-ulp add and
/// one 0.5-ulp divide — under 2.5 ulps relative in total — so four ulps
/// strictly covers it. The underflow tails are covered too: for `x ≪ 0`
/// the computed value is exactly `0.0` while the true value is a positive
/// denormal-or-smaller, and one `next_up` step (to `5e-324`) already
/// bounds it from above; symmetrically at `x ≫ 0`.
const SIGMOID_ULPS: u32 = 4;

/// Steps `x` toward `-∞` by `ulps` representable values.
fn steps_down(mut x: f64, ulps: u32) -> f64 {
    for _ in 0..ulps {
        x = x.next_down();
    }
    x
}

/// Steps `x` toward `+∞` by `ulps` representable values.
fn steps_up(mut x: f64, ulps: u32) -> f64 {
    for _ in 0..ulps {
        x = x.next_up();
    }
    x
}

/// Builds `[lo, hi]` widened outward by `ulps` steps and intersected with
/// the true codomain `[dom_lo, dom_hi]` — sound because the exact image is
/// a subset of the codomain, so clipping the widened bounds back to it
/// never excludes an attainable value.
fn outward(lo: f64, hi: f64, ulps: u32, dom_lo: f64, dom_hi: f64) -> Interval {
    Interval::new(
        steps_down(lo, ulps).clamp(dom_lo, dom_hi),
        steps_up(hi, ulps).clamp(dom_lo, dom_hi),
    )
}

/// A closed interval `[lo, hi]` of `f64`.
///
/// # Examples
///
/// ```
/// use cocktail_math::Interval;
///
/// let x = Interval::new(-1.0, 2.0);
/// let y = x * x;
/// assert!(y.contains(0.0) && y.contains(4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "interval bound is NaN");
        assert!(lo <= hi, "interval bounds inverted: [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Self::new(v, v)
    }

    /// The symmetric interval `[-r, r]`.
    ///
    /// # Panics
    ///
    /// Panics if `r < 0`.
    pub fn symmetric(r: f64) -> Self {
        assert!(r >= 0.0, "symmetric radius must be non-negative");
        Self::new(-r, r)
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Midpoint `(lo + hi) / 2`.
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Width `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Radius `width / 2`.
    pub fn radius(&self) -> f64 {
        0.5 * self.width()
    }

    /// Largest absolute value contained.
    pub fn mag(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Whether `v` lies in the interval (inclusive).
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether `other` is entirely inside `self` (inclusive).
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then(|| Interval::new(lo, hi))
    }

    /// Smallest interval containing both operands.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Widens both endpoints outward by `eps ≥ 0` — the `Ω ⊕ ε` Minkowski
    /// summation the paper uses to absorb the Bernstein approximation error.
    ///
    /// # Panics
    ///
    /// Panics if `eps < 0`.
    pub fn inflate(&self, eps: f64) -> Interval {
        assert!(eps >= 0.0, "inflate amount must be non-negative");
        Interval::new(self.lo - eps, self.hi + eps)
    }

    /// Interval image of `x²` (tight).
    pub fn square(&self) -> Interval {
        if self.lo >= 0.0 {
            Interval::new(self.lo * self.lo, self.hi * self.hi)
        } else if self.hi <= 0.0 {
            Interval::new(self.hi * self.hi, self.lo * self.lo)
        } else {
            Interval::new(0.0, self.mag() * self.mag())
        }
    }

    /// Interval image of `x^n` for `n ≥ 0` (tight for all parities).
    pub fn powi(&self, n: u32) -> Interval {
        match n {
            0 => Interval::point(1.0),
            1 => *self,
            _ if n.is_multiple_of(2) => {
                let even = self.square();
                even.pow_monotone(n / 2)
            }
            _ => Interval::new(self.lo.powi(n as i32), self.hi.powi(n as i32)),
        }
    }

    /// `x^n` for an interval already known non-negative (monotone case).
    fn pow_monotone(&self, n: u32) -> Interval {
        Interval::new(self.lo.powi(n as i32), self.hi.powi(n as i32))
    }

    /// Interval image of `sin x` (sound, outwardly rounded; tight up to
    /// quadrant analysis).
    pub fn sin(&self) -> Interval {
        if self.width() >= 2.0 * std::f64::consts::PI {
            return Interval::new(-1.0, 1.0);
        }
        let mut lo = self.lo.sin().min(self.hi.sin());
        let mut hi = self.lo.sin().max(self.hi.sin());
        // include interior extrema at π/2 + kπ
        let k_min = ((self.lo - std::f64::consts::FRAC_PI_2) / std::f64::consts::PI).ceil() as i64;
        let k_max = ((self.hi - std::f64::consts::FRAC_PI_2) / std::f64::consts::PI).floor() as i64;
        for k in k_min..=k_max {
            let x = std::f64::consts::FRAC_PI_2 + k as f64 * std::f64::consts::PI;
            lo = lo.min(x.sin());
            hi = hi.max(x.sin());
        }
        // An extremum that the rounded k-range just misses sits within a
        // few ulps of an endpoint, so the endpoint image is within O(ulp²)
        // of ±1 — strictly inside the outward widening below.
        outward(lo, hi, TRANS_ULPS, -1.0, 1.0)
    }

    /// Interval image of `cos x` (sound, outwardly rounded).
    ///
    /// Implemented directly — not as `sin(x + π/2)` — so large arguments
    /// don't pick up an unaccounted rounding of the shifted endpoint.
    pub fn cos(&self) -> Interval {
        if self.width() >= 2.0 * std::f64::consts::PI {
            return Interval::new(-1.0, 1.0);
        }
        let mut lo = self.lo.cos().min(self.hi.cos());
        let mut hi = self.lo.cos().max(self.hi.cos());
        // include interior extrema at kπ
        let k_min = (self.lo / std::f64::consts::PI).ceil() as i64;
        let k_max = (self.hi / std::f64::consts::PI).floor() as i64;
        for k in k_min..=k_max {
            let x = k as f64 * std::f64::consts::PI;
            lo = lo.min(x.cos());
            hi = hi.max(x.cos());
        }
        outward(lo, hi, TRANS_ULPS, -1.0, 1.0)
    }

    /// Interval image of `tanh x` (monotone; sound, outwardly rounded).
    pub fn tanh(&self) -> Interval {
        outward(self.lo.tanh(), self.hi.tanh(), TRANS_ULPS, -1.0, 1.0)
    }

    /// Interval image of the logistic sigmoid (monotone; sound, outwardly
    /// rounded).
    ///
    /// Large-magnitude arguments are covered: at `x ≪ 0` the `(-x).exp()`
    /// term overflows to `+∞` and the computed quotient collapses to
    /// `0.0`, *below* the true (positive) value — the `next_up` widening
    /// of the upper endpoint restores soundness, and the codomain clamp
    /// keeps the lower endpoint at `0.0` instead of a negative ulp.
    pub fn sigmoid(&self) -> Interval {
        fn s(x: f64) -> f64 {
            1.0 / (1.0 + (-x).exp())
        }
        outward(s(self.lo), s(self.hi), SIGMOID_ULPS, 0.0, 1.0)
    }

    /// Builds `[lo, hi]` widened outward by `ulps` representable steps per
    /// endpoint — the building block for callers (e.g. activation images in
    /// `cocktail-nn`) that compute endpoint values with round-to-nearest
    /// arithmetic and need a sound enclosure.
    ///
    /// # Panics
    ///
    /// Panics if either bound is NaN or `lo > hi`.
    pub fn outward_rounded(lo: f64, hi: f64, ulps: u32) -> Interval {
        Interval::new(steps_down(lo, ulps), steps_up(hi, ulps))
    }

    /// Interval image of `max(0, x)` (`ReLU`, monotone).
    pub fn relu(&self) -> Interval {
        Interval::new(self.lo.max(0.0), self.hi.max(0.0))
    }

    /// Clamps the interval into `[lo, hi]` element-wise (image of the clip
    /// function applied to every member).
    pub fn clamp_to(&self, lo: f64, hi: f64) -> Interval {
        Interval::new(self.lo.clamp(lo, hi), self.hi.clamp(lo, hi))
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::point(0.0)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl From<f64> for Interval {
    fn from(v: f64) -> Self {
        Interval::point(v)
    }
}

impl Add for Interval {
    type Output = Interval;

    fn add(self, o: Interval) -> Interval {
        Interval::new(self.lo + o.lo, self.hi + o.hi)
    }
}

impl Sub for Interval {
    type Output = Interval;

    fn sub(self, o: Interval) -> Interval {
        Interval::new(self.lo - o.hi, self.hi - o.lo)
    }
}

impl Neg for Interval {
    type Output = Interval;

    fn neg(self) -> Interval {
        Interval::new(-self.hi, -self.lo)
    }
}

impl Mul for Interval {
    type Output = Interval;

    fn mul(self, o: Interval) -> Interval {
        let c = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        let lo = c.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = c.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Interval::new(lo, hi)
    }
}

impl Mul<f64> for Interval {
    type Output = Interval;

    fn mul(self, s: f64) -> Interval {
        if s >= 0.0 {
            Interval::new(self.lo * s, self.hi * s)
        } else {
            Interval::new(self.hi * s, self.lo * s)
        }
    }
}

impl Div for Interval {
    type Output = Interval;

    /// # Panics
    ///
    /// Panics if the divisor contains zero.
    fn div(self, o: Interval) -> Interval {
        assert!(
            !o.contains(0.0),
            "interval division by interval containing zero"
        );
        self * Interval::new(1.0 / o.hi, 1.0 / o.lo)
    }
}

/// An axis-aligned box in `R^n`: the product of one [`Interval`] per
/// dimension. Used for safe regions `X`, initial sets `X_0`, input bounds
/// `U` and reachable-set enclosures.
///
/// # Examples
///
/// ```
/// use cocktail_math::BoxRegion;
///
/// let x0 = BoxRegion::cube(2, -0.2, 0.2);
/// assert!(x0.contains(&[0.1, -0.1]));
/// assert!(!x0.contains(&[0.3, 0.0]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxRegion {
    dims: Vec<Interval>,
}

impl BoxRegion {
    /// Creates a box from per-dimension intervals.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty.
    pub fn new(dims: Vec<Interval>) -> Self {
        assert!(!dims.is_empty(), "box needs at least one dimension");
        Self { dims }
    }

    /// Creates the hyper-cube `[lo, hi]^n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `lo > hi`.
    pub fn cube(n: usize, lo: f64, hi: f64) -> Self {
        assert!(n > 0, "box needs at least one dimension");
        Self::new(vec![Interval::new(lo, hi); n])
    }

    /// Creates a box from parallel lower/upper bound slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, are empty, or any pair is
    /// inverted.
    pub fn from_bounds(lo: &[f64], hi: &[f64]) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound length mismatch");
        Self::new(
            lo.iter()
                .zip(hi)
                .map(|(&l, &h)| Interval::new(l, h))
                .collect(),
        )
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.dims
    }

    /// Interval of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn interval(&self, i: usize) -> Interval {
        self.dims[i]
    }

    /// Lower-bound corner.
    pub fn lower(&self) -> Vec<f64> {
        self.dims.iter().map(|d| d.lo()).collect()
    }

    /// Upper-bound corner.
    pub fn upper(&self) -> Vec<f64> {
        self.dims.iter().map(|d| d.hi()).collect()
    }

    /// Center point.
    pub fn center(&self) -> Vec<f64> {
        self.dims.iter().map(|d| d.mid()).collect()
    }

    /// Whether the point lies inside (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `p.len() != self.dim()`.
    pub fn contains(&self, p: &[f64]) -> bool {
        assert_eq!(p.len(), self.dim(), "point dimension mismatch");
        self.dims.iter().zip(p).all(|(d, &v)| d.contains(v))
    }

    /// Whether `other` is entirely inside `self`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn contains_box(&self, other: &BoxRegion) -> bool {
        assert_eq!(self.dim(), other.dim(), "box dimension mismatch");
        self.dims
            .iter()
            .zip(&other.dims)
            .all(|(a, b)| a.contains_interval(b))
    }

    /// Intersection, or `None` when disjoint in any dimension.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn intersect(&self, other: &BoxRegion) -> Option<BoxRegion> {
        assert_eq!(self.dim(), other.dim(), "box dimension mismatch");
        let dims: Option<Vec<_>> = self
            .dims
            .iter()
            .zip(&other.dims)
            .map(|(a, b)| a.intersect(b))
            .collect();
        dims.map(BoxRegion::new)
    }

    /// Smallest box containing both operands.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn hull(&self, other: &BoxRegion) -> BoxRegion {
        assert_eq!(self.dim(), other.dim(), "box dimension mismatch");
        BoxRegion::new(
            self.dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.hull(b))
                .collect(),
        )
    }

    /// Widest dimension's width.
    pub fn max_width(&self) -> f64 {
        self.dims.iter().map(|d| d.width()).fold(0.0, f64::max)
    }

    /// Product of all widths.
    pub fn volume(&self) -> f64 {
        self.dims.iter().map(|d| d.width()).product()
    }

    /// Splits the box in half along its widest dimension.
    #[allow(
        clippy::expect_used,
        reason = "a BoxRegion always has at least one dimension"
    )]
    pub fn bisect(&self) -> (BoxRegion, BoxRegion) {
        let (axis, _) = self
            .dims
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.width().total_cmp(&b.1.width()))
            .expect("non-empty box");
        self.split_at(axis)
    }

    /// Splits the box in half along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of bounds.
    pub fn split_at(&self, axis: usize) -> (BoxRegion, BoxRegion) {
        assert!(axis < self.dim(), "split axis out of bounds");
        let d = self.dims[axis];
        let mid = d.mid();
        let mut left = self.clone();
        let mut right = self.clone();
        left.dims[axis] = Interval::new(d.lo(), mid);
        right.dims[axis] = Interval::new(mid, d.hi());
        (left, right)
    }

    /// Subdivides into `k^n` sub-boxes (`k` cells per dimension), returned
    /// in lexicographic cell order.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn subdivide(&self, k: usize) -> Vec<BoxRegion> {
        assert!(k > 0, "subdivision count must be positive");
        let n = self.dim();
        let mut cells = Vec::with_capacity(k.pow(n as u32));
        let mut idx = vec![0usize; n];
        loop {
            let dims = (0..n)
                .map(|i| {
                    let d = self.dims[i];
                    let w = d.width() / k as f64;
                    let lo = if idx[i] == 0 {
                        d.lo()
                    } else {
                        d.lo() + idx[i] as f64 * w
                    };
                    let hi = if idx[i] + 1 == k {
                        d.hi()
                    } else {
                        d.lo() + (idx[i] + 1) as f64 * w
                    };
                    // guard against rounding making lo > hi on tiny cells
                    Interval::new(lo.min(hi), hi.max(lo))
                })
                .collect();
            cells.push(BoxRegion::new(dims));
            // increment mixed-radix counter
            let mut i = 0;
            loop {
                if i == n {
                    return cells;
                }
                idx[i] += 1;
                if idx[i] < k {
                    break;
                }
                idx[i] = 0;
                i += 1;
            }
        }
    }

    /// Widens every dimension outward by `eps`.
    ///
    /// # Panics
    ///
    /// Panics if `eps < 0`.
    pub fn inflate(&self, eps: f64) -> BoxRegion {
        BoxRegion::new(self.dims.iter().map(|d| d.inflate(eps)).collect())
    }

    /// Maps the unit-cube coordinate `t ∈ \[0,1\]^n` affinely into the box.
    ///
    /// # Panics
    ///
    /// Panics if `t.len() != self.dim()`.
    pub fn lerp(&self, t: &[f64]) -> Vec<f64> {
        assert_eq!(t.len(), self.dim(), "lerp dimension mismatch");
        self.dims
            .iter()
            .zip(t)
            .map(|(d, &ti)| d.lo() + ti * d.width())
            .collect()
    }

    /// Maps a point of the box into unit-cube coordinates. Degenerate
    /// dimensions map to `0`.
    ///
    /// # Panics
    ///
    /// Panics if `p.len() != self.dim()`.
    pub fn to_unit(&self, p: &[f64]) -> Vec<f64> {
        assert_eq!(p.len(), self.dim(), "point dimension mismatch");
        self.dims
            .iter()
            .zip(p)
            .map(|(d, &v)| {
                if d.width() > 0.0 {
                    (v - d.lo()) / d.width()
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// The `2^n` corner points of the box.
    pub fn corners(&self) -> Vec<Vec<f64>> {
        let n = self.dim();
        (0..(1usize << n))
            .map(|mask| {
                (0..n)
                    .map(|i| {
                        if mask & (1 << i) != 0 {
                            self.dims[i].hi()
                        } else {
                            self.dims[i].lo()
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

impl fmt::Display for BoxRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_interval_has_zero_width() {
        let p = Interval::point(2.5);
        assert_eq!(p.width(), 0.0);
        assert!(p.contains(2.5));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_interval_panics() {
        Interval::new(1.0, 0.0);
    }

    #[test]
    fn arithmetic_soundness_samples() {
        let x = Interval::new(-1.0, 2.0);
        let y = Interval::new(0.5, 3.0);
        let sum = x + y;
        let prod = x * y;
        for &a in &[-1.0, 0.0, 1.0, 2.0] {
            for &b in &[0.5, 1.0, 3.0] {
                assert!(sum.contains(a + b));
                assert!(prod.contains(a * b));
                assert!((x - y).contains(a - b));
                assert!((x / y).contains(a / b));
            }
        }
    }

    #[test]
    fn square_is_tight_around_zero() {
        let x = Interval::new(-2.0, 1.0);
        let sq = x.square();
        assert_eq!(sq.lo(), 0.0);
        assert_eq!(sq.hi(), 4.0);
    }

    #[test]
    fn powi_odd_preserves_sign() {
        let x = Interval::new(-2.0, 1.0);
        let c = x.powi(3);
        assert_eq!(c.lo(), -8.0);
        assert_eq!(c.hi(), 1.0);
    }

    #[test]
    fn powi_even_nonneg() {
        let x = Interval::new(-3.0, 2.0);
        let c = x.powi(4);
        assert_eq!(c.lo(), 0.0);
        assert_eq!(c.hi(), 81.0);
    }

    #[test]
    fn powi_zero_is_one() {
        assert_eq!(Interval::new(-5.0, 5.0).powi(0), Interval::point(1.0));
    }

    #[test]
    fn sin_covers_extremum() {
        let x = Interval::new(1.0, 2.0); // contains π/2
        let s = x.sin();
        assert!((s.hi() - 1.0).abs() < 1e-12);
        assert!(s.contains(1.0_f64.sin()));
        assert!(s.contains(2.0_f64.sin()));
    }

    #[test]
    fn sin_of_wide_interval_is_unit() {
        let s = Interval::new(0.0, 10.0).sin();
        assert_eq!(s, Interval::new(-1.0, 1.0));
    }

    #[test]
    fn cos_covers_extremum() {
        let x = Interval::new(-0.3, 0.2);
        let c = x.cos();
        assert!((c.hi() - 1.0).abs() < 1e-12);
        assert!(c.contains(0.2_f64.cos()));
    }

    #[test]
    fn monotone_images() {
        let x = Interval::new(-1.0, 1.0);
        // contains the round-to-nearest endpoint images and is tight to a
        // handful of ulps (outward rounding widens, never translates)
        let t = x.tanh();
        assert!(t.contains((-1.0_f64).tanh()) && t.contains(1.0_f64.tanh()));
        assert!((t.lo() - (-1.0_f64).tanh()).abs() < 1e-12);
        assert!((t.hi() - 1.0_f64.tanh()).abs() < 1e-12);
        assert_eq!(x.relu(), Interval::new(0.0, 1.0));
        let s = x.sigmoid();
        assert!(s.lo() < 0.5 && s.hi() > 0.5);
    }

    #[test]
    fn transcendental_images_stay_in_codomain() {
        // outward widening must not push tanh/sin/cos outside [-1, 1] or
        // sigmoid outside [0, 1], even at saturating arguments
        let x = Interval::new(-50.0, 50.0);
        assert!(Interval::new(-1.0, 1.0).contains_interval(&x.tanh()));
        assert!(Interval::new(-1.0, 1.0).contains_interval(&x.sin()));
        assert!(Interval::new(-1.0, 1.0).contains_interval(&x.cos()));
        assert!(Interval::new(0.0, 1.0).contains_interval(&x.sigmoid()));
    }

    #[test]
    fn sigmoid_sound_at_extreme_arguments() {
        // x ≪ 0: (-x).exp() overflows to +inf and the computed quotient is
        // 0.0, below the true positive value — the upper endpoint must be
        // widened above zero while the lower endpoint stays exactly 0.0.
        let neg = Interval::new(-1e3, -999.0).sigmoid();
        assert_eq!(neg.lo(), 0.0);
        assert!(neg.hi() > 0.0, "true σ(-999) > 0 must stay inside");
        // x ≫ 0: computed 1.0, above the true value 1 - σ(-x); the lower
        // endpoint must be widened below one while the upper stays 1.0.
        let pos = Interval::new(999.0, 1e3).sigmoid();
        assert_eq!(pos.hi(), 1.0);
        assert!(pos.lo() < 1.0, "true σ(999) < 1 must stay inside");
        // points behave the same way
        let p = Interval::point(-1e3).sigmoid();
        assert!(p.lo() == 0.0 && p.hi() > 0.0);
        let q = Interval::point(1e3).sigmoid();
        assert!(q.hi() == 1.0 && q.lo() < 1.0);
    }

    #[test]
    fn transcendental_point_images_never_escape() {
        // property test: for random intervals and random interior points,
        // the round-to-nearest point image always lies inside the
        // outwardly-rounded interval image
        use rand::Rng;
        let mut rng = crate::rng::seeded(0x9e3779b97f4a7c15);
        for case in 0..20_000 {
            // mix scales: tight sub-ulp-ish intervals, unit scale, and
            // saturating scale where tanh/sigmoid flatline
            let scale = match case % 4 {
                0 => 1e-6,
                1 => 1.0,
                2 => 40.0,
                _ => 1e3,
            };
            let a = rng.gen_range(-scale..scale);
            let b = rng.gen_range(-scale..scale);
            let x = Interval::new(a.min(b), a.max(b));
            let t = rng.gen_range(0.0..=1.0);
            let p = (x.lo() + t * x.width()).clamp(x.lo(), x.hi());
            assert!(x.tanh().contains(p.tanh()), "tanh escape at {p}");
            assert!(x.sin().contains(p.sin()), "sin escape at {p}");
            assert!(x.cos().contains(p.cos()), "cos escape at {p}");
            let sig = 1.0 / (1.0 + (-p).exp());
            assert!(x.sigmoid().contains(sig), "sigmoid escape at {p}");
            // endpoints themselves must also be covered
            for e in [x.lo(), x.hi()] {
                assert!(x.tanh().contains(e.tanh()));
                assert!(x.sin().contains(e.sin()));
                assert!(x.cos().contains(e.cos()));
                assert!(x.sigmoid().contains(1.0 / (1.0 + (-e).exp())));
            }
        }
    }

    #[test]
    fn intersect_and_hull() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        assert_eq!(a.intersect(&b), Some(Interval::new(1.0, 2.0)));
        assert_eq!(a.hull(&b), Interval::new(0.0, 3.0));
        assert_eq!(a.intersect(&Interval::new(5.0, 6.0)), None);
    }

    #[test]
    fn clamp_to_window() {
        let x = Interval::new(-30.0, 5.0);
        assert_eq!(x.clamp_to(-20.0, 20.0), Interval::new(-20.0, 5.0));
    }

    #[test]
    fn box_contains_and_volume() {
        let b = BoxRegion::cube(2, -2.0, 2.0);
        assert!(b.contains(&[0.0, 0.0]));
        assert!(!b.contains(&[0.0, 2.1]));
        assert_eq!(b.volume(), 16.0);
    }

    #[test]
    fn box_bisect_covers_parent() {
        let b = BoxRegion::from_bounds(&[0.0, 0.0], &[4.0, 1.0]);
        let (l, r) = b.bisect();
        assert_eq!(l.interval(0).hi(), 2.0);
        assert_eq!(r.interval(0).lo(), 2.0);
        assert!(b.contains_box(&l) && b.contains_box(&r));
    }

    #[test]
    fn box_subdivide_counts_and_tiles() {
        let b = BoxRegion::cube(2, 0.0, 1.0);
        let cells = b.subdivide(3);
        assert_eq!(cells.len(), 9);
        let total: f64 = cells.iter().map(BoxRegion::volume).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(cells.iter().all(|c| b.contains_box(c)));
    }

    #[test]
    fn box_lerp_roundtrip() {
        let b = BoxRegion::from_bounds(&[-1.0, 2.0], &[1.0, 6.0]);
        let p = b.lerp(&[0.25, 0.5]);
        assert_eq!(p, vec![-0.5, 4.0]);
        assert_eq!(b.to_unit(&p), vec![0.25, 0.5]);
    }

    #[test]
    fn box_corners_count() {
        let b = BoxRegion::cube(3, 0.0, 1.0);
        let corners = b.corners();
        assert_eq!(corners.len(), 8);
        assert!(corners.contains(&vec![0.0, 0.0, 0.0]));
        assert!(corners.contains(&vec![1.0, 1.0, 1.0]));
    }

    #[test]
    fn box_intersection_disjoint_is_none() {
        let a = BoxRegion::cube(2, 0.0, 1.0);
        let b = BoxRegion::cube(2, 2.0, 3.0);
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let b = BoxRegion::cube(2, -1.0, 1.0).inflate(0.5);
        assert_eq!(b.interval(0), Interval::new(-1.5, 1.5));
    }
}
