//! Row-major dense `f64` matrices.
//!
//! [`Matrix`] deliberately stays small: the Cocktail networks have at most a
//! few hundred weights per layer, so a cache-friendly `Vec<f64>` with simple
//! loops beats any clever blocking while remaining easy to audit. The type
//! carries exactly the operations the rest of the workspace needs — products,
//! transposes, outer products, element-wise maps and the operator norms used
//! by the Lipschitz analysis.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use cocktail_math::matrix::Matrix;
///
/// let id = Matrix::identity(3);
/// let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
/// assert_eq!(&id * &a, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix by calling `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let data = rows.into_iter().flatten().collect();
        Self {
            rows: 0,
            cols,
            data,
        }
        .with_rows_from_len()
    }

    fn with_rows_from_len(mut self) -> Self {
        self.rows = self.data.len() / self.cols;
        self
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self { rows, cols, data }
    }

    /// Builds a single-column matrix from a slice.
    pub fn column(values: &[f64]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major view of the entries.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the entries.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *o = acc;
        }
        out
    }

    /// Transposed matrix–vector product `Aᵀ y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.rows()`.
    pub fn matvec_transposed(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "matvec_transposed dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            let row = self.row(r);
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * yr;
            }
        }
        out
    }

    /// Matrix product `A B`.
    ///
    /// Runs in i-k-j order: the output row and the `B` row are both walked
    /// contiguously in the inner loop, so every access is sequential in the
    /// row-major buffers.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        for r in 0..self.rows {
            let arow = &self.data[r * self.cols..(r + 1) * self.cols];
            let orow = &mut out.data[r * n..(r + 1) * n];
            for (k, &a) in arow.iter().enumerate() {
                let brow = &other.data[k * n..(k + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product with a transposed right factor, `A Bᵀ`.
    ///
    /// Entry `(r, j)` is the dot product of row `r` of `A` with row `j` of
    /// `B`, accumulated left-to-right — exactly the accumulation order of
    /// [`Matrix::matvec`], so batching rows through this product is
    /// bit-identical to calling `matvec` per row.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_transpose_b_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_transpose_b`] writing into a caller-owned output,
    /// so hot loops (batched NN forward passes) can reuse scratch matrices
    /// instead of allocating per minibatch.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()` or `out` is not
    /// `self.rows() × other.rows()`.
    pub fn matmul_transpose_b_into(&self, other: &Matrix, out: &mut Matrix) {
        self.matmul_transpose_b_into_with(other, out, &mut Vec::new());
    }

    /// [`Matrix::matmul_transpose_b_into`] with a caller-owned scratch
    /// buffer for the materialized `Bᵀ`: once the scratch has grown to
    /// `other`'s element count, repeated calls are allocation-free.
    ///
    /// # Panics
    ///
    /// As [`Matrix::matmul_transpose_b_into`].
    pub fn matmul_transpose_b_into_with(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        bt: &mut Vec<f64>,
    ) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b dimension mismatch"
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "matmul_transpose_b output shape mismatch"
        );
        // Materialize Bᵀ once so the inner loops run over contiguous
        // output columns, then drive a register-tiled microkernel: MR×NR
        // accumulator blocks live in registers across the whole k loop, so
        // each output element costs one store total instead of a
        // load+store per k (the axpy form this replaces), and the NR lane
        // dimension vectorizes without any reduction. Each output element
        // still accumulates its `k` terms in ascending order, exactly like
        // `matvec`, so the result is bit-identical to the naive
        // row-dot-row form regardless of tiling — the serving shapes
        // (2-24-24-1) tile as three full 8-lanes for the hidden layers and
        // fall to the scalar edge for the 1-wide output.
        const MR: usize = 4;
        const NR: usize = 8;
        let n = other.cols;
        let m = other.rows;
        bt.clear();
        bt.resize(n * m, 0.0);
        for (j, brow) in other.data.chunks_exact(n).enumerate() {
            for (k, &b) in brow.iter().enumerate() {
                bt[k * m + j] = b;
            }
        }
        let a = &self.data;
        let o = &mut out.data;
        let mut r = 0;
        while r + MR <= self.rows {
            let mut j = 0;
            while j + NR <= m {
                let mut acc = [[0.0f64; NR]; MR];
                for k in 0..n {
                    let lanes = &bt[k * m + j..k * m + j + NR];
                    for (i, acc_row) in acc.iter_mut().enumerate() {
                        let av = a[(r + i) * n + k];
                        for (s, &b) in acc_row.iter_mut().zip(lanes) {
                            *s += av * b;
                        }
                    }
                }
                for (i, acc_row) in acc.iter().enumerate() {
                    o[(r + i) * m + j..(r + i) * m + j + NR].copy_from_slice(acc_row);
                }
                j += NR;
            }
            while j < m {
                let mut acc = [0.0f64; MR];
                for k in 0..n {
                    let b = bt[k * m + j];
                    for (i, s) in acc.iter_mut().enumerate() {
                        *s += a[(r + i) * n + k] * b;
                    }
                }
                for (i, &s) in acc.iter().enumerate() {
                    o[(r + i) * m + j] = s;
                }
                j += 1;
            }
            r += MR;
        }
        while r < self.rows {
            let arow = &a[r * n..(r + 1) * n];
            let mut j = 0;
            while j + NR <= m {
                let mut acc = [0.0f64; NR];
                for (k, &av) in arow.iter().enumerate() {
                    let lanes = &bt[k * m + j..k * m + j + NR];
                    for (s, &b) in acc.iter_mut().zip(lanes) {
                        *s += av * b;
                    }
                }
                o[r * m + j..r * m + j + NR].copy_from_slice(&acc);
                j += NR;
            }
            while j < m {
                let mut s = 0.0;
                for (k, &av) in arow.iter().enumerate() {
                    s += av * bt[k * m + j];
                }
                o[r * m + j] = s;
                j += 1;
            }
            r += 1;
        }
    }

    /// Matrix product with a transposed left factor, `Aᵀ B`.
    ///
    /// Accumulates rank-1 updates row by row: for each shared row `r`, adds
    /// `A[r][i] * B.row(r)` into output row `i`. Both inner accesses are
    /// contiguous; this is the natural shape for batched weight gradients
    /// `deltaᵀ X`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_transpose_a(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transpose_a dimension mismatch"
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        let n = other.cols;
        for r in 0..self.rows {
            let arow = &self.data[r * self.cols..(r + 1) * self.cols];
            let brow = &other.data[r * n..(r + 1) * n];
            for (i, &a) in arow.iter().enumerate() {
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Outer product `x yᵀ` as a `x.len() × y.len()` matrix.
    pub fn outer(x: &[f64], y: &[f64]) -> Matrix {
        Matrix::from_fn(x.len(), y.len(), |r, c| x[r] * y[c])
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Adds `scale * other` to `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, scale: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Multiplies every entry by `s` in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm `sqrt(Σ a_ij²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Induced 1-norm: maximum absolute column sum.
    pub fn norm_1(&self) -> f64 {
        (0..self.cols)
            .map(|c| (0..self.rows).map(|r| self[(r, c)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Induced ∞-norm: maximum absolute row sum.
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|r| self.row(r).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Spectral norm (largest singular value), estimated by power iteration
    /// on `AᵀA`.
    ///
    /// The estimate converges from below; `iterations = 100` is far beyond
    /// what the small Cocktail layers need for 1e-10 accuracy.
    pub fn spectral_norm(&self) -> f64 {
        let n = self.cols;
        let mut v = vec![1.0 / (n as f64).sqrt(); n];
        let mut sigma = 0.0;
        for _ in 0..100 {
            // w = Aᵀ (A v)
            let av = self.matvec(&v);
            let w = self.matvec_transposed(&av);
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm <= f64::MIN_POSITIVE {
                return 0.0;
            }
            let prev = sigma;
            sigma = norm.sqrt();
            for (vi, wi) in v.iter_mut().zip(&w) {
                *vi = wi / norm;
            }
            if (sigma - prev).abs() <= 1e-12 * sigma.max(1.0) {
                break;
            }
        }
        sigma
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum absolute entry, or 0 for the (impossible) empty case.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, other: &Matrix) {
        self.axpy(1.0, other);
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, other: &Matrix) {
        self.axpy(-1.0, other);
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, other: &Matrix) -> Matrix {
        self.matmul(other)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.map(|v| -v)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !~ {b}");
    }

    #[test]
    fn zeros_has_requested_shape() {
        let m = Matrix::zeros(2, 5);
        assert_eq!(m.shape(), (2, 5));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Matrix::zeros(0, 3);
    }

    #[test]
    fn identity_matvec_is_noop() {
        let id = Matrix::identity(4);
        let x = [1.0, -2.0, 3.5, 0.25];
        assert_eq!(id.matvec(&x), x.to_vec());
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let y = [1.0, -1.0, 2.0];
        assert_eq!(a.matvec_transposed(&y), a.transpose().matvec(&y));
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(vec![vec![2.0, 1.0], vec![4.0, 3.0]]));
    }

    #[test]
    fn matmul_transpose_b_matches_hand_computation() {
        // A (2×3) · Bᵀ with B (2×3): out[r][j] = <A.row(r), B.row(j)>.
        let a = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(vec![vec![1.0, 0.0, -1.0], vec![2.0, 1.0, 0.0]]);
        let c = a.matmul_transpose_b(&b);
        // row 0: 1-3 = -2 ; 2+2 = 4.  row 1: 4-6 = -2 ; 8+5 = 13.
        assert_eq!(
            c,
            Matrix::from_rows(vec![vec![-2.0, 4.0], vec![-2.0, 13.0]])
        );
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 7 + c) as f64 * 0.25 - 1.0);
        let b = Matrix::from_fn(5, 4, |r, c| (r * 3 + c * 2) as f64 * 0.5 - 2.0);
        assert_eq!(a.matmul_transpose_b(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_transpose_b_rows_match_matvec_bitwise() {
        let a = Matrix::from_fn(4, 6, |r, c| ((r * 13 + c * 5) % 17) as f64 / 17.0 - 0.3);
        let b = Matrix::from_fn(3, 6, |r, c| ((r * 11 + c * 7) % 19) as f64 / 19.0 - 0.4);
        let out = a.matmul_transpose_b(&b);
        for r in 0..4 {
            let per_row = b.matvec(a.row(r));
            assert_eq!(out.row(r), per_row.as_slice(), "row {r}");
        }
    }

    #[test]
    fn matmul_transpose_b_tiling_edges_match_matvec_bitwise() {
        // exercise every microkernel edge: full 4×8 tiles, row remainders
        // (rows % 4 ∈ {1,2,3}), lane remainders (m % 8 ∈ {1,..,7}), and
        // the serving shapes (batch×2 · 24×2, batch×24 · 24×24/1×24)
        for (rows, m, n) in [
            (1, 1, 1),
            (3, 7, 5),
            (4, 8, 3),
            (5, 9, 4),
            (6, 24, 2),
            (9, 24, 24),
            (64, 24, 24),
            (64, 1, 24),
            (7, 17, 11),
        ] {
            let a = Matrix::from_fn(rows, n, |r, c| ((r * 31 + c * 7) % 13) as f64 * 0.37 - 1.1);
            let b = Matrix::from_fn(m, n, |r, c| ((r * 17 + c * 5) % 11) as f64 * 0.29 - 0.8);
            let out = a.matmul_transpose_b(&b);
            for r in 0..rows {
                let per_row = b.matvec(a.row(r));
                for j in 0..m {
                    assert_eq!(
                        out[(r, j)].to_bits(),
                        per_row[j].to_bits(),
                        "({rows},{m},{n}) element ({r},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn matmul_transpose_a_matches_hand_computation() {
        // Aᵀ (3×2) · B with A (2×3), B (2×2).
        let a = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(vec![vec![1.0, -1.0], vec![0.0, 2.0]]);
        let c = a.matmul_transpose_a(&b);
        // out[i][j] = A[0][i]*B[0][j] + A[1][i]*B[1][j]
        assert_eq!(
            c,
            Matrix::from_rows(vec![vec![1.0, 7.0], vec![2.0, 8.0], vec![3.0, 9.0],])
        );
    }

    #[test]
    fn matmul_transpose_a_matches_explicit_transpose() {
        let a = Matrix::from_fn(5, 3, |r, c| (r * 2 + c * 9) as f64 * 0.125 - 1.5);
        let b = Matrix::from_fn(5, 4, |r, c| (r + c * 3) as f64 * 0.25 - 0.75);
        assert_eq!(a.matmul_transpose_a(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_rectangular_hand_computation() {
        // (1×3) · (3×2) exercises the i-k-j loop on non-square shapes.
        let a = Matrix::from_rows(vec![vec![2.0, -1.0, 0.5]]);
        let b = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(vec![vec![1.5, 3.0]]));
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_fn(3, 5, |r, c| (r as f64) * 10.0 + c as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn outer_product_entries() {
        let m = Matrix::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 10.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 1.0);
        a.axpy(2.0, &b);
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(0, 1)], 2.0);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        approx(Matrix::identity(4).frobenius_norm(), 2.0, 1e-12);
    }

    #[test]
    fn norm_1_and_inf() {
        let a = Matrix::from_rows(vec![vec![1.0, -2.0], vec![-3.0, 4.0]]);
        approx(a.norm_1(), 6.0, 1e-12);
        approx(a.norm_inf(), 7.0, 1e-12);
    }

    #[test]
    fn spectral_norm_of_diagonal() {
        let a = Matrix::from_rows(vec![vec![3.0, 0.0], vec![0.0, -7.0]]);
        approx(a.spectral_norm(), 7.0, 1e-9);
    }

    #[test]
    fn spectral_norm_of_rank_one() {
        // ||x yᵀ||₂ = ||x||₂ ||y||₂
        let a = Matrix::outer(&[3.0, 4.0], &[1.0, 2.0, 2.0]);
        approx(a.spectral_norm(), 5.0 * 3.0, 1e-9);
    }

    #[test]
    fn spectral_norm_of_zero_matrix_is_zero() {
        assert_eq!(Matrix::zeros(3, 3).spectral_norm(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = format!("{}", Matrix::identity(2));
        assert!(s.contains("1.000000"));
    }

    #[test]
    fn operators_compose() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 2.0);
        let c = &(&a + &b) - &a;
        assert_eq!(c, b);
        let d = &b * 0.5;
        assert_eq!(d, Matrix::filled(2, 2, 1.0));
        assert_eq!(-&d, Matrix::filled(2, 2, -1.0));
    }

    #[test]
    fn rowwise_access() {
        let mut a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        a.row_mut(0)[1] = 9.0;
        assert_eq!(a[(0, 1)], 9.0);
        assert_eq!(a.col(1), vec![9.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_wrong_length_panics() {
        Matrix::identity(2).matvec(&[1.0]);
    }
}
