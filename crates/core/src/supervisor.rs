//! Fault-tolerant supervision of the training pipeline: typed errors,
//! on-disk checkpoints, divergence detection and bounded rewind/retry.
//!
//! The supervised runner ([`crate::pipeline::Cocktail::run_supervised`])
//! wraps the two resumable training stages — PPO mixing
//! ([`cocktail_rl::PpoSession`]) and robust distillation
//! ([`cocktail_distill::RobustDistillSession`]) — with:
//!
//! * **periodic checkpoints**: every [`SupervisorConfig::checkpoint_every`]
//!   units (PPO iterations / distillation epochs) the complete training
//!   state (networks, optimizer moments, RNG stream words, shuffled sample
//!   order) is serialized to `<dir>/cocktail.ckpt.json` via a
//!   write-to-temp-then-rename so a crash never leaves a torn file;
//! * **divergence detection**: a non-finite mean return / training loss —
//!   or, optionally, a collapse beyond
//!   [`DivergenceConfig::collapse_drop`] below the best value seen — rolls
//!   the stage back to its last good checkpoint and deterministically
//!   reseeds the exploration streams;
//! * **bounded retries**: after [`DivergenceConfig::max_retries`] failed
//!   rewinds the run gives up with [`PipelineError::Diverged`] instead of
//!   panicking or looping forever.
//!
//! Resume is bit-exact: killing a supervised run mid-stage and resuming
//! from the checkpoint file reproduces the uninterrupted run's artifacts
//! bit-for-bit (see `tests/fault_tolerance.rs`).

use cocktail_distill::DistillCheckpoint;
use cocktail_nn::Mlp;
use cocktail_rl::ddpg::EpisodeStats;
use cocktail_rl::ppo::{GaussianPolicy, IterationStats};
use cocktail_rl::PpoCheckpoint;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// On-disk checkpoint format version; bumped on breaking layout changes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// File name of the pipeline checkpoint inside the checkpoint directory.
pub const CHECKPOINT_FILE: &str = "cocktail.ckpt.json";

/// A typed pipeline failure (instead of a panic).
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A `PreflightMode::Deny` gate found error-level diagnostics.
    PreflightDenied {
        /// Which gate fired (`"pre-flight"` or `"student"`).
        stage: String,
        /// The report's severity summary.
        summary: String,
    },
    /// A training stage kept diverging after all allowed rewinds.
    Diverged {
        /// Which stage diverged (`"ppo-mixing"` or `"robust-distill"`).
        stage: String,
        /// Rewind/reseed attempts consumed (including the initial run).
        attempts: u32,
        /// What the divergence monitor observed.
        detail: String,
    },
    /// The run stopped at the configured interruption point after saving a
    /// checkpoint (test/ops hook for kill-and-resume drills).
    Interrupted {
        /// The stage that was interrupted.
        stage: String,
        /// The checkpoint file the resumed run should load (empty when no
        /// checkpoint directory was configured — nothing was persisted).
        checkpoint: PathBuf,
    },
    /// Checkpoint I/O or validation failed (unreadable file, version or
    /// seed mismatch, wrong mixing algorithm).
    Checkpoint {
        /// The offending file.
        path: PathBuf,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::PreflightDenied { stage, summary } => write!(
                f,
                "cocktail {stage} analysis failed ({summary}); set preflight to Warn or Off \
                 to proceed anyway"
            ),
            Self::Diverged {
                stage,
                attempts,
                detail,
            } => write!(f, "{stage} diverged after {attempts} attempt(s): {detail}"),
            Self::Interrupted { stage, checkpoint } => write!(
                f,
                "{stage} interrupted; resume from {}",
                checkpoint.display()
            ),
            Self::Checkpoint { path, detail } => {
                write!(f, "checkpoint {} unusable: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Divergence-detection policy for the supervised training stages.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceConfig {
    /// Rewind/reseed attempts before giving up with
    /// [`PipelineError::Diverged`].
    pub max_retries: u32,
    /// Optional collapse threshold: a unit metric (mean return for PPO,
    /// negated loss for distillation — higher is better for both) falling
    /// more than this below the best value seen in the stage counts as
    /// divergence. `None` (the default) only checks finiteness, which is
    /// what keeps resume bit-exact even across retries.
    pub collapse_drop: Option<f64>,
}

impl Default for DivergenceConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            collapse_drop: None,
        }
    }
}

/// Configuration of [`crate::pipeline::Cocktail::run_supervised`].
#[derive(Debug, Clone, Default)]
pub struct SupervisorConfig {
    /// Where to persist checkpoints. `None` keeps checkpoints in memory
    /// only (divergence rewind still works; kill-and-resume does not).
    pub checkpoint_dir: Option<PathBuf>,
    /// Persist a checkpoint every this many completed units (PPO
    /// iterations / distillation epochs). `0` is treated as `1`.
    pub checkpoint_every: usize,
    /// Divergence detection and retry budget.
    pub divergence: DivergenceConfig,
    /// Test/ops hook: stop with [`PipelineError::Interrupted`] after this
    /// many units have executed *in this invocation*, saving a checkpoint
    /// first. `None` runs to completion.
    pub interrupt_after: Option<u64>,
}

impl SupervisorConfig {
    /// Checkpoints to `dir` with all other settings at their defaults.
    pub fn to_dir(dir: impl Into<PathBuf>) -> Self {
        Self {
            checkpoint_dir: Some(dir.into()),
            ..Self::default()
        }
    }

    pub(crate) fn cadence(&self) -> usize {
        self.checkpoint_every.max(1)
    }
}

/// Watches a per-unit quality metric (higher is better) for non-finite
/// values and optional collapse below the best value seen.
#[derive(Debug, Clone)]
pub struct DivergenceMonitor {
    best: f64,
    collapse_drop: Option<f64>,
}

impl DivergenceMonitor {
    /// Creates a monitor with no history.
    pub fn new(collapse_drop: Option<f64>) -> Self {
        Self {
            best: f64::NEG_INFINITY,
            collapse_drop,
        }
    }

    /// Re-seeds the monitor's best-seen value from past metrics (used when
    /// resuming or rewinding a stage so the monitor state is a pure
    /// function of the checkpointed history).
    pub fn rewind_to(&mut self, past: impl IntoIterator<Item = f64>) {
        self.best = past
            .into_iter()
            .filter(|m| m.is_finite())
            .fold(f64::NEG_INFINITY, f64::max);
    }

    /// Feeds one unit's metric. Returns `Some(reason)` when the unit
    /// counts as diverged (the metric is then *not* folded into `best`).
    pub fn observe(&mut self, metric: f64) -> Option<String> {
        if !metric.is_finite() {
            return Some(format!("non-finite unit metric {metric}"));
        }
        if let Some(drop) = self.collapse_drop {
            if self.best.is_finite() && self.best - metric > drop {
                return Some(format!(
                    "metric {metric} collapsed more than {drop} below best {}",
                    self.best
                ));
            }
        }
        self.best = self.best.max(metric);
        None
    }
}

/// What the mixing stage produced, in checkpointable form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MixingArtifact {
    /// PPO mixing: the trained Gaussian policy and its iteration history.
    Ppo {
        /// The trained weight policy.
        policy: GaussianPolicy,
        /// Per-iteration statistics.
        history: Vec<IterationStats>,
    },
    /// DDPG mixing (Remark 1): the trained actor and its episode history.
    Ddpg {
        /// The trained actor network.
        actor: Mlp,
        /// Per-episode statistics.
        history: Vec<EpisodeStats>,
    },
}

/// Where the pipeline stands, with everything needed to resume bit-exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StageCheckpoint {
    /// Mid-PPO-mixing.
    Mixing {
        /// The in-flight PPO training state.
        ppo: PpoCheckpoint,
    },
    /// Mixing done (artifact frozen), mid-robust-distillation. The teacher
    /// dataset and `κ_D` are *not* stored mid-epoch — the dataset is a pure
    /// function of `(mixed, seed)` and is regenerated on resume.
    Robust {
        /// The frozen mixing artifact.
        mixing: MixingArtifact,
        /// The already-trained direct student network.
        kappa_d: Mlp,
        /// The in-flight robust-distillation state.
        distill: DistillCheckpoint,
        /// Per-epoch training losses so far (feeds the divergence monitor
        /// deterministically on resume).
        losses: Vec<f64>,
    },
}

impl StageCheckpoint {
    /// Human-readable stage name (matches [`PipelineError`] stages).
    pub fn stage_name(&self) -> &'static str {
        match self {
            Self::Mixing { .. } => "ppo-mixing",
            Self::Robust { .. } => "robust-distill",
        }
    }
}

/// The on-disk pipeline checkpoint: versioned, seed-stamped, one stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The pipeline master seed the checkpoint belongs to.
    pub seed: u64,
    /// The resumable stage state.
    pub stage: StageCheckpoint,
}

impl PipelineCheckpoint {
    /// Wraps a stage snapshot with the current version and seed stamp.
    pub fn new(seed: u64, stage: StageCheckpoint) -> Self {
        Self {
            version: CHECKPOINT_VERSION,
            seed,
            stage,
        }
    }
}

/// Atomically and *durably* persists `ckpt` as
/// `<dir>/`[`CHECKPOINT_FILE`]. Creates `dir` if needed.
///
/// Write-to-temp-then-rename alone only protects against torn writes from
/// the process crashing; on a power loss common filesystems may persist
/// the rename before the temp file's *data*, surfacing an empty or
/// truncated checkpoint. The temp file is therefore `fsync`ed before the
/// rename, and the parent directory after it, so the on-disk file is
/// always either the complete old version or the complete new one.
///
/// # Errors
///
/// Returns [`PipelineError::Checkpoint`] on any I/O failure.
pub fn save_checkpoint(dir: &Path, ckpt: &PipelineCheckpoint) -> Result<PathBuf, PipelineError> {
    use std::io::Write;

    let path = dir.join(CHECKPOINT_FILE);
    let failed = |detail: String| PipelineError::Checkpoint {
        path: path.clone(),
        detail,
    };
    std::fs::create_dir_all(dir).map_err(|e| failed(format!("create dir: {e}")))?;
    let json = serde_json::to_string(ckpt).map_err(|e| failed(format!("serialize: {e}")))?;
    let tmp = dir.join(format!("{CHECKPOINT_FILE}.tmp"));
    {
        let mut f =
            std::fs::File::create(&tmp).map_err(|e| failed(format!("create temp file: {e}")))?;
        f.write_all(json.as_bytes())
            .map_err(|e| failed(format!("write temp file: {e}")))?;
        // data must be on the platter before the rename publishes the name
        f.sync_all()
            .map_err(|e| failed(format!("fsync temp file: {e}")))?;
    }
    std::fs::rename(&tmp, &path).map_err(|e| failed(format!("rename into place: {e}")))?;
    // the rename itself lives in the directory entry; fsync the directory
    // so a power loss cannot roll the publish back (POSIX directories open
    // read-only for this; other platforms rely on the rename's own
    // durability semantics)
    #[cfg(unix)]
    {
        let d = std::fs::File::open(dir).map_err(|e| failed(format!("open dir: {e}")))?;
        d.sync_all()
            .map_err(|e| failed(format!("fsync dir: {e}")))?;
    }
    Ok(path)
}

/// File name of a serving-side retraining demand inside a quarantine
/// directory (see [`save_retrain_request`]).
pub const RETRAIN_REQUEST_FILE: &str = "retrain.request.json";

/// A retraining demand raised by the serving fleet — typically the serve
/// crate's drift detector flagging that the served-output distribution
/// has moved away from its baseline. The pipeline side picks these up
/// with [`load_retrain_request`] and decides whether to kick off a new
/// distillation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrainRequest {
    /// Which plant/system the drifting controller serves.
    pub system: String,
    /// Human-readable cause.
    pub reason: String,
    /// The observed statistic that crossed the line (e.g. a
    /// total-variation distance).
    pub observed: f64,
    /// The threshold it crossed.
    pub threshold: f64,
    /// Which component raised the demand.
    pub source: String,
}

/// Atomically and durably persists `req` as
/// `<dir>/`[`RETRAIN_REQUEST_FILE`], using the same
/// fsync-temp-then-rename discipline as [`save_checkpoint`], so a
/// half-written demand can never be picked up.
///
/// # Errors
///
/// Returns [`PipelineError::Checkpoint`] on any I/O failure.
pub fn save_retrain_request(dir: &Path, req: &RetrainRequest) -> Result<PathBuf, PipelineError> {
    use std::io::Write;

    let path = dir.join(RETRAIN_REQUEST_FILE);
    let failed = |detail: String| PipelineError::Checkpoint {
        path: path.clone(),
        detail,
    };
    std::fs::create_dir_all(dir).map_err(|e| failed(format!("create dir: {e}")))?;
    let json = serde_json::to_string(req).map_err(|e| failed(format!("serialize: {e}")))?;
    let tmp = dir.join(format!("{RETRAIN_REQUEST_FILE}.tmp"));
    {
        let mut f =
            std::fs::File::create(&tmp).map_err(|e| failed(format!("create temp file: {e}")))?;
        f.write_all(json.as_bytes())
            .map_err(|e| failed(format!("write temp file: {e}")))?;
        f.sync_all()
            .map_err(|e| failed(format!("fsync temp file: {e}")))?;
    }
    std::fs::rename(&tmp, &path).map_err(|e| failed(format!("rename into place: {e}")))?;
    #[cfg(unix)]
    {
        let d = std::fs::File::open(dir).map_err(|e| failed(format!("open dir: {e}")))?;
        d.sync_all()
            .map_err(|e| failed(format!("fsync dir: {e}")))?;
    }
    Ok(path)
}

/// Loads a pending retraining demand from `dir` if one exists.
///
/// # Errors
///
/// Returns [`PipelineError::Checkpoint`] when the file exists but cannot
/// be read or parsed.
pub fn load_retrain_request(dir: &Path) -> Result<Option<RetrainRequest>, PipelineError> {
    let path = dir.join(RETRAIN_REQUEST_FILE);
    if !path.exists() {
        return Ok(None);
    }
    let failed = |detail: String| PipelineError::Checkpoint {
        path: path.clone(),
        detail,
    };
    let json = std::fs::read_to_string(&path).map_err(|e| failed(format!("read: {e}")))?;
    let req: RetrainRequest =
        serde_json::from_str(&json).map_err(|e| failed(format!("parse: {e}")))?;
    Ok(Some(req))
}

/// Loads the checkpoint from `dir` if one exists, validating the format
/// version and the seed stamp against `expected_seed`.
///
/// # Errors
///
/// Returns [`PipelineError::Checkpoint`] when the file exists but cannot
/// be parsed, has a different version, or was produced by a different
/// pipeline seed.
pub fn load_checkpoint(
    dir: &Path,
    expected_seed: u64,
) -> Result<Option<PipelineCheckpoint>, PipelineError> {
    let path = dir.join(CHECKPOINT_FILE);
    if !path.exists() {
        return Ok(None);
    }
    let failed = |detail: String| PipelineError::Checkpoint {
        path: path.clone(),
        detail,
    };
    let json = std::fs::read_to_string(&path).map_err(|e| failed(format!("read: {e}")))?;
    let ckpt: PipelineCheckpoint =
        serde_json::from_str(&json).map_err(|e| failed(format!("parse: {e}")))?;
    if ckpt.version != CHECKPOINT_VERSION {
        return Err(failed(format!(
            "version {} but this binary writes {CHECKPOINT_VERSION}",
            ckpt.version
        )));
    }
    if ckpt.seed != expected_seed {
        return Err(failed(format!(
            "stamped with seed {} but the pipeline runs seed {expected_seed}",
            ckpt.seed
        )));
    }
    Ok(Some(ckpt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_rl::ppo::{PpoConfig, PpoSession};

    #[test]
    fn monitor_flags_non_finite_and_collapse() {
        let mut m = DivergenceMonitor::new(Some(1.0));
        assert!(m.observe(-5.0).is_none());
        assert!(m.observe(-4.0).is_none());
        assert!(m.observe(f64::NAN).is_some());
        assert!(m.observe(-5.5).is_some(), "drop of 1.5 beyond best -4");
        assert!(m.observe(-4.5).is_none(), "drop of 0.5 is tolerated");
        // diverged observations must not move `best`
        assert!(m.observe(-4.0).is_none());
    }

    #[test]
    fn monitor_without_collapse_only_checks_finiteness() {
        let mut m = DivergenceMonitor::new(None);
        assert!(m.observe(100.0).is_none());
        assert!(m.observe(-1.0e9).is_none());
        assert!(m.observe(f64::INFINITY).is_some());
    }

    #[test]
    fn retrain_request_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!(
            "cocktail-retrain-request-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(
            load_retrain_request(&dir)
                .expect("missing file is ok")
                .is_none(),
            "no demand pending in an empty dir"
        );
        let req = RetrainRequest {
            system: "oscillator".to_string(),
            reason: "served-output drift on control dim 0".to_string(),
            observed: 0.41,
            threshold: 0.25,
            source: "cocktail-serve drift detector".to_string(),
        };
        let path = save_retrain_request(&dir, &req).expect("save");
        assert!(path.ends_with(RETRAIN_REQUEST_FILE));
        assert!(
            !dir.join(format!("{RETRAIN_REQUEST_FILE}.tmp")).exists(),
            "temp file never outlives the publish"
        );
        let back = load_retrain_request(&dir).expect("load").expect("present");
        assert_eq!(back, req);
        // a torn file is a typed error, not a panic
        std::fs::write(&path, b"{torn").expect("corrupt");
        assert!(matches!(
            load_retrain_request(&dir),
            Err(PipelineError::Checkpoint { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn monitor_rewind_restores_best_from_history() {
        let mut m = DivergenceMonitor::new(Some(0.5));
        m.rewind_to([-3.0, -2.0, f64::NAN, -4.0]);
        assert!(m.observe(-2.4).is_none());
        assert!(m.observe(-2.6).is_some(), "best is -2.0 from history");
    }

    #[test]
    fn checkpoint_file_round_trip_and_validation() {
        let dir = std::env::temp_dir().join(format!(
            "cocktail-supervisor-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let session = PpoSession::new(
            &PpoConfig {
                iterations: 1,
                episodes_per_iteration: 1,
                hidden: 4,
                seed: 5,
                ..Default::default()
            },
            1,
            1,
        );
        let ckpt = PipelineCheckpoint::new(
            5,
            StageCheckpoint::Mixing {
                ppo: session.checkpoint(),
            },
        );
        let path = save_checkpoint(&dir, &ckpt).expect("save");
        assert!(path.ends_with(CHECKPOINT_FILE));
        let back = load_checkpoint(&dir, 5).expect("load").expect("present");
        assert_eq!(back, ckpt);
        assert_eq!(back.stage.stage_name(), "ppo-mixing");

        // wrong seed → typed error, not a silent wrong resume
        let err = load_checkpoint(&dir, 6).expect_err("seed mismatch");
        assert!(matches!(err, PipelineError::Checkpoint { .. }));
        assert!(err.to_string().contains("seed"));

        // empty dir → clean None
        let empty = dir.join("nothing-here");
        assert!(load_checkpoint(&empty, 5).expect("no file is ok").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_on_disk_is_always_a_complete_version() {
        // overwrite the same checkpoint repeatedly; after every save the
        // on-disk file must parse as a complete checkpoint equal to the
        // version just written (never a torn or half-renamed state), and
        // no temp file may linger
        let dir = std::env::temp_dir().join(format!(
            "cocktail-supervisor-test-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let make = |seed: u64| {
            let session = PpoSession::new(
                &PpoConfig {
                    iterations: 1,
                    episodes_per_iteration: 1,
                    hidden: 4,
                    seed,
                    ..Default::default()
                },
                1,
                1,
            );
            PipelineCheckpoint::new(
                seed,
                StageCheckpoint::Mixing {
                    ppo: session.checkpoint(),
                },
            )
        };
        for seed in 0..4u64 {
            let ckpt = make(seed);
            let path = save_checkpoint(&dir, &ckpt).expect("save");
            let on_disk: PipelineCheckpoint =
                serde_json::from_str(&std::fs::read_to_string(&path).expect("checkpoint readable"))
                    .expect("on-disk file is complete JSON");
            assert_eq!(on_disk, ckpt, "seed {seed}");
            assert!(
                !dir.join(format!("{CHECKPOINT_FILE}.tmp")).exists(),
                "temp file must not outlive the save"
            );
        }
        // a stale temp file from a crashed writer must not break the next
        // save or leak into the published checkpoint
        std::fs::write(dir.join(format!("{CHECKPOINT_FILE}.tmp")), b"{torn")
            .expect("plant stale temp");
        let ckpt = make(99);
        save_checkpoint(&dir, &ckpt).expect("save over stale temp");
        let back = load_checkpoint(&dir, 99).expect("load").expect("present");
        assert_eq!(back, ckpt);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let e = PipelineError::PreflightDenied {
            stage: "pre-flight".into(),
            summary: "1 error".into(),
        };
        assert!(e.to_string().contains("pre-flight analysis failed"));
        let d = PipelineError::Diverged {
            stage: "robust-distill".into(),
            attempts: 4,
            detail: "non-finite unit metric NaN".into(),
        };
        assert!(d.to_string().contains("after 4 attempt(s)"));
    }
}
