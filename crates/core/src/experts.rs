//! Expert construction.
//!
//! The paper obtains two experts per system "by DDPG with different
//! hyperparameters, or in the case of the 3D system, DDPG and a
//! model-based controller from \[25\]". Expert quality is explicitly not
//! required ("not necessary to be optimal"); what Table I needs is two
//! imperfect controllers with *different strengths* — one aggressive
//! (safer but energy-hungry), one lazy (frugal but fragile).
//!
//! This module provides both construction paths:
//!
//! * [`cloned_experts`] — deterministic and fast (seconds): behavior-clones
//!   intentionally suboptimal linear feedback laws into Tanh-output MLPs,
//!   so the experts are genuine neural controllers with measurable
//!   Lipschitz constants, yet every bench run is reproducible. The 3D
//!   system's second expert is the model-based [`PolynomialController`]
//!   (matching the paper). This is the default for the experiment harness.
//! * [`ddpg_expert`] — the paper's original path: train an expert with
//!   DDPG directly on the plant (see `examples/train_expert_ddpg.rs`).
//!
//! The substitution is documented in `DESIGN.md` § 3.

use crate::system::SystemId;
use cocktail_control::{Controller, LinearFeedbackController, NnController, PolynomialController};
use cocktail_distill::TeacherDataset;
use cocktail_env::Dynamics;
use cocktail_math::{Matrix, MultiPoly};
use cocktail_nn::train::{fit_regression, TrainConfig};
use cocktail_nn::{Activation, MlpBuilder};
use cocktail_rl::{DdpgConfig, DdpgTrainer, DirectControlMdp, RewardConfig};
use std::sync::Arc;

/// A reference feedback law `u = −K s + b` behind one expert.
#[derive(Debug, Clone)]
pub struct ExpertLaw {
    /// The gain matrix `K`.
    pub gain: Matrix,
    /// The systematic actuation bias `b` — each expert is miscalibrated in
    /// a *different* direction, so a weighted mixture can cancel the error
    /// while discrete switching provably cannot (it always inherits one
    /// expert's full bias).
    pub bias: Vec<f64>,
}

impl ExpertLaw {
    fn new(gain: Matrix, bias: Vec<f64>) -> Self {
        Self { gain, bias }
    }

    /// Materializes the law as a controller.
    pub fn controller(&self, label: &str) -> LinearFeedbackController {
        LinearFeedbackController::with_bias(self.gain.clone(), self.bias.clone(), label)
    }
}

/// The reference (un-cloned) feedback laws behind each system's experts.
///
/// `κ₁` is aggressive with a positive actuation bias (safe but wasteful);
/// `κ₂` is weak with a smaller opposite bias (frugal but fragile). Both
/// are stabilizing on a large part of `X₀`, neither is optimal, and their
/// flaws are complementary — the precondition for adaptive mixing to win.
pub fn reference_laws(sys: SystemId) -> (ExpertLaw, ExpertLaw) {
    match sys {
        SystemId::Oscillator => (
            ExpertLaw::new(Matrix::from_rows(vec![vec![2.4, 3.8]]), vec![4.75]),
            ExpertLaw::new(Matrix::from_rows(vec![vec![1.1, 1.8]]), vec![-2.0]),
        ),
        SystemId::Poly3d => (
            ExpertLaw::new(Matrix::from_rows(vec![vec![1.0, 3.0, 3.0]]), vec![0.5]),
            ExpertLaw::new(Matrix::from_rows(vec![vec![0.8, 1.6, 1.6]]), vec![-0.25]),
        ),
        SystemId::CartPole => (
            ExpertLaw::new(
                Matrix::from_rows(vec![vec![-2.0, -4.0, -45.0, -10.0]]),
                vec![3.0],
            ),
            ExpertLaw::new(
                Matrix::from_rows(vec![vec![-0.5, -1.5, -25.0, -5.0]]),
                vec![-0.8],
            ),
        ),
    }
}

/// Behavior-clones a linear law into a Tanh-output neural controller
/// scaled to the plant's control bound.
fn clone_law(
    sys: &dyn Dynamics,
    law: &ExpertLaw,
    hidden: usize,
    label: &str,
    seed: u64,
) -> NnController {
    let teacher = law.controller(label);
    let (_, u_hi) = sys.control_bounds();
    // dataset: the verification domain plus the teacher's own trajectories
    let uniform = TeacherDataset::sample_uniform(&teacher, &sys.verification_domain(), 1024, seed);
    let on_policy = TeacherDataset::sample_on_policy(&teacher, sys, 8, seed.wrapping_add(1));
    let data = uniform.merge(on_policy);
    // targets are normalized into [-1, 1] for the tanh output
    let targets: Vec<Vec<f64>> = data
        .controls()
        .iter()
        .map(|u| {
            u.iter()
                .zip(&u_hi)
                .map(|(&v, &h)| (v / h).clamp(-1.0, 1.0))
                .collect()
        })
        .collect();
    let mut net = MlpBuilder::new(sys.state_dim())
        .hidden(hidden, Activation::Tanh)
        .hidden(hidden, Activation::Tanh)
        .output(sys.control_dim(), Activation::Tanh)
        .seed(seed)
        .build();
    fit_regression(
        &mut net,
        data.states(),
        &targets,
        &TrainConfig {
            epochs: 60,
            learning_rate: 5e-3,
            seed,
            ..Default::default()
        },
    );
    NnController::with_name(net, u_hi, label)
}

/// Builds the two deterministic experts of a system (the default,
/// reproducible expert path; see the module docs for the substitution
/// rationale).
pub fn cloned_experts(sys_id: SystemId, seed: u64) -> Vec<Arc<dyn Controller>> {
    let sys = sys_id.dynamics();
    let (law1, law2) = reference_laws(sys_id);
    let kappa1: Arc<dyn Controller> = Arc::new(clone_law(
        sys.as_ref(),
        &law1,
        32,
        "kappa1",
        seed.wrapping_add(100),
    ));
    let kappa2: Arc<dyn Controller> = match sys_id {
        // the paper's 3D κ₂ is the model-based polynomial controller [25]
        SystemId::Poly3d => {
            let polys = (0..law2.gain.rows())
                .map(|r| {
                    let mut p = MultiPoly::constant(sys.state_dim(), law2.bias[r]);
                    for c in 0..law2.gain.cols() {
                        let mut e = vec![0u32; sys.state_dim()];
                        e[c] = 1;
                        p.add_term(&e, -law2.gain[(r, c)]);
                    }
                    p
                })
                .collect();
            Arc::new(PolynomialController::with_name(polys, "kappa2"))
        }
        _ => Arc::new(clone_law(
            sys.as_ref(),
            &law2,
            16,
            "kappa2",
            seed.wrapping_add(200),
        )),
    };
    vec![kappa1, kappa2]
}

/// Trains a neural expert with DDPG directly on the plant — the paper's
/// original expert-construction path.
///
/// Returns the actor wrapped as a controller scaled to the control bound.
pub fn ddpg_expert(sys_id: SystemId, config: &DdpgConfig, label: &str) -> NnController {
    let sys = sys_id.dynamics();
    let (_, u_hi) = sys.control_bounds();
    let mut mdp = DirectControlMdp::new(sys.clone(), RewardConfig::default(), config.seed);
    let trained = DdpgTrainer::new(config, sys.state_dim(), sys.control_dim()).train(&mut mdp);
    NnController::with_name(trained.actor, u_hi, label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate, EvalConfig};
    use crate::testutil::oscillator_experts;

    #[test]
    fn cloned_experts_have_expected_shapes() {
        for sys_id in SystemId::all() {
            let experts = cloned_experts(sys_id, 0);
            assert_eq!(experts.len(), 2);
            let sys = sys_id.dynamics();
            for e in &experts {
                assert_eq!(e.state_dim(), sys.state_dim());
                assert_eq!(e.control_dim(), sys.control_dim());
            }
        }
    }

    #[test]
    fn cloned_expert_tracks_reference_law() {
        let sys_id = SystemId::Oscillator;
        let sys = sys_id.dynamics();
        let (law1, _) = reference_laws(sys_id);
        let reference = law1.controller("reference");
        let experts = oscillator_experts();
        let mut rng = cocktail_math::rng::seeded(5);
        let mut err_acc = 0.0;
        let n = 100;
        for _ in 0..n {
            let s = cocktail_math::rng::uniform_in_box(&mut rng, &sys.initial_set());
            let want = sys.clip_control(&reference.control(&s));
            let got = experts[0].control(&s);
            err_acc += (want[0] - got[0]).abs();
        }
        assert!(
            err_acc / (n as f64) < 2.0,
            "mean cloning error {}",
            err_acc / n as f64
        );
    }

    #[test]
    fn experts_have_complementary_profiles_on_oscillator() {
        let sys_id = SystemId::Oscillator;
        let sys = sys_id.dynamics();
        let experts = oscillator_experts();
        let cfg = EvalConfig {
            samples: 200,
            ..Default::default()
        };
        let e1 = evaluate(sys.as_ref(), experts[0].as_ref(), &cfg);
        let e2 = evaluate(sys.as_ref(), experts[1].as_ref(), &cfg);
        // complementary flaws: both imperfect (well below 100 %), with κ₁
        // burning clearly more energy (its aggressive gain + larger bias)
        assert!(
            e1.safe_rate > 0.5 && e1.safe_rate < 0.95,
            "κ1 S_r {}",
            e1.safe_rate
        );
        assert!(
            e2.safe_rate > 0.5 && e2.safe_rate < 0.95,
            "κ2 S_r {}",
            e2.safe_rate
        );
        assert!(
            e1.mean_energy > 1.15 * e2.mean_energy,
            "κ1 e {} vs κ2 e {}",
            e1.mean_energy,
            e2.mean_energy
        );
    }

    #[test]
    fn experts_lipschitz_constants_are_finite_and_distinct() {
        let experts = oscillator_experts();
        let domain = SystemId::Oscillator.dynamics().verification_domain();
        let l1 = experts[0].lipschitz(&domain).expect("nn expert");
        let l2 = experts[1].lipschitz(&domain).expect("nn expert");
        assert!(l1.is_finite() && l2.is_finite());
        assert!(l1 > 0.0 && l2 > 0.0);
        assert_ne!(l1, l2);
    }

    #[test]
    fn poly3d_second_expert_is_polynomial() {
        let experts = cloned_experts(SystemId::Poly3d, 0);
        assert_eq!(experts[1].name(), "kappa2");
        // the polynomial expert has a very small Lipschitz constant,
        // mirroring the paper's L = 0.72 for the 3D κ₂
        let domain = SystemId::Poly3d.dynamics().verification_domain();
        let l = experts[1]
            .lipschitz(&domain)
            .expect("polynomial controller");
        assert!(l < 5.0, "polynomial expert L = {l}");
    }
}
