//! The end-to-end Cocktail pipeline (Algorithm 1).

use crate::policy::{DdpgWeightPolicy, PpoWeightPolicy};
use crate::system::SystemId;
use cocktail_control::{Controller, MixedController, NnController, WeightPolicy};
use cocktail_distill::{direct_distill, robust_distill, DistillConfig, TeacherDataset};
use cocktail_rl::ddpg::{DdpgConfig, DdpgTrainer, EpisodeStats};
use cocktail_rl::ppo::{IterationStats, PpoConfig, PpoTrainer};
use cocktail_rl::{MixingMdp, RewardConfig};
use std::sync::Arc;

/// Which RL algorithm learns the adaptive mixing weights. The paper's
/// optimality argument (Proposition 1) applies to PPO; Remark 1 notes
/// that DDPG "can also achieve significant improvement", which this
/// variant lets you test directly (see the `ablation` bench binary).
#[derive(Debug, Clone)]
pub enum MixingAlgorithm {
    /// Proximal policy optimization (the paper's default).
    Ppo,
    /// Deep deterministic policy gradient (Remark 1).
    Ddpg(DdpgConfig),
}

/// Configuration of a full Cocktail run.
#[derive(Debug, Clone)]
pub struct CocktailConfig {
    /// The paper's weight bound `A_B ≥ 1`.
    pub weight_bound: f64,
    /// Which algorithm learns the mixing weights.
    pub mixing: MixingAlgorithm,
    /// PPO hyperparameters of the adaptive-mixing stage (used when
    /// `mixing` is [`MixingAlgorithm::Ppo`]).
    pub ppo: PpoConfig,
    /// Reward shaping (safety punishment / energy).
    pub reward: RewardConfig,
    /// Distillation hyperparameters (shared by `κ_D` and `κ*`; the robust
    /// terms only apply to `κ*`).
    pub distill: DistillConfig,
    /// Uniform teacher samples for the distillation dataset.
    pub dataset_uniform: usize,
    /// On-policy teacher episodes added to the dataset.
    pub dataset_episodes: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for CocktailConfig {
    fn default() -> Self {
        Self {
            weight_bound: 2.0,
            mixing: MixingAlgorithm::Ppo,
            ppo: PpoConfig::default(),
            reward: RewardConfig::default(),
            distill: DistillConfig::default(),
            dataset_uniform: 2048,
            dataset_episodes: 16,
            seed: 0,
        }
    }
}

/// The artifacts of a Cocktail run.
pub struct CocktailResult {
    /// The mixed controller design `A_W` (teacher).
    pub mixed: Arc<MixedController>,
    /// The direct-distillation student `κ_D` (ablation).
    pub kappa_d: Arc<NnController>,
    /// The robust-distillation student `κ*` (the framework's output).
    pub kappa_star: Arc<NnController>,
    /// PPO training statistics of the mixing stage (empty under DDPG).
    pub ppo_history: Vec<IterationStats>,
    /// DDPG training statistics of the mixing stage (empty under PPO).
    pub ddpg_history: Vec<EpisodeStats>,
}

/// Builder for a Cocktail run.
///
/// # Examples
///
/// ```no_run
/// use cocktail_core::pipeline::Cocktail;
/// use cocktail_core::system::SystemId;
///
/// let experts = cocktail_core::experts::cloned_experts(SystemId::Oscillator, 0);
/// let result = Cocktail::new(SystemId::Oscillator, experts).run();
/// println!("L(κ*) = {}", result.kappa_star.lipschitz_constant());
/// ```
pub struct Cocktail {
    system: SystemId,
    experts: Vec<Arc<dyn Controller>>,
    config: CocktailConfig,
}

impl Cocktail {
    /// Starts a run over `experts` on `system`.
    ///
    /// # Panics
    ///
    /// Panics if `experts` is empty.
    pub fn new(system: SystemId, experts: Vec<Arc<dyn Controller>>) -> Self {
        assert!(!experts.is_empty(), "cocktail needs at least one expert");
        Self { system, experts, config: CocktailConfig::default() }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: CocktailConfig) -> Self {
        self.config = config;
        self
    }

    /// Executes both stages: PPO adaptive mixing, then direct and robust
    /// distillation of the mixed teacher.
    pub fn run(self) -> CocktailResult {
        let sys = self.system.dynamics();
        let cfg = &self.config;

        // ---- stage 1: RL-based adaptive mixing (Alg. 1 lines 2-10)
        let mut mdp = MixingMdp::new(
            sys.clone(),
            self.experts.clone(),
            cfg.weight_bound,
            cfg.reward,
            cfg.seed,
        );
        let mut ppo_history = Vec::new();
        let mut ddpg_history = Vec::new();
        let weight_policy: Arc<dyn WeightPolicy> = match &cfg.mixing {
            MixingAlgorithm::Ppo => {
                let trained =
                    PpoTrainer::new(&cfg.ppo, sys.state_dim(), self.experts.len()).train(&mut mdp);
                ppo_history = trained.history;
                Arc::new(PpoWeightPolicy::new(trained.policy, cfg.weight_bound))
            }
            MixingAlgorithm::Ddpg(ddpg) => {
                let trained =
                    DdpgTrainer::new(ddpg, sys.state_dim(), self.experts.len()).train(&mut mdp);
                ddpg_history = trained.history;
                Arc::new(DdpgWeightPolicy::new(trained.actor, cfg.weight_bound))
            }
        };
        let (u_lo, u_hi) = sys.control_bounds();
        let mixed = Arc::new(MixedController::new(
            self.experts.clone(),
            weight_policy,
            u_lo,
            u_hi,
        ));

        // ---- stage 2: distillation (Alg. 1 lines 11-14)
        let uniform = TeacherDataset::sample_uniform(
            mixed.as_ref(),
            &sys.verification_domain(),
            cfg.dataset_uniform,
            cfg.seed.wrapping_add(11),
        );
        let data = if cfg.dataset_episodes > 0 {
            uniform.merge(TeacherDataset::sample_on_policy(
                mixed.as_ref(),
                sys.as_ref(),
                cfg.dataset_episodes,
                cfg.seed.wrapping_add(13),
            ))
        } else {
            uniform
        };
        let kappa_d = Arc::new(direct_distill(&data, &cfg.distill));
        let kappa_star = Arc::new(robust_distill(&data, &cfg.distill));

        CocktailResult { mixed, kappa_d, kappa_star, ppo_history, ddpg_history }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Preset;
    use crate::metrics::{evaluate, EvalConfig};
    use crate::testutil::oscillator_experts;
    use std::sync::OnceLock;

    fn smoke_result() -> &'static CocktailResult {
        static CELL: OnceLock<CocktailResult> = OnceLock::new();
        CELL.get_or_init(|| {
            Cocktail::new(SystemId::Oscillator, oscillator_experts().clone())
                .with_config(Preset::Smoke.config())
                .run()
        })
    }

    #[test]
    fn smoke_pipeline_produces_all_artifacts() {
        let result = smoke_result();
        assert_eq!(result.mixed.state_dim(), 2);
        assert_eq!(result.kappa_d.state_dim(), 2);
        assert_eq!(result.kappa_star.state_dim(), 2);
        assert!(!result.ppo_history.is_empty());
        // the robust student must carry a finite Lipschitz constant
        assert!(result.kappa_star.lipschitz_constant().is_finite());
    }

    #[test]
    fn students_approximate_the_mixed_teacher() {
        let result = smoke_result();
        let sys = SystemId::Oscillator.dynamics();
        let mut rng = cocktail_math::rng::seeded(3);
        let mut err = 0.0;
        let n = 50;
        for _ in 0..n {
            let s = cocktail_math::rng::uniform_in_box(&mut rng, &sys.initial_set());
            err += (result.kappa_star.control(&s)[0] - result.mixed.control(&s)[0]).abs();
        }
        // clipped teacher outputs span ±20; a loose bound suffices for the
        // smoke preset
        assert!(err / (n as f64) < 8.0, "mean teacher gap {}", err / n as f64);
    }

    #[test]
    fn ddpg_mixing_variant_runs() {
        // Remark 1: DDPG can replace PPO as the mixing learner
        let config = CocktailConfig {
            mixing: MixingAlgorithm::Ddpg(cocktail_rl::DdpgConfig {
                episodes: 6,
                warmup_steps: 50,
                hidden: 16,
                seed: 4,
                ..Default::default()
            }),
            ..Preset::Smoke.config()
        };
        let result = Cocktail::new(SystemId::Oscillator, oscillator_experts().clone())
            .with_config(config)
            .run();
        assert!(result.ppo_history.is_empty());
        assert!(!result.ddpg_history.is_empty());
        assert_eq!(result.mixed.control(&[0.5, 0.5]).len(), 1);
    }

    #[test]
    fn smoke_students_remain_plausible_controllers() {
        let result = smoke_result();
        let sys = SystemId::Oscillator.dynamics();
        let eval = evaluate(
            sys.as_ref(),
            result.kappa_star.as_ref(),
            &EvalConfig { samples: 100, ..Default::default() },
        );
        // even the smoke preset should stabilize a solid majority
        assert!(eval.safe_rate > 0.5, "S_r {}", eval.safe_rate);
    }
}
