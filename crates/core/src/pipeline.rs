//! The end-to-end Cocktail pipeline (Algorithm 1).

use crate::policy::{DdpgWeightPolicy, PpoWeightPolicy};
use crate::supervisor::{
    load_checkpoint, save_checkpoint, DivergenceMonitor, MixingArtifact, PipelineCheckpoint,
    PipelineError, StageCheckpoint, SupervisorConfig,
};
use crate::system::SystemId;
use cocktail_analysis::{AnalysisReport, Analyzer, ControllerSpec, Diagnostic, PreflightMode};
use cocktail_control::{Controller, MixedController, NnController, WeightPolicy};
use cocktail_distill::{direct_distill, DistillConfig, RobustDistillSession, TeacherDataset};
use cocktail_env::Dynamics;
use cocktail_obs::{Event, NullSink, Span, Telemetry};
use cocktail_rl::ddpg::{DdpgConfig, DdpgTrainer, EpisodeStats};
use cocktail_rl::ppo::{IterationStats, PpoConfig, PpoSession};
use cocktail_rl::{Mdp, MixingMdp, RewardConfig};
use std::path::PathBuf;
use std::sync::Arc;

/// Which RL algorithm learns the adaptive mixing weights. The paper's
/// optimality argument (Proposition 1) applies to PPO; Remark 1 notes
/// that DDPG "can also achieve significant improvement", which this
/// variant lets you test directly (see the `ablation` bench binary).
#[derive(Debug, Clone)]
pub enum MixingAlgorithm {
    /// Proximal policy optimization (the paper's default).
    Ppo,
    /// Deep deterministic policy gradient (Remark 1).
    Ddpg(DdpgConfig),
}

/// Configuration of a full Cocktail run.
#[derive(Debug, Clone)]
pub struct CocktailConfig {
    /// The paper's weight bound `A_B ≥ 1`.
    pub weight_bound: f64,
    /// Which algorithm learns the mixing weights.
    pub mixing: MixingAlgorithm,
    /// PPO hyperparameters of the adaptive-mixing stage (used when
    /// `mixing` is [`MixingAlgorithm::Ppo`]).
    pub ppo: PpoConfig,
    /// Reward shaping (safety punishment / energy).
    pub reward: RewardConfig,
    /// Distillation hyperparameters (shared by `κ_D` and `κ*`; the robust
    /// terms only apply to `κ*`).
    pub distill: DistillConfig,
    /// Uniform teacher samples for the distillation dataset.
    pub dataset_uniform: usize,
    /// On-policy teacher episodes added to the dataset.
    pub dataset_episodes: usize,
    /// Static-analysis gate: expert shapes are checked before the RL
    /// stage and the distilled students are linted before the run
    /// returns. [`PreflightMode::Warn`] prints findings to stderr;
    /// [`PreflightMode::Deny`] panics on error-level findings.
    pub preflight: PreflightMode,
    /// Master seed.
    pub seed: u64,
}

impl Default for CocktailConfig {
    fn default() -> Self {
        Self {
            weight_bound: 2.0,
            mixing: MixingAlgorithm::Ppo,
            ppo: PpoConfig::default(),
            reward: RewardConfig::default(),
            distill: DistillConfig::default(),
            dataset_uniform: 2048,
            dataset_episodes: 16,
            preflight: PreflightMode::default(),
            seed: 0,
        }
    }
}

/// The artifacts of a Cocktail run.
pub struct CocktailResult {
    /// The mixed controller design `A_W` (teacher).
    pub mixed: Arc<MixedController>,
    /// The direct-distillation student `κ_D` (ablation).
    pub kappa_d: Arc<NnController>,
    /// The robust-distillation student `κ*` (the framework's output).
    pub kappa_star: Arc<NnController>,
    /// PPO training statistics of the mixing stage (empty under DDPG).
    pub ppo_history: Vec<IterationStats>,
    /// DDPG training statistics of the mixing stage (empty under PPO).
    pub ddpg_history: Vec<EpisodeStats>,
}

/// Builder for a Cocktail run.
///
/// # Examples
///
/// ```no_run
/// use cocktail_core::pipeline::Cocktail;
/// use cocktail_core::system::SystemId;
///
/// let experts = cocktail_core::experts::cloned_experts(SystemId::Oscillator, 0);
/// let result = Cocktail::new(SystemId::Oscillator, experts).run();
/// println!("L(κ*) = {}", result.kappa_star.lipschitz_constant());
/// ```
pub struct Cocktail {
    system: SystemId,
    experts: Vec<Arc<dyn Controller>>,
    config: CocktailConfig,
    tel: Arc<dyn Telemetry>,
    workers: Option<usize>,
}

impl Cocktail {
    /// Starts a run over `experts` on `system`.
    ///
    /// # Panics
    ///
    /// Panics if `experts` is empty.
    pub fn new(system: SystemId, experts: Vec<Arc<dyn Controller>>) -> Self {
        assert!(!experts.is_empty(), "cocktail needs at least one expert");
        Self {
            system,
            experts,
            config: CocktailConfig::default(),
            tel: Arc::new(NullSink),
            workers: None,
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: CocktailConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a telemetry sink. Every stage of the run emits spans,
    /// counters and structured events through it; the default
    /// [`NullSink`] makes instrumentation free. Telemetry is observational
    /// only: event payloads are a pure function of the seed and config, so
    /// attaching a sink never perturbs the trained artifacts.
    pub fn with_telemetry(mut self, tel: Arc<dyn Telemetry>) -> Self {
        self.tel = tel;
        self
    }

    /// Overrides the worker count used by the parallel sections (episode
    /// collection, dataset sampling). Results are bit-identical for any
    /// count; the default is [`cocktail_math::parallel::default_workers`].
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    fn worker_count(&self) -> usize {
        self.workers
            .unwrap_or_else(cocktail_math::parallel::default_workers)
    }

    /// Pre-flight gate under its own span: expert shapes vs the plant,
    /// before any RL budget is spent on a run that cannot succeed.
    fn preflight_experts(&self, sys: &dyn Dynamics) -> Result<(), PipelineError> {
        let _span = Span::enter(&*self.tel, "pipeline/preflight");
        apply_gate(
            &*self.tel,
            self.config.preflight,
            "pre-flight",
            &self.expert_shape_report(sys),
        )
    }

    /// Executes both stages: PPO adaptive mixing, then direct and robust
    /// distillation of the mixed teacher.
    ///
    /// # Panics
    ///
    /// Panics if a [`PreflightMode::Deny`] gate finds error-level
    /// diagnostics. Use [`Self::try_run`] for a typed error instead.
    pub fn run(self) -> CocktailResult {
        self.try_run().unwrap_or_else(|err| panic!("{err}"))
    }

    /// [`Self::run`] with typed errors: a [`PreflightMode::Deny`] gate
    /// yields [`PipelineError::PreflightDenied`] instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::PreflightDenied`] when a `Deny` gate finds
    /// error-level diagnostics.
    pub fn try_run(self) -> Result<CocktailResult, PipelineError> {
        let sys = self.system.dynamics();
        let cfg = &self.config;
        let _pipeline = Span::enter_with(
            &*self.tel,
            "pipeline",
            vec![
                ("system".to_string(), sys.name().into()),
                ("seed".to_string(), cfg.seed.into()),
            ],
        );

        self.preflight_experts(sys.as_ref())?;

        // ---- stage 1: RL-based adaptive mixing (Alg. 1 lines 2-10)
        let mut ppo_history = Vec::new();
        let mut ddpg_history = Vec::new();
        let weight_policy: Arc<dyn WeightPolicy> = match &cfg.mixing {
            MixingAlgorithm::Ppo => {
                // episodes are collected in parallel: each worker gets a
                // fresh MixingMdp seeded per episode, so the outcome does
                // not depend on the worker count
                let _stage = Span::enter(&*self.tel, "pipeline/ppo-mixing");
                let factory = self.mixing_factory(&sys);
                let mut session = PpoSession::new(&cfg.ppo, sys.state_dim(), self.experts.len())
                    .with_telemetry(self.tel.clone());
                let workers = self.worker_count();
                while !session.is_complete() {
                    session.step(&factory, workers);
                }
                let trained = session.finish();
                ppo_history = trained.history;
                Arc::new(PpoWeightPolicy::new(trained.policy, cfg.weight_bound))
            }
            MixingAlgorithm::Ddpg(ddpg) => {
                let _stage = Span::enter(&*self.tel, "pipeline/ddpg-mixing");
                let trained = self.train_ddpg(ddpg, &sys);
                ddpg_history = trained.history;
                Arc::new(DdpgWeightPolicy::new(trained.actor, cfg.weight_bound))
            }
        };
        let mixed = self.build_mixed(&sys, weight_policy);

        // ---- stage 2: distillation (Alg. 1 lines 11-14)
        let data = self.build_dataset(&sys, mixed.as_ref());
        let kappa_d = {
            let _stage = Span::enter(&*self.tel, "pipeline/direct-distill");
            Arc::new(direct_distill(&data, &cfg.distill))
        };
        let kappa_star = {
            // same loop as `robust_distill`, with the session reporting
            // per-epoch telemetry as it goes
            let _stage = Span::enter(&*self.tel, "pipeline/robust-distill");
            let mut session =
                RobustDistillSession::new(&data, &cfg.distill).with_telemetry(self.tel.clone());
            while !session.is_complete() {
                session.step_epoch(&data);
            }
            Arc::new(session.finish())
        };

        // ---- post-distillation gate: lint the students before handing
        // them to evaluation / verification
        self.lint_students(&sys, &kappa_d, &kappa_star)?;

        Ok(CocktailResult {
            mixed,
            kappa_d,
            kappa_star,
            ppo_history,
            ddpg_history,
        })
    }

    /// Fault-tolerant variant of [`Self::try_run`]: wraps the PPO-mixing
    /// and robust-distillation stages with periodic checkpoints, divergence
    /// detection and bounded rewind/reseed/retry (see
    /// [`crate::supervisor`]).
    ///
    /// With an empty checkpoint directory (or none at all) and no
    /// divergence, the result is **bit-identical** to [`Self::run`]. When
    /// `sup.checkpoint_dir` already holds a checkpoint stamped with this
    /// config's seed, the run resumes from it — kill-and-resume reproduces
    /// the uninterrupted run's artifacts exactly. The DDPG mixing variant
    /// is supervised at stage granularity only (no mid-training rewind).
    ///
    /// # Errors
    ///
    /// [`PipelineError::PreflightDenied`] from a `Deny` gate,
    /// [`PipelineError::Diverged`] when a stage exhausts its retry budget,
    /// [`PipelineError::Interrupted`] at the configured interruption point,
    /// and [`PipelineError::Checkpoint`] for unusable checkpoint files.
    pub fn run_supervised(self, sup: &SupervisorConfig) -> Result<CocktailResult, PipelineError> {
        let sys = self.system.dynamics();
        let cfg = &self.config;
        let _pipeline = Span::enter_with(
            &*self.tel,
            "pipeline",
            vec![
                ("system".to_string(), sys.name().into()),
                ("seed".to_string(), cfg.seed.into()),
                ("supervised".to_string(), true.into()),
            ],
        );
        self.preflight_experts(sys.as_ref())?;

        let loaded = match &sup.checkpoint_dir {
            Some(dir) => load_checkpoint(dir, cfg.seed)?,
            None => None,
        };
        let mut units: u64 = 0; // stage units executed in THIS invocation

        // ---- stage 1: mixing (resumable mid-training under PPO)
        let (mixing, robust_resume) = match loaded.map(|c| c.stage) {
            Some(StageCheckpoint::Robust {
                mixing,
                kappa_d,
                distill,
                losses,
            }) => {
                let algorithm_matches = matches!(
                    (&mixing, &cfg.mixing),
                    (MixingArtifact::Ppo { .. }, MixingAlgorithm::Ppo)
                        | (MixingArtifact::Ddpg { .. }, MixingAlgorithm::Ddpg(_))
                );
                if !algorithm_matches {
                    return Err(self.checkpoint_mismatch(sup, "mixing algorithm"));
                }
                (mixing, Some((kappa_d, distill, losses)))
            }
            Some(StageCheckpoint::Mixing { ppo }) => {
                if !matches!(cfg.mixing, MixingAlgorithm::Ppo) {
                    return Err(self.checkpoint_mismatch(sup, "mixing algorithm"));
                }
                let trained =
                    self.supervise_ppo(PpoSession::from_checkpoint(ppo), &sys, sup, &mut units)?;
                (
                    MixingArtifact::Ppo {
                        policy: trained.policy,
                        history: trained.history,
                    },
                    None,
                )
            }
            None => match &cfg.mixing {
                MixingAlgorithm::Ppo => {
                    let session = PpoSession::new(&cfg.ppo, sys.state_dim(), self.experts.len());
                    let trained = self.supervise_ppo(session, &sys, sup, &mut units)?;
                    (
                        MixingArtifact::Ppo {
                            policy: trained.policy,
                            history: trained.history,
                        },
                        None,
                    )
                }
                MixingAlgorithm::Ddpg(ddpg) => {
                    let _stage = Span::enter(&*self.tel, "pipeline/ddpg-mixing");
                    let trained = self.train_ddpg(ddpg, &sys);
                    units += 1;
                    (
                        MixingArtifact::Ddpg {
                            actor: trained.actor,
                            history: trained.history,
                        },
                        None,
                    )
                }
            },
        };

        // ---- stage 2: robust distillation (resumable mid-epoch). The
        // dataset is a pure function of (mixed, seed) and is regenerated
        // rather than checkpointed.
        let weight_policy: Arc<dyn WeightPolicy> = match &mixing {
            MixingArtifact::Ppo { policy, .. } => {
                Arc::new(PpoWeightPolicy::new(policy.clone(), cfg.weight_bound))
            }
            MixingArtifact::Ddpg { actor, .. } => {
                Arc::new(DdpgWeightPolicy::new(actor.clone(), cfg.weight_bound))
            }
        };
        let mixed = self.build_mixed(&sys, weight_policy);
        let data = self.build_dataset(&sys, mixed.as_ref());
        let (kappa_d, session, losses) = match robust_resume {
            Some((kd_net, distill, losses)) => (
                Arc::new(NnController::unscaled(kd_net, "kappa_D")),
                RobustDistillSession::from_checkpoint(distill),
                losses,
            ),
            None => {
                let kd = {
                    let _stage = Span::enter(&*self.tel, "pipeline/direct-distill");
                    Arc::new(direct_distill(&data, &cfg.distill))
                };
                (
                    kd,
                    RobustDistillSession::new(&data, &cfg.distill),
                    Vec::new(),
                )
            }
        };
        let kappa_star = Arc::new(
            self.supervise_distill(session, &data, &mixing, &kappa_d, losses, sup, &mut units)?,
        );

        self.lint_students(&sys, &kappa_d, &kappa_star)?;

        let (ppo_history, ddpg_history) = match mixing {
            MixingArtifact::Ppo { history, .. } => (history, Vec::new()),
            MixingArtifact::Ddpg { history, .. } => (Vec::new(), history),
        };
        Ok(CocktailResult {
            mixed,
            kappa_d,
            kappa_star,
            ppo_history,
            ddpg_history,
        })
    }

    /// Supervises the PPO mixing stage: step, watch the mean return,
    /// checkpoint on cadence, rewind/reseed on divergence.
    fn supervise_ppo(
        &self,
        mut session: PpoSession,
        sys: &Arc<dyn Dynamics>,
        sup: &SupervisorConfig,
        units: &mut u64,
    ) -> Result<cocktail_rl::TrainedPolicy, PipelineError> {
        const STAGE: &str = "ppo-mixing";
        let cfg = &self.config;
        let _stage = Span::enter(&*self.tel, "pipeline/ppo-mixing");
        session.set_telemetry(self.tel.clone());
        let factory = self.mixing_factory(sys);
        let workers = self.worker_count();
        let mut monitor = DivergenceMonitor::new(sup.divergence.collapse_drop);
        monitor.rewind_to(session.history().iter().map(|s| s.mean_return));
        let mut last_good = session.checkpoint();
        let mut retry: u32 = 0;

        while !session.is_complete() {
            let stats = session.step(&factory, workers);
            *units += 1;
            if let Some(reason) = monitor.observe(stats.mean_return) {
                retry += 1;
                if retry > sup.divergence.max_retries {
                    return Err(PipelineError::Diverged {
                        stage: STAGE.into(),
                        attempts: retry,
                        detail: reason,
                    });
                }
                self.report_rewind(STAGE, retry, &reason);
                session = PpoSession::from_checkpoint(last_good.clone());
                session.set_telemetry(self.tel.clone());
                session.reseed_for_retry(u64::from(retry));
                monitor = DivergenceMonitor::new(sup.divergence.collapse_drop);
                monitor.rewind_to(session.history().iter().map(|s| s.mean_return));
                continue;
            }
            if session.iteration().is_multiple_of(sup.cadence()) || session.is_complete() {
                last_good = session.checkpoint();
                if let Some(dir) = &sup.checkpoint_dir {
                    save_checkpoint(
                        dir,
                        &PipelineCheckpoint::new(
                            cfg.seed,
                            StageCheckpoint::Mixing {
                                ppo: last_good.clone(),
                            },
                        ),
                    )?;
                    self.tel.counter("supervisor.checkpoints", 1);
                }
            }
            if sup.interrupt_after.is_some_and(|n| *units >= n) && !session.is_complete() {
                let checkpoint = match &sup.checkpoint_dir {
                    Some(dir) => save_checkpoint(
                        dir,
                        &PipelineCheckpoint::new(
                            cfg.seed,
                            StageCheckpoint::Mixing {
                                ppo: session.checkpoint(),
                            },
                        ),
                    )?,
                    None => PathBuf::new(),
                };
                return Err(PipelineError::Interrupted {
                    stage: STAGE.into(),
                    checkpoint,
                });
            }
        }
        Ok(session.finish())
    }

    /// Supervises the robust-distillation stage: step one epoch, watch the
    /// training loss, checkpoint on cadence, rewind/reseed on divergence.
    #[allow(
        clippy::too_many_arguments,
        reason = "internal stage driver threading pipeline state through; a \
                  struct would only relabel the same seven values"
    )]
    fn supervise_distill(
        &self,
        mut session: RobustDistillSession,
        data: &TeacherDataset,
        mixing: &MixingArtifact,
        kappa_d: &NnController,
        mut losses: Vec<f64>,
        sup: &SupervisorConfig,
        units: &mut u64,
    ) -> Result<NnController, PipelineError> {
        const STAGE: &str = "robust-distill";
        let cfg = &self.config;
        let _stage = Span::enter(&*self.tel, "pipeline/robust-distill");
        session.set_telemetry(self.tel.clone());
        let robust_ckpt = |session: &RobustDistillSession, losses: &[f64]| {
            PipelineCheckpoint::new(
                cfg.seed,
                StageCheckpoint::Robust {
                    mixing: mixing.clone(),
                    kappa_d: kappa_d.network().clone(),
                    distill: session.checkpoint(),
                    losses: losses.to_vec(),
                },
            )
        };
        // mark the stage transition on disk so a kill before the first
        // epoch already resumes past mixing and κ_D
        if let Some(dir) = &sup.checkpoint_dir {
            save_checkpoint(dir, &robust_ckpt(&session, &losses))?;
            self.tel.counter("supervisor.checkpoints", 1);
        }
        let mut monitor = DivergenceMonitor::new(sup.divergence.collapse_drop);
        monitor.rewind_to(losses.iter().map(|l| -l));
        let mut last_good = (session.checkpoint(), losses.clone());
        let mut retry: u32 = 0;

        while !session.is_complete() {
            let loss = session.step_epoch(data);
            *units += 1;
            // negated: the monitor treats higher as better
            if let Some(reason) = monitor.observe(-loss) {
                retry += 1;
                if retry > sup.divergence.max_retries {
                    return Err(PipelineError::Diverged {
                        stage: STAGE.into(),
                        attempts: retry,
                        detail: reason,
                    });
                }
                self.report_rewind(STAGE, retry, &reason);
                session = RobustDistillSession::from_checkpoint(last_good.0.clone());
                session.set_telemetry(self.tel.clone());
                session.reseed_for_retry(u64::from(retry));
                losses.clone_from(&last_good.1);
                monitor = DivergenceMonitor::new(sup.divergence.collapse_drop);
                monitor.rewind_to(losses.iter().map(|l| -l));
                continue;
            }
            losses.push(loss);
            if session.epoch().is_multiple_of(sup.cadence()) || session.is_complete() {
                last_good = (session.checkpoint(), losses.clone());
                if let Some(dir) = &sup.checkpoint_dir {
                    save_checkpoint(dir, &robust_ckpt(&session, &losses))?;
                    self.tel.counter("supervisor.checkpoints", 1);
                }
            }
            if sup.interrupt_after.is_some_and(|n| *units >= n) && !session.is_complete() {
                let checkpoint = match &sup.checkpoint_dir {
                    Some(dir) => save_checkpoint(dir, &robust_ckpt(&session, &losses))?,
                    None => PathBuf::new(),
                };
                return Err(PipelineError::Interrupted {
                    stage: STAGE.into(),
                    checkpoint,
                });
            }
        }
        Ok(session.finish())
    }

    /// Reports a divergence-triggered rewind through telemetry.
    fn report_rewind(&self, stage: &str, retry: u32, reason: &str) {
        if self.tel.enabled() {
            self.tel.counter("supervisor.rewinds", 1);
            self.tel.record(
                Event::point("supervisor.diverged")
                    .with("stage", stage)
                    .with("retry", u64::from(retry))
                    .with("reason", reason),
            );
        }
    }

    /// The per-episode MDP factory of the PPO mixing stage.
    fn mixing_factory<'a>(
        &'a self,
        sys: &'a Arc<dyn Dynamics>,
    ) -> impl Fn(u64) -> Box<dyn Mdp> + 'a {
        let cfg = &self.config;
        move |seed: u64| -> Box<dyn Mdp> {
            Box::new(MixingMdp::new(
                sys.clone(),
                self.experts.clone(),
                cfg.weight_bound,
                cfg.reward,
                seed,
            ))
        }
    }

    /// Runs the DDPG mixing variant to completion (Remark 1; supervised at
    /// stage granularity only).
    fn train_ddpg(
        &self,
        ddpg: &DdpgConfig,
        sys: &Arc<dyn Dynamics>,
    ) -> cocktail_rl::ddpg::TrainedActor {
        let cfg = &self.config;
        let mut mdp = MixingMdp::new(
            sys.clone(),
            self.experts.clone(),
            cfg.weight_bound,
            cfg.reward,
            cfg.seed,
        );
        DdpgTrainer::new(ddpg, sys.state_dim(), self.experts.len()).train(&mut mdp)
    }

    /// Assembles the mixed teacher `A_W` from the learned weight policy.
    fn build_mixed(
        &self,
        sys: &Arc<dyn Dynamics>,
        weight_policy: Arc<dyn WeightPolicy>,
    ) -> Arc<MixedController> {
        let (u_lo, u_hi) = sys.control_bounds();
        Arc::new(MixedController::new(
            self.experts.clone(),
            weight_policy,
            u_lo,
            u_hi,
        ))
    }

    /// Samples the distillation dataset from the mixed teacher — a pure
    /// function of `(mixed, seed)`, so resumed runs regenerate it exactly.
    fn build_dataset(&self, sys: &Arc<dyn Dynamics>, mixed: &MixedController) -> TeacherDataset {
        let cfg = &self.config;
        let _stage = Span::enter_with(
            &*self.tel,
            "pipeline/dataset",
            vec![
                ("uniform".to_string(), cfg.dataset_uniform.into()),
                ("episodes".to_string(), cfg.dataset_episodes.into()),
            ],
        );
        let workers = self.worker_count();
        let uniform = TeacherDataset::sample_uniform_with_workers(
            mixed,
            &sys.verification_domain(),
            cfg.dataset_uniform,
            cfg.seed.wrapping_add(11),
            workers,
        );
        if cfg.dataset_episodes > 0 {
            uniform.merge(TeacherDataset::sample_on_policy_with_workers(
                mixed,
                sys.as_ref(),
                cfg.dataset_episodes,
                cfg.seed.wrapping_add(13),
                workers,
            ))
        } else {
            uniform
        }
    }

    /// Lints the distilled students through the static analyzer.
    fn lint_students(
        &self,
        sys: &Arc<dyn Dynamics>,
        kappa_d: &Arc<NnController>,
        kappa_star: &Arc<NnController>,
    ) -> Result<(), PipelineError> {
        let cfg = &self.config;
        if cfg.preflight == PreflightMode::Off {
            return Ok(());
        }
        let _stage = Span::enter(&*self.tel, "pipeline/student-lint");
        let analyzer = Analyzer::new(sys.clone());
        let mut report = AnalysisReport::new();
        for (name, student) in [("kappa_d", kappa_d), ("kappa_star", kappa_star)] {
            let spec =
                ControllerSpec::from_network(student.network().clone(), student.scale().to_vec());
            let mut student_report = AnalysisReport::new();
            for d in analyzer.analyze(&spec).diagnostics() {
                student_report.push(Diagnostic {
                    message: format!("{name}: {}", d.message),
                    ..d.clone()
                });
            }
            report.merge(student_report);
        }
        apply_gate(&*self.tel, cfg.preflight, "student", &report)
    }

    fn checkpoint_mismatch(&self, sup: &SupervisorConfig, what: &str) -> PipelineError {
        let path = sup
            .checkpoint_dir
            .as_deref()
            .map(|d| d.join(crate::supervisor::CHECKPOINT_FILE))
            .unwrap_or_default();
        PipelineError::Checkpoint {
            path,
            detail: format!("{what} does not match the configured pipeline"),
        }
    }

    /// Shape checks the analyzer cannot do on opaque `dyn Controller`
    /// experts: every expert must read the plant's states and emit its
    /// controls, or the mixture `Σ aᵢκᵢ(s)` is undefined.
    fn expert_shape_report(&self, sys: &dyn cocktail_env::Dynamics) -> AnalysisReport {
        let mut report = AnalysisReport::new();
        for (i, e) in self.experts.iter().enumerate() {
            if e.state_dim() != sys.state_dim() {
                report.push(Diagnostic::error(
                    "preflight",
                    "dim-mismatch",
                    format!(
                        "expert {i} (`{}`) reads {}-dimensional states but plant `{}` has {}",
                        e.name(),
                        e.state_dim(),
                        sys.name(),
                        sys.state_dim()
                    ),
                ));
            }
            if e.control_dim() != sys.control_dim() {
                report.push(Diagnostic::error(
                    "preflight",
                    "dim-mismatch",
                    format!(
                        "expert {i} (`{}`) emits {}-dimensional controls but plant `{}` takes {}",
                        e.name(),
                        e.control_dim(),
                        sys.name(),
                        sys.control_dim()
                    ),
                ));
            }
        }
        report
    }
}

/// Applies the configured pre-flight policy to a report. With a live
/// telemetry sink the findings become structured `analysis.diagnostic`
/// events (one per finding, plus an `analysis.summary`); with the default
/// [`NullSink`] the `Warn` mode keeps its historical behaviour and prints
/// to stderr. `Deny` additionally rejects error findings with
/// [`PipelineError::PreflightDenied`] (which [`Cocktail::run`] turns into
/// a panic).
fn apply_gate(
    tel: &dyn Telemetry,
    mode: PreflightMode,
    stage: &str,
    report: &AnalysisReport,
) -> Result<(), PipelineError> {
    if report.is_empty() {
        return Ok(());
    }
    match mode {
        PreflightMode::Off => {}
        PreflightMode::Warn | PreflightMode::Deny => {
            if report.has_errors() || report.has_warnings() {
                if tel.enabled() {
                    for d in report.diagnostics() {
                        tel.record(
                            Event::point("analysis.diagnostic")
                                .with("stage", stage)
                                .with("severity", d.severity.to_string())
                                .with("code", d.code)
                                .with("pass", d.pass)
                                .with("message", d.message.as_str()),
                        );
                    }
                    tel.record(
                        Event::point("analysis.summary")
                            .with("stage", stage)
                            .with("summary", report.summary()),
                    );
                } else {
                    eprintln!(
                        "cocktail {stage} analysis ({}):\n{report}",
                        report.summary()
                    );
                }
            }
            if mode == PreflightMode::Deny && report.has_errors() {
                return Err(PipelineError::PreflightDenied {
                    stage: stage.to_string(),
                    summary: report.summary(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Preset;
    use crate::metrics::{evaluate, EvalConfig};
    use crate::testutil::oscillator_experts;
    use cocktail_distill::robust_distill;
    use std::sync::OnceLock;

    fn smoke_result() -> &'static CocktailResult {
        static CELL: OnceLock<CocktailResult> = OnceLock::new();
        CELL.get_or_init(|| {
            Cocktail::new(SystemId::Oscillator, oscillator_experts().clone())
                .with_config(Preset::Smoke.config())
                .run()
        })
    }

    #[test]
    fn smoke_pipeline_produces_all_artifacts() {
        let result = smoke_result();
        assert_eq!(result.mixed.state_dim(), 2);
        assert_eq!(result.kappa_d.state_dim(), 2);
        assert_eq!(result.kappa_star.state_dim(), 2);
        assert!(!result.ppo_history.is_empty());
        // the robust student must carry a finite Lipschitz constant
        assert!(result.kappa_star.lipschitz_constant().is_finite());
    }

    #[test]
    fn students_approximate_the_mixed_teacher() {
        let result = smoke_result();
        let sys = SystemId::Oscillator.dynamics();
        let mut rng = cocktail_math::rng::seeded(3);
        let mut err = 0.0;
        let n = 50;
        for _ in 0..n {
            let s = cocktail_math::rng::uniform_in_box(&mut rng, &sys.initial_set());
            err += (result.kappa_star.control(&s)[0] - result.mixed.control(&s)[0]).abs();
        }
        // clipped teacher outputs span ±20; a loose bound suffices for the
        // smoke preset
        assert!(
            err / (n as f64) < 8.0,
            "mean teacher gap {}",
            err / n as f64
        );
    }

    #[test]
    fn ddpg_mixing_variant_runs() {
        // Remark 1: DDPG can replace PPO as the mixing learner
        let config = CocktailConfig {
            mixing: MixingAlgorithm::Ddpg(cocktail_rl::DdpgConfig {
                episodes: 6,
                warmup_steps: 50,
                hidden: 16,
                seed: 4,
                ..Default::default()
            }),
            ..Preset::Smoke.config()
        };
        let result = Cocktail::new(SystemId::Oscillator, oscillator_experts().clone())
            .with_config(config)
            .run();
        assert!(result.ppo_history.is_empty());
        assert!(!result.ddpg_history.is_empty());
        assert_eq!(result.mixed.control(&[0.5, 0.5]).len(), 1);
    }

    #[test]
    #[should_panic(expected = "pre-flight analysis failed")]
    fn deny_preflight_rejects_mismatched_experts_before_training() {
        // a 3-state expert on the 2-state oscillator: under Deny the gate
        // must fire before any RL budget is spent
        let bad: Arc<dyn Controller> = Arc::new(cocktail_control::LinearFeedbackController::new(
            cocktail_math::Matrix::from_rows(vec![vec![1.0, 0.0, 0.0]]),
        ));
        let config = CocktailConfig {
            preflight: PreflightMode::Deny,
            ..Preset::Smoke.config()
        };
        Cocktail::new(SystemId::Oscillator, vec![bad])
            .with_config(config)
            .run();
    }

    #[test]
    fn warn_preflight_does_not_abort_a_healthy_run() {
        // smoke_result() runs under the default Warn mode; reaching here
        // with artifacts in hand is the assertion
        let result = smoke_result();
        assert_eq!(result.kappa_star.control_dim(), 1);
    }

    #[test]
    fn warn_gate_reports_through_telemetry_instead_of_stderr() {
        let bad: Arc<dyn Controller> = Arc::new(cocktail_control::LinearFeedbackController::new(
            cocktail_math::Matrix::from_rows(vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]),
        ));
        let run = Cocktail::new(SystemId::Oscillator, vec![bad]);
        let report = run.expert_shape_report(SystemId::Oscillator.dynamics().as_ref());
        let sink = cocktail_obs::InMemorySink::new();
        apply_gate(&sink, PreflightMode::Warn, "pre-flight", &report).expect("warn never rejects");
        let events = sink.events();
        let diagnostics: Vec<_> = events
            .iter()
            .filter(|e| e.name == "analysis.diagnostic")
            .collect();
        assert_eq!(diagnostics.len(), 2, "one event per finding");
        for d in &diagnostics {
            assert_eq!(d.field("stage"), Some(&"pre-flight".into()));
            assert_eq!(d.field("severity"), Some(&"error".into()));
        }
        assert!(events.iter().any(|e| e.name == "analysis.summary"));
    }

    #[test]
    fn expert_shape_report_flags_both_dimensions() {
        let bad: Arc<dyn Controller> = Arc::new(cocktail_control::LinearFeedbackController::new(
            cocktail_math::Matrix::from_rows(vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]),
        ));
        let run = Cocktail::new(SystemId::Oscillator, vec![bad]);
        let report = run.expert_shape_report(SystemId::Oscillator.dynamics().as_ref());
        assert_eq!(
            report.count(cocktail_analysis::Severity::Error),
            2,
            "{report}"
        );
    }

    #[test]
    fn final_metrics_are_worker_count_invariant() {
        // the full distill-and-evaluate tail of the pipeline, once per
        // worker count: dataset generation, robust distillation and
        // Monte-Carlo evaluation must agree bit-for-bit
        let result = smoke_result();
        let sys = SystemId::Oscillator.dynamics();
        let run = |workers: usize| {
            let data = TeacherDataset::sample_uniform_with_workers(
                result.mixed.as_ref(),
                &sys.verification_domain(),
                256,
                21,
                workers,
            );
            let student = robust_distill(
                &data,
                &DistillConfig {
                    epochs: 10,
                    hidden: 12,
                    ..Default::default()
                },
            );
            let eval = crate::metrics::evaluate_with_workers(
                sys.as_ref(),
                &student,
                &EvalConfig {
                    samples: 60,
                    seed: 23,
                    ..Default::default()
                },
                workers,
            );
            let loss: f64 = data
                .states()
                .iter()
                .zip(data.controls())
                .map(|(s, u)| {
                    let d = student.control(s)[0] - u[0];
                    d * d
                })
                .sum::<f64>()
                / data.len() as f64;
            (eval.safe_rate, eval.mean_energy.to_bits(), loss.to_bits())
        };
        let reference = run(1);
        for workers in [2, 8] {
            assert_eq!(run(workers), reference, "workers = {workers}");
        }
    }

    #[test]
    fn smoke_students_remain_plausible_controllers() {
        let result = smoke_result();
        let sys = SystemId::Oscillator.dynamics();
        let eval = evaluate(
            sys.as_ref(),
            result.kappa_star.as_ref(),
            &EvalConfig {
                samples: 100,
                ..Default::default()
            },
        );
        // even the smoke preset should stabilize a solid majority
        assert!(eval.safe_rate > 0.5, "S_r {}", eval.safe_rate);
    }
}
