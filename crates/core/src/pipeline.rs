//! The end-to-end Cocktail pipeline (Algorithm 1).

use crate::policy::{DdpgWeightPolicy, PpoWeightPolicy};
use crate::system::SystemId;
use cocktail_analysis::{AnalysisReport, Analyzer, ControllerSpec, Diagnostic, PreflightMode};
use cocktail_control::{Controller, MixedController, NnController, WeightPolicy};
use cocktail_distill::{direct_distill, robust_distill, DistillConfig, TeacherDataset};
use cocktail_rl::ddpg::{DdpgConfig, DdpgTrainer, EpisodeStats};
use cocktail_rl::ppo::{IterationStats, PpoConfig, PpoTrainer};
use cocktail_rl::{Mdp, MixingMdp, RewardConfig};
use std::sync::Arc;

/// Which RL algorithm learns the adaptive mixing weights. The paper's
/// optimality argument (Proposition 1) applies to PPO; Remark 1 notes
/// that DDPG "can also achieve significant improvement", which this
/// variant lets you test directly (see the `ablation` bench binary).
#[derive(Debug, Clone)]
pub enum MixingAlgorithm {
    /// Proximal policy optimization (the paper's default).
    Ppo,
    /// Deep deterministic policy gradient (Remark 1).
    Ddpg(DdpgConfig),
}

/// Configuration of a full Cocktail run.
#[derive(Debug, Clone)]
pub struct CocktailConfig {
    /// The paper's weight bound `A_B ≥ 1`.
    pub weight_bound: f64,
    /// Which algorithm learns the mixing weights.
    pub mixing: MixingAlgorithm,
    /// PPO hyperparameters of the adaptive-mixing stage (used when
    /// `mixing` is [`MixingAlgorithm::Ppo`]).
    pub ppo: PpoConfig,
    /// Reward shaping (safety punishment / energy).
    pub reward: RewardConfig,
    /// Distillation hyperparameters (shared by `κ_D` and `κ*`; the robust
    /// terms only apply to `κ*`).
    pub distill: DistillConfig,
    /// Uniform teacher samples for the distillation dataset.
    pub dataset_uniform: usize,
    /// On-policy teacher episodes added to the dataset.
    pub dataset_episodes: usize,
    /// Static-analysis gate: expert shapes are checked before the RL
    /// stage and the distilled students are linted before the run
    /// returns. [`PreflightMode::Warn`] prints findings to stderr;
    /// [`PreflightMode::Deny`] panics on error-level findings.
    pub preflight: PreflightMode,
    /// Master seed.
    pub seed: u64,
}

impl Default for CocktailConfig {
    fn default() -> Self {
        Self {
            weight_bound: 2.0,
            mixing: MixingAlgorithm::Ppo,
            ppo: PpoConfig::default(),
            reward: RewardConfig::default(),
            distill: DistillConfig::default(),
            dataset_uniform: 2048,
            dataset_episodes: 16,
            preflight: PreflightMode::default(),
            seed: 0,
        }
    }
}

/// The artifacts of a Cocktail run.
pub struct CocktailResult {
    /// The mixed controller design `A_W` (teacher).
    pub mixed: Arc<MixedController>,
    /// The direct-distillation student `κ_D` (ablation).
    pub kappa_d: Arc<NnController>,
    /// The robust-distillation student `κ*` (the framework's output).
    pub kappa_star: Arc<NnController>,
    /// PPO training statistics of the mixing stage (empty under DDPG).
    pub ppo_history: Vec<IterationStats>,
    /// DDPG training statistics of the mixing stage (empty under PPO).
    pub ddpg_history: Vec<EpisodeStats>,
}

/// Builder for a Cocktail run.
///
/// # Examples
///
/// ```no_run
/// use cocktail_core::pipeline::Cocktail;
/// use cocktail_core::system::SystemId;
///
/// let experts = cocktail_core::experts::cloned_experts(SystemId::Oscillator, 0);
/// let result = Cocktail::new(SystemId::Oscillator, experts).run();
/// println!("L(κ*) = {}", result.kappa_star.lipschitz_constant());
/// ```
pub struct Cocktail {
    system: SystemId,
    experts: Vec<Arc<dyn Controller>>,
    config: CocktailConfig,
}

impl Cocktail {
    /// Starts a run over `experts` on `system`.
    ///
    /// # Panics
    ///
    /// Panics if `experts` is empty.
    pub fn new(system: SystemId, experts: Vec<Arc<dyn Controller>>) -> Self {
        assert!(!experts.is_empty(), "cocktail needs at least one expert");
        Self {
            system,
            experts,
            config: CocktailConfig::default(),
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: CocktailConfig) -> Self {
        self.config = config;
        self
    }

    /// Executes both stages: PPO adaptive mixing, then direct and robust
    /// distillation of the mixed teacher.
    pub fn run(self) -> CocktailResult {
        let sys = self.system.dynamics();
        let cfg = &self.config;

        // ---- pre-flight gate: expert shapes vs the plant, before any
        // RL budget is spent on a run that cannot succeed
        if cfg.preflight != PreflightMode::Off {
            apply_gate(
                cfg.preflight,
                "pre-flight",
                &self.expert_shape_report(sys.as_ref()),
            );
        }

        // ---- stage 1: RL-based adaptive mixing (Alg. 1 lines 2-10)
        let mut ppo_history = Vec::new();
        let mut ddpg_history = Vec::new();
        let weight_policy: Arc<dyn WeightPolicy> = match &cfg.mixing {
            MixingAlgorithm::Ppo => {
                // episodes are collected in parallel: each worker gets a
                // fresh MixingMdp seeded per episode, so the outcome does
                // not depend on the worker count
                let factory = |seed: u64| -> Box<dyn Mdp> {
                    Box::new(MixingMdp::new(
                        sys.clone(),
                        self.experts.clone(),
                        cfg.weight_bound,
                        cfg.reward,
                        seed,
                    ))
                };
                let trained = PpoTrainer::new(&cfg.ppo, sys.state_dim(), self.experts.len())
                    .train_episodes(&factory);
                ppo_history = trained.history;
                Arc::new(PpoWeightPolicy::new(trained.policy, cfg.weight_bound))
            }
            MixingAlgorithm::Ddpg(ddpg) => {
                let mut mdp = MixingMdp::new(
                    sys.clone(),
                    self.experts.clone(),
                    cfg.weight_bound,
                    cfg.reward,
                    cfg.seed,
                );
                let trained =
                    DdpgTrainer::new(ddpg, sys.state_dim(), self.experts.len()).train(&mut mdp);
                ddpg_history = trained.history;
                Arc::new(DdpgWeightPolicy::new(trained.actor, cfg.weight_bound))
            }
        };
        let (u_lo, u_hi) = sys.control_bounds();
        let mixed = Arc::new(MixedController::new(
            self.experts.clone(),
            weight_policy,
            u_lo,
            u_hi,
        ));

        // ---- stage 2: distillation (Alg. 1 lines 11-14)
        let uniform = TeacherDataset::sample_uniform(
            mixed.as_ref(),
            &sys.verification_domain(),
            cfg.dataset_uniform,
            cfg.seed.wrapping_add(11),
        );
        let data = if cfg.dataset_episodes > 0 {
            uniform.merge(TeacherDataset::sample_on_policy(
                mixed.as_ref(),
                sys.as_ref(),
                cfg.dataset_episodes,
                cfg.seed.wrapping_add(13),
            ))
        } else {
            uniform
        };
        let kappa_d = Arc::new(direct_distill(&data, &cfg.distill));
        let kappa_star = Arc::new(robust_distill(&data, &cfg.distill));

        // ---- post-distillation gate: lint the students before handing
        // them to evaluation / verification
        if cfg.preflight != PreflightMode::Off {
            let analyzer = Analyzer::new(sys.clone());
            let mut report = AnalysisReport::new();
            for (name, student) in [("kappa_d", &kappa_d), ("kappa_star", &kappa_star)] {
                let spec = ControllerSpec::from_network(
                    student.network().clone(),
                    student.scale().to_vec(),
                );
                let mut student_report = AnalysisReport::new();
                for d in analyzer.analyze(&spec).diagnostics() {
                    student_report.push(Diagnostic {
                        message: format!("{name}: {}", d.message),
                        ..d.clone()
                    });
                }
                report.merge(student_report);
            }
            apply_gate(cfg.preflight, "student", &report);
        }

        CocktailResult {
            mixed,
            kappa_d,
            kappa_star,
            ppo_history,
            ddpg_history,
        }
    }

    /// Shape checks the analyzer cannot do on opaque `dyn Controller`
    /// experts: every expert must read the plant's states and emit its
    /// controls, or the mixture `Σ aᵢκᵢ(s)` is undefined.
    fn expert_shape_report(&self, sys: &dyn cocktail_env::Dynamics) -> AnalysisReport {
        let mut report = AnalysisReport::new();
        for (i, e) in self.experts.iter().enumerate() {
            if e.state_dim() != sys.state_dim() {
                report.push(Diagnostic::error(
                    "preflight",
                    "dim-mismatch",
                    format!(
                        "expert {i} (`{}`) reads {}-dimensional states but plant `{}` has {}",
                        e.name(),
                        e.state_dim(),
                        sys.name(),
                        sys.state_dim()
                    ),
                ));
            }
            if e.control_dim() != sys.control_dim() {
                report.push(Diagnostic::error(
                    "preflight",
                    "dim-mismatch",
                    format!(
                        "expert {i} (`{}`) emits {}-dimensional controls but plant `{}` takes {}",
                        e.name(),
                        e.control_dim(),
                        sys.name(),
                        sys.control_dim()
                    ),
                ));
            }
        }
        report
    }
}

/// Applies the configured pre-flight policy to a report: `Warn` prints
/// findings to stderr, `Deny` additionally panics on error findings.
fn apply_gate(mode: PreflightMode, stage: &str, report: &AnalysisReport) {
    if report.is_empty() {
        return;
    }
    match mode {
        PreflightMode::Off => {}
        PreflightMode::Warn => {
            if report.has_errors() || report.has_warnings() {
                eprintln!(
                    "cocktail {stage} analysis ({}):\n{report}",
                    report.summary()
                );
            }
        }
        PreflightMode::Deny => {
            if report.has_errors() || report.has_warnings() {
                eprintln!(
                    "cocktail {stage} analysis ({}):\n{report}",
                    report.summary()
                );
            }
            assert!(
                !report.has_errors(),
                "cocktail {stage} analysis failed ({}); set preflight to Warn or Off to \
                 proceed anyway",
                report.summary()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Preset;
    use crate::metrics::{evaluate, EvalConfig};
    use crate::testutil::oscillator_experts;
    use std::sync::OnceLock;

    fn smoke_result() -> &'static CocktailResult {
        static CELL: OnceLock<CocktailResult> = OnceLock::new();
        CELL.get_or_init(|| {
            Cocktail::new(SystemId::Oscillator, oscillator_experts().clone())
                .with_config(Preset::Smoke.config())
                .run()
        })
    }

    #[test]
    fn smoke_pipeline_produces_all_artifacts() {
        let result = smoke_result();
        assert_eq!(result.mixed.state_dim(), 2);
        assert_eq!(result.kappa_d.state_dim(), 2);
        assert_eq!(result.kappa_star.state_dim(), 2);
        assert!(!result.ppo_history.is_empty());
        // the robust student must carry a finite Lipschitz constant
        assert!(result.kappa_star.lipschitz_constant().is_finite());
    }

    #[test]
    fn students_approximate_the_mixed_teacher() {
        let result = smoke_result();
        let sys = SystemId::Oscillator.dynamics();
        let mut rng = cocktail_math::rng::seeded(3);
        let mut err = 0.0;
        let n = 50;
        for _ in 0..n {
            let s = cocktail_math::rng::uniform_in_box(&mut rng, &sys.initial_set());
            err += (result.kappa_star.control(&s)[0] - result.mixed.control(&s)[0]).abs();
        }
        // clipped teacher outputs span ±20; a loose bound suffices for the
        // smoke preset
        assert!(
            err / (n as f64) < 8.0,
            "mean teacher gap {}",
            err / n as f64
        );
    }

    #[test]
    fn ddpg_mixing_variant_runs() {
        // Remark 1: DDPG can replace PPO as the mixing learner
        let config = CocktailConfig {
            mixing: MixingAlgorithm::Ddpg(cocktail_rl::DdpgConfig {
                episodes: 6,
                warmup_steps: 50,
                hidden: 16,
                seed: 4,
                ..Default::default()
            }),
            ..Preset::Smoke.config()
        };
        let result = Cocktail::new(SystemId::Oscillator, oscillator_experts().clone())
            .with_config(config)
            .run();
        assert!(result.ppo_history.is_empty());
        assert!(!result.ddpg_history.is_empty());
        assert_eq!(result.mixed.control(&[0.5, 0.5]).len(), 1);
    }

    #[test]
    #[should_panic(expected = "pre-flight analysis failed")]
    fn deny_preflight_rejects_mismatched_experts_before_training() {
        // a 3-state expert on the 2-state oscillator: under Deny the gate
        // must fire before any RL budget is spent
        let bad: Arc<dyn Controller> = Arc::new(cocktail_control::LinearFeedbackController::new(
            cocktail_math::Matrix::from_rows(vec![vec![1.0, 0.0, 0.0]]),
        ));
        let config = CocktailConfig {
            preflight: PreflightMode::Deny,
            ..Preset::Smoke.config()
        };
        Cocktail::new(SystemId::Oscillator, vec![bad])
            .with_config(config)
            .run();
    }

    #[test]
    fn warn_preflight_does_not_abort_a_healthy_run() {
        // smoke_result() runs under the default Warn mode; reaching here
        // with artifacts in hand is the assertion
        let result = smoke_result();
        assert_eq!(result.kappa_star.control_dim(), 1);
    }

    #[test]
    fn expert_shape_report_flags_both_dimensions() {
        let bad: Arc<dyn Controller> = Arc::new(cocktail_control::LinearFeedbackController::new(
            cocktail_math::Matrix::from_rows(vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]),
        ));
        let run = Cocktail::new(SystemId::Oscillator, vec![bad]);
        let report = run.expert_shape_report(SystemId::Oscillator.dynamics().as_ref());
        assert_eq!(
            report.count(cocktail_analysis::Severity::Error),
            2,
            "{report}"
        );
    }

    #[test]
    fn final_metrics_are_worker_count_invariant() {
        // the full distill-and-evaluate tail of the pipeline, once per
        // worker count: dataset generation, robust distillation and
        // Monte-Carlo evaluation must agree bit-for-bit
        let result = smoke_result();
        let sys = SystemId::Oscillator.dynamics();
        let run = |workers: usize| {
            let data = TeacherDataset::sample_uniform_with_workers(
                result.mixed.as_ref(),
                &sys.verification_domain(),
                256,
                21,
                workers,
            );
            let student = robust_distill(
                &data,
                &DistillConfig {
                    epochs: 10,
                    hidden: 12,
                    ..Default::default()
                },
            );
            let eval = crate::metrics::evaluate_with_workers(
                sys.as_ref(),
                &student,
                &EvalConfig {
                    samples: 60,
                    seed: 23,
                    ..Default::default()
                },
                workers,
            );
            let loss: f64 = data
                .states()
                .iter()
                .zip(data.controls())
                .map(|(s, u)| {
                    let d = student.control(s)[0] - u[0];
                    d * d
                })
                .sum::<f64>()
                / data.len() as f64;
            (eval.safe_rate, eval.mean_energy.to_bits(), loss.to_bits())
        };
        let reference = run(1);
        for workers in [2, 8] {
            assert_eq!(run(workers), reference, "workers = {workers}");
        }
    }

    #[test]
    fn smoke_students_remain_plausible_controllers() {
        let result = smoke_result();
        let sys = SystemId::Oscillator.dynamics();
        let eval = evaluate(
            sys.as_ref(),
            result.kappa_star.as_ref(),
            &EvalConfig {
                samples: 100,
                ..Default::default()
            },
        );
        // even the smoke preset should stabilize a solid majority
        assert!(eval.safe_rate > 0.5, "S_r {}", eval.safe_rate);
    }
}
