//! The pipeline's safety-certification stage (Section III-C as a stage).
//!
//! [`certify_student`] runs the full formal loop — Bernstein certificate
//! with partition refinement, closed-loop reachability, control-invariant
//! fixpoint — for a distilled student against its plant and returns the
//! serializable [`SafetyCert`] the serving layer embeds in controller
//! bundles and re-derives at admission time. It is a separate stage rather
//! than part of [`crate::pipeline::Cocktail::run`] because certification is
//! pure read-only analysis of the finished student: training artifacts are
//! bit-identical whether or not it runs.

use crate::system::SystemId;
use cocktail_control::NnController;
use cocktail_obs::{Span, Telemetry};
use cocktail_verify::{certify_controller, default_params, SafetyCert, SafetyParams, VerifyError};

/// Certifies a distilled student on `system` under the `pipeline/certify`
/// span, with [`default_params`] when no explicit budgets are given.
///
/// The certificate is a pure function of `(system, student, params)` and is
/// worker-count invariant, so the same call on another machine re-derives
/// it bit-for-bit (modulo the reported wall-clock).
///
/// # Errors
///
/// Propagates [`VerifyError`] from the verification stages — most notably
/// `ResourceExhausted` when the student's Lipschitz constant pushes the
/// Bernstein partition past its piece budget (the paper's `κ_D` failure
/// mode).
pub fn certify_student(
    system: SystemId,
    student: &NnController,
    params: Option<&SafetyParams>,
    workers: usize,
    tel: &dyn Telemetry,
) -> Result<SafetyCert, VerifyError> {
    let sys = system.dynamics();
    let _stage = Span::enter(tel, "pipeline/certify");
    let defaults;
    let params = match params {
        Some(p) => p,
        None => {
            defaults = default_params(sys.as_ref());
            &defaults
        }
    };
    certify_controller(
        sys.as_ref(),
        student.network(),
        student.scale(),
        params,
        workers,
        tel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_nn::{Activation, MlpBuilder};
    use cocktail_obs::{InMemorySink, NullSink};
    use cocktail_verify::fast_params;

    fn student() -> NnController {
        let net = MlpBuilder::new(2)
            .hidden(8, Activation::Tanh)
            .output(1, Activation::Tanh)
            .seed(11)
            .build();
        NnController::with_name(net, vec![20.0], "kappa_star")
    }

    #[test]
    fn stage_emits_span_and_matches_direct_call() {
        let student = student();
        let sys = SystemId::Oscillator.dynamics();
        let params = fast_params(sys.as_ref());
        let tel = InMemorySink::new();
        let cert = certify_student(SystemId::Oscillator, &student, Some(&params), 2, &tel)
            .expect("certifies");
        assert!(
            !tel.events_named("pipeline/certify").is_empty(),
            "stage span must be recorded"
        );
        assert!(
            !tel.events_named("verify.verdict").is_empty(),
            "verdict event must pass through the stage telemetry"
        );
        let direct = cocktail_verify::certify_controller(
            sys.as_ref(),
            student.network(),
            student.scale(),
            &params,
            2,
            &NullSink,
        )
        .expect("certifies");
        assert!(cert.matches(&direct, 0.0), "stage must equal direct call");
    }

    #[test]
    fn default_budgets_pass_their_own_ceilings() {
        // `certify_student(.., None, ..)` resolves to `default_params`; a
        // full default-budget run is a release-mode concern (pipeline
        // example and CI), but the defaults must never trip the admission
        // ceilings or every exported bundle would be refused
        for system in SystemId::all() {
            let sys = system.dynamics();
            let params = default_params(sys.as_ref());
            assert!(
                params
                    .budget_ceiling_violation(&sys.verification_domain())
                    .is_none(),
                "{}",
                system.label()
            );
        }
    }
}
