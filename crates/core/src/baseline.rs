//! The switching-adaptation baseline `A_S` \[4\].

use crate::policy::PpoSelector;
use crate::system::SystemId;
use cocktail_control::{Controller, GreedySelector, SwitchingController};
use cocktail_rl::ppo::{PpoConfig, PpoTrainer};
use cocktail_rl::{RewardConfig, SwitchingMdp};
use std::sync::Arc;

/// How the switching baseline picks its active expert.
#[derive(Debug, Clone)]
pub enum SwitchingKind {
    /// RL-trained selector (the energy-efficient adaptation of \[4\]): PPO
    /// over the one-hot restriction of the mixing action space.
    Learned(PpoConfig),
    /// Model-based greedy one-step-lookahead selector (ablation).
    Greedy {
        /// Lookahead depth in plant steps.
        lookahead: usize,
    },
}

/// Builds the switching baseline `A_S` over `experts`.
///
/// # Panics
///
/// Panics if `experts` is empty.
pub fn switching_baseline(
    sys_id: SystemId,
    experts: Vec<Arc<dyn Controller>>,
    kind: SwitchingKind,
    reward: RewardConfig,
    seed: u64,
) -> SwitchingController {
    assert!(!experts.is_empty(), "switching needs at least one expert");
    let sys = sys_id.dynamics();
    match kind {
        SwitchingKind::Learned(ppo) => {
            let mut mdp = SwitchingMdp::new(sys.clone(), experts.clone(), reward, seed);
            let trained = PpoTrainer::new(&ppo, sys.state_dim(), experts.len()).train(&mut mdp);
            SwitchingController::new(experts, Arc::new(PpoSelector::new(trained.policy)))
        }
        SwitchingKind::Greedy { lookahead } => {
            SwitchingController::new(experts, Arc::new(GreedySelector::new(sys, lookahead)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate, EvalConfig};
    use crate::testutil::oscillator_experts;

    #[test]
    fn greedy_baseline_outperforms_the_weak_expert() {
        let sys_id = SystemId::Oscillator;
        let experts = oscillator_experts().clone();
        let a_s = switching_baseline(
            sys_id,
            experts.clone(),
            SwitchingKind::Greedy { lookahead: 8 },
            RewardConfig::default(),
            0,
        );
        let sys = sys_id.dynamics();
        let cfg = EvalConfig {
            samples: 150,
            ..Default::default()
        };
        let sw = evaluate(sys.as_ref(), &a_s, &cfg);
        let weak = evaluate(sys.as_ref(), experts[1].as_ref(), &cfg);
        assert!(
            sw.safe_rate >= weak.safe_rate,
            "switching {} vs weak expert {}",
            sw.safe_rate,
            weak.safe_rate
        );
    }

    #[test]
    fn learned_baseline_trains_and_controls() {
        let sys_id = SystemId::Oscillator;
        let experts = oscillator_experts().clone();
        let ppo = PpoConfig {
            iterations: 5,
            episodes_per_iteration: 4,
            hidden: 16,
            ..Default::default()
        };
        let a_s = switching_baseline(
            sys_id,
            experts,
            SwitchingKind::Learned(ppo),
            RewardConfig::default(),
            1,
        );
        let u = a_s.control(&[0.5, 0.5]);
        assert_eq!(u.len(), 1);
        assert!(u[0].abs() <= 20.0);
    }
}
