//! Rendering experiment results as aligned text and Markdown tables.
//!
//! The bench binaries print through these helpers so the formatting is
//! tested library code rather than ad-hoc `println!` strings, and so
//! downstream users can embed the same tables in their own reports.

use crate::experiment::{Table1Row, Table2Entry};
use std::fmt::Write as _;

/// Formats an optional Lipschitz constant the way Table I does ("-" for
/// the composite controllers).
pub fn fmt_lipschitz(l: Option<f64>) -> String {
    match l {
        Some(v) => format!("{v:.1}"),
        None => "-".to_owned(),
    }
}

/// Formats a possibly-NaN energy value ("n/a" when no safe trajectory
/// existed to average over).
pub fn fmt_energy(e: f64) -> String {
    if e.is_nan() {
        "n/a".to_owned()
    } else {
        format!("{e:.1}")
    }
}

/// Renders Table I rows as an aligned plain-text table.
///
/// # Examples
///
/// ```
/// use cocktail_core::experiment::Table1Row;
/// use cocktail_core::report::render_table1_text;
///
/// let rows = vec![Table1Row {
///     controller: "kappa1".into(),
///     safe_rate_percent: 85.0,
///     energy: 94.1,
///     lipschitz: Some(35.4),
/// }];
/// let out = render_table1_text(&rows);
/// assert!(out.contains("kappa1") && out.contains("85.0") && out.contains("35.4"));
/// ```
pub fn render_table1_text(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>10} {:>8}",
        "controller", "S_r (%)", "e", "L"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>8.1} {:>10} {:>8}",
            row.controller,
            row.safe_rate_percent,
            fmt_energy(row.energy),
            fmt_lipschitz(row.lipschitz),
        );
    }
    out
}

/// Renders Table I rows as a GitHub-flavoured Markdown table.
pub fn render_table1_markdown(system: &str, rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {system} | S_r (%) | e | L |");
    let _ = writeln!(out, "|---|---|---|---|");
    for row in rows {
        let _ = writeln!(
            out,
            "| {} | {:.1} | {} | {} |",
            row.controller,
            row.safe_rate_percent,
            fmt_energy(row.energy),
            fmt_lipschitz(row.lipschitz),
        );
    }
    out
}

/// Renders Table II entries as an aligned plain-text table.
pub fn render_table2_text(entries: &[Table2Entry]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<12} {:>8} {:>10}",
        "controller", "threat", "S_r (%)", "e"
    );
    for e in entries {
        let _ = writeln!(
            out,
            "{:<12} {:<12} {:>8.1} {:>10}",
            e.controller,
            e.threat,
            e.safe_rate_percent,
            fmt_energy(e.energy),
        );
    }
    out
}

/// Renders the degradation events of a monitored [`MixedController`]
/// (`cocktail_control::MixedController`) as an aligned plain-text table,
/// followed by a per-expert quarantine tally.
///
/// # Examples
///
/// ```
/// use cocktail_control::{DegradationEvent, DegradationReason};
/// use cocktail_core::report::render_degradation_events;
///
/// let events = vec![DegradationEvent {
///     call: 7,
///     expert: 1,
///     expert_name: "faulty(lqr)".into(),
///     reason: DegradationReason::NonFinite,
/// }];
/// let out = render_degradation_events(&events);
/// assert!(out.contains("faulty(lqr)") && out.contains("non-finite"));
/// ```
pub fn render_degradation_events(events: &[cocktail_control::DegradationEvent]) -> String {
    if events.is_empty() {
        return "no experts were quarantined\n".to_owned();
    }
    let mut out = String::new();
    let _ = writeln!(out, "{:<8} {:<20} reason", "call", "expert");
    for e in events {
        let _ = writeln!(
            out,
            "{:<8} {:<20} {}",
            e.call,
            format!("#{} {}", e.expert, e.expert_name),
            e.reason
        );
    }
    // tally: quarantine count per expert, in first-offense order
    let mut tally: Vec<(usize, &str, usize)> = Vec::new();
    for e in events {
        match tally.iter_mut().find(|(i, _, _)| *i == e.expert) {
            Some((_, _, n)) => *n += 1,
            None => tally.push((e.expert, &e.expert_name, 1)),
        }
    }
    let _ = writeln!(out, "---");
    for (i, name, n) in tally {
        let _ = writeln!(out, "expert #{i} ({name}): quarantined {n} time(s)");
    }
    out
}

/// Renders an aggregated telemetry stream ([`cocktail_obs::summarize`])
/// as an aligned plain-text report: spans with completion counts and
/// total wall-clock time, then counter totals, then histogram ranges.
///
/// # Examples
///
/// ```
/// use cocktail_core::report::render_telemetry_summary;
/// use cocktail_obs::{summarize, Event, EventKind};
///
/// let events = vec![Event::counter("ppo.iterations", 3)];
/// let out = render_telemetry_summary(&summarize(&events));
/// assert!(out.contains("ppo.iterations") && out.contains('3'));
/// ```
pub fn render_telemetry_summary(summary: &cocktail_obs::StreamSummary) -> String {
    let mut out = String::new();
    if !summary.spans.is_empty() {
        let _ = writeln!(out, "{:<28} {:>6} {:>12}", "span", "count", "total ms");
        for (name, count, total_us) in &summary.spans {
            let _ = writeln!(
                out,
                "{:<28} {:>6} {:>12.1}",
                name,
                count,
                *total_us as f64 / 1000.0
            );
        }
    }
    if !summary.counters.is_empty() {
        if !out.is_empty() {
            let _ = writeln!(out, "---");
        }
        let _ = writeln!(out, "{:<28} {:>10}", "counter", "total");
        for (name, total) in &summary.counters {
            let _ = writeln!(out, "{name:<28} {total:>10}");
        }
    }
    if !summary.histograms.is_empty() {
        if !out.is_empty() {
            let _ = writeln!(out, "---");
        }
        let _ = writeln!(
            out,
            "{:<28} {:>6} {:>12} {:>12}",
            "histogram", "count", "min", "max"
        );
        for (name, count, lo, hi) in &summary.histograms {
            let _ = writeln!(out, "{name:<28} {count:>6} {lo:>12.4} {hi:>12.4}");
        }
    }
    if summary.points > 0 {
        if !out.is_empty() {
            let _ = writeln!(out, "---");
        }
        let _ = writeln!(out, "point events: {}", summary.points);
    }
    if out.is_empty() {
        out.push_str("no telemetry recorded\n");
    }
    out
}

/// Renders a normalized signal series as a Unicode sparkline (Fig. 2's
/// terminal form). Values are clamped into `[-1, 1]`.
pub fn sparkline(series: &[f64]) -> String {
    const GLYPHS: [char; 7] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇'];
    series
        .iter()
        .map(|&v| {
            let t = ((v + 1.0) / 2.0).clamp(0.0, 1.0);
            GLYPHS[(t * (GLYPHS.len() - 1) as f64).round() as usize]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Table1Row> {
        vec![
            Table1Row {
                controller: "A_S".into(),
                safe_rate_percent: 88.4,
                energy: 94.2,
                lipschitz: None,
            },
            Table1Row {
                controller: "kappa_star".into(),
                safe_rate_percent: 98.8,
                energy: 86.2,
                lipschitz: Some(7.6),
            },
        ]
    }

    #[test]
    fn text_table_has_dash_for_composites() {
        let out = render_table1_text(&rows());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].trim_end().ends_with('-'));
        assert!(lines[2].contains("7.6"));
    }

    #[test]
    fn markdown_table_is_well_formed() {
        let out = render_table1_markdown("Oscillator", &rows());
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("| Oscillator |"));
        assert_eq!(lines[1], "|---|---|---|---|");
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.matches('|').count() == 5));
    }

    #[test]
    fn energy_nan_renders_na() {
        assert_eq!(fmt_energy(f64::NAN), "n/a");
        assert_eq!(fmt_energy(12.34), "12.3");
    }

    #[test]
    fn table2_text_renders_all_entries() {
        let entries = vec![Table2Entry {
            controller: "kappa_D".into(),
            threat: "adversarial".into(),
            safe_rate_percent: 95.2,
            energy: 837.3,
        }];
        let out = render_table2_text(&entries);
        assert!(out.contains("kappa_D") && out.contains("adversarial") && out.contains("837.3"));
    }

    #[test]
    fn degradation_report_tallies_per_expert() {
        use cocktail_control::{DegradationEvent, DegradationReason};
        let events = vec![
            DegradationEvent {
                call: 0,
                expert: 2,
                expert_name: "faulty(nn)".into(),
                reason: DegradationReason::NonFinite,
            },
            DegradationEvent {
                call: 26,
                expert: 2,
                expert_name: "faulty(nn)".into(),
                reason: DegradationReason::OutOfRange {
                    value: 1.0e9,
                    bound: 40.0,
                },
            },
        ];
        let out = render_degradation_events(&events);
        assert!(
            out.contains("expert #2 (faulty(nn)): quarantined 2 time(s)"),
            "{out}"
        );
        assert!(out.contains("non-finite"), "{out}");
        assert_eq!(
            render_degradation_events(&[]),
            "no experts were quarantined\n"
        );
    }

    #[test]
    fn telemetry_summary_renders_all_sections() {
        use cocktail_obs::{summarize, Event, EventKind};
        let mut span_end = Event::new(EventKind::SpanEnd, "pipeline/ppo-mixing");
        span_end.duration_us = Some(2500);
        let events = vec![
            span_end,
            Event::counter("ppo.iterations", 4),
            Event::histogram("ppo.mean_return", -3.25),
            Event::point("ppo.iteration"),
        ];
        let out = render_telemetry_summary(&summarize(&events));
        assert!(out.contains("pipeline/ppo-mixing"), "{out}");
        assert!(out.contains("2.5"), "span total in ms: {out}");
        assert!(out.contains("ppo.iterations"), "{out}");
        assert!(out.contains("-3.2500"), "{out}");
        assert!(out.contains("point events: 1"), "{out}");
        assert_eq!(
            render_telemetry_summary(&summarize(&[])),
            "no telemetry recorded\n"
        );
    }

    #[test]
    fn sparkline_spans_glyph_range() {
        let s = sparkline(&[-1.0, 0.0, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[1], '▄');
        assert_eq!(chars[2], '▇');
        // out-of-range values clamp instead of panicking
        assert_eq!(sparkline(&[5.0]), "▇");
    }
}
