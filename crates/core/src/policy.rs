//! Deployment wrappers turning trained PPO policies into controller parts.

use cocktail_control::{Controller, Selector, WeightPolicy};
use cocktail_rl::ppo::GaussianPolicy;
use std::sync::Arc;

/// The deterministic deployment form of a PPO mixing policy:
/// `a(s) = clip(μ(s), ±A_B)` — the mean of the trained Gaussian, clipped
/// into the paper's weight box.
#[derive(Debug, Clone)]
pub struct PpoWeightPolicy {
    policy: GaussianPolicy,
    bound: f64,
}

impl PpoWeightPolicy {
    /// Wraps a trained policy with the weight bound `A_B`.
    ///
    /// # Panics
    ///
    /// Panics if `bound < 1` (the paper requires `A_B ≥ 1`).
    pub fn new(policy: GaussianPolicy, bound: f64) -> Self {
        assert!(bound >= 1.0, "weight bound must be at least 1");
        Self { policy, bound }
    }

    /// The underlying trained policy.
    pub fn policy(&self) -> &GaussianPolicy {
        &self.policy
    }
}

impl WeightPolicy for PpoWeightPolicy {
    fn weights(&self, s: &[f64]) -> Vec<f64> {
        self.policy.deterministic(s, self.bound)
    }

    fn expert_count(&self) -> usize {
        self.policy.mean_net().output_dim()
    }
}

/// The deployment form of a DDPG mixing actor: the actor's `Tanh` output
/// layer already keeps its outputs in `[-1, 1]`, so the weights are the
/// plain scaling `a(s) = A_B · actor(s)` (Remark 1's alternative mixing
/// learner).
#[derive(Debug, Clone)]
pub struct DdpgWeightPolicy {
    actor: cocktail_nn::Mlp,
    bound: f64,
}

impl DdpgWeightPolicy {
    /// Wraps a trained DDPG actor with the weight bound `A_B`.
    ///
    /// # Panics
    ///
    /// Panics if `bound < 1` (the paper requires `A_B ≥ 1`).
    pub fn new(actor: cocktail_nn::Mlp, bound: f64) -> Self {
        assert!(bound >= 1.0, "weight bound must be at least 1");
        Self { actor, bound }
    }

    /// The underlying actor network.
    pub fn actor(&self) -> &cocktail_nn::Mlp {
        &self.actor
    }
}

impl WeightPolicy for DdpgWeightPolicy {
    fn weights(&self, s: &[f64]) -> Vec<f64> {
        self.actor
            .forward(s)
            .iter()
            .map(|a| (self.bound * a).clamp(-self.bound, self.bound))
            .collect()
    }

    fn expert_count(&self) -> usize {
        self.actor.output_dim()
    }
}

/// The deterministic deployment form of a PPO switching policy: activate
/// the expert with the largest preference score.
#[derive(Debug, Clone)]
pub struct PpoSelector {
    policy: GaussianPolicy,
}

impl PpoSelector {
    /// Wraps a trained switching policy.
    pub fn new(policy: GaussianPolicy) -> Self {
        Self { policy }
    }
}

impl Selector for PpoSelector {
    #[allow(
        clippy::expect_used,
        reason = "scores is non-empty: its length equals the expert count"
    )]
    fn select(&self, s: &[f64], experts: &[Arc<dyn Controller>]) -> usize {
        let scores = self.policy.mean(s);
        assert_eq!(
            scores.len(),
            experts.len(),
            "selector/expert count mismatch"
        );
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty experts")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_control::LinearFeedbackController;
    use cocktail_math::Matrix;

    fn policy() -> GaussianPolicy {
        GaussianPolicy::new(2, 2, 8, 0.0, 3)
    }

    #[test]
    fn weight_policy_clips_to_bound() {
        let p = PpoWeightPolicy::new(policy(), 2.0);
        for s in [[0.0, 0.0], [50.0, -50.0]] {
            let w = p.weights(&s);
            assert_eq!(w.len(), 2);
            assert!(w.iter().all(|a| a.abs() <= 2.0));
        }
        assert_eq!(p.expert_count(), 2);
    }

    #[test]
    fn selector_picks_argmax() {
        let sel = PpoSelector::new(policy());
        let experts: Vec<Arc<dyn Controller>> = vec![
            Arc::new(LinearFeedbackController::new(Matrix::identity(2))),
            Arc::new(LinearFeedbackController::new(Matrix::identity(2))),
        ];
        let s = [0.3, -0.7];
        let scores = sel.policy.mean(&s);
        let want = if scores[0] >= scores[1] { 0 } else { 1 };
        assert_eq!(sel.select(&s, &experts), want);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sub_unit_bound_panics() {
        PpoWeightPolicy::new(policy(), 0.9);
    }

    #[test]
    fn ddpg_weight_policy_scales_and_clamps() {
        use cocktail_nn::{Activation, MlpBuilder};
        let actor = MlpBuilder::new(2)
            .hidden(8, Activation::Relu)
            .output(2, Activation::Tanh)
            .seed(5)
            .build();
        let p = DdpgWeightPolicy::new(actor, 2.0);
        assert_eq!(p.expert_count(), 2);
        for s in [[0.0, 0.0], [10.0, -10.0]] {
            let w = p.weights(&s);
            assert!(w.iter().all(|a| a.abs() <= 2.0));
        }
        // tanh actor output in [-1,1] scaled by the bound
        let raw = p.actor().forward(&[0.3, 0.3]);
        let w = p.weights(&[0.3, 0.3]);
        assert!((w[0] - 2.0 * raw[0]).abs() < 1e-12);
    }
}
