//! Registry of the paper's three benchmark systems.

use cocktail_env::systems::{CartPole, Poly3d, VanDerPol};
use cocktail_env::Dynamics;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One of the paper's Section IV test systems.
///
/// # Examples
///
/// ```
/// use cocktail_core::SystemId;
///
/// let sys = SystemId::CartPole.dynamics();
/// assert_eq!(sys.state_dim(), 4);
/// assert_eq!(SystemId::all().len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemId {
    /// The Van der Pol oscillator (2 states).
    Oscillator,
    /// The 3D polynomial system of \[25, example 15\].
    Poly3d,
    /// The cartpole (4 states).
    CartPole,
}

impl SystemId {
    /// All three systems in the paper's order.
    pub fn all() -> [SystemId; 3] {
        [SystemId::Oscillator, SystemId::Poly3d, SystemId::CartPole]
    }

    /// Instantiates the plant.
    pub fn dynamics(self) -> Arc<dyn Dynamics> {
        match self {
            SystemId::Oscillator => Arc::new(VanDerPol::new()),
            SystemId::Poly3d => Arc::new(Poly3d::new()),
            SystemId::CartPole => Arc::new(CartPole::new()),
        }
    }

    /// The paper's display name.
    pub fn label(self) -> &'static str {
        match self {
            SystemId::Oscillator => "Oscillator",
            SystemId::Poly3d => "3D system",
            SystemId::CartPole => "Cartpole",
        }
    }
}

impl fmt::Display for SystemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_paper() {
        assert_eq!(SystemId::Oscillator.dynamics().state_dim(), 2);
        assert_eq!(SystemId::Poly3d.dynamics().state_dim(), 3);
        assert_eq!(SystemId::CartPole.dynamics().state_dim(), 4);
        assert_eq!(SystemId::Oscillator.dynamics().horizon(), 100);
        assert_eq!(SystemId::CartPole.dynamics().horizon(), 200);
    }

    #[test]
    fn labels_are_unique() {
        let labels: Vec<_> = SystemId::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 3);
        assert!(labels.contains(&"Oscillator"));
    }
}
