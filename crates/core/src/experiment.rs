//! Experiment assembly: the controller line-up and table rows of the
//! paper's Section IV.

use crate::baseline::{switching_baseline, SwitchingKind};
use crate::experts::cloned_experts;
use crate::metrics::{evaluate, signal_trace, EvalConfig};
use crate::pipeline::{Cocktail, CocktailConfig};
use crate::system::SystemId;
use cocktail_control::{Controller, NnController};
use cocktail_distill::{AttackModel, DistillConfig};
use cocktail_rl::ppo::PpoConfig;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Experiment scale presets.
///
/// `Smoke` keeps unit/integration tests in seconds; `Fast` gives readable
/// trends in under a minute per system; `Full` is the bench-quality
/// setting behind `EXPERIMENTS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Preset {
    /// Seconds per system; for tests.
    Smoke,
    /// Under a minute per system; default for interactive runs.
    Fast,
    /// Bench quality; used to regenerate the paper's tables.
    Full,
}

impl Preset {
    /// Reads `COCKTAIL_FAST=1` to downgrade `Full` to `Fast` (used by the
    /// bench binaries so CI smoke runs stay cheap).
    pub fn from_env(default: Preset) -> Preset {
        match std::env::var("COCKTAIL_FAST") {
            Ok(v) if v == "1" => match default {
                Preset::Full => Preset::Fast,
                other => other,
            },
            _ => default,
        }
    }

    /// The pipeline configuration of this preset.
    pub fn config(self) -> CocktailConfig {
        match self {
            Preset::Smoke => CocktailConfig {
                ppo: PpoConfig {
                    iterations: 4,
                    episodes_per_iteration: 4,
                    hidden: 16,
                    ..Default::default()
                },
                distill: DistillConfig {
                    epochs: 30,
                    hidden: 16,
                    ..Default::default()
                },
                dataset_uniform: 256,
                dataset_episodes: 2,
                ..Default::default()
            },
            Preset::Fast => CocktailConfig {
                ppo: PpoConfig {
                    iterations: 30,
                    episodes_per_iteration: 8,
                    hidden: 32,
                    ..Default::default()
                },
                distill: DistillConfig {
                    epochs: 120,
                    hidden: 24,
                    lambda: 5e-2,
                    fgsm_prob: 0.6,
                    ..Default::default()
                },
                dataset_uniform: 1024,
                dataset_episodes: 8,
                ..Default::default()
            },
            Preset::Full => CocktailConfig {
                ppo: PpoConfig {
                    iterations: 80,
                    episodes_per_iteration: 16,
                    hidden: 48,
                    ..Default::default()
                },
                distill: DistillConfig {
                    epochs: 250,
                    hidden: 32,
                    lambda: 5e-2,
                    fgsm_prob: 0.6,
                    ..Default::default()
                },
                dataset_uniform: 2048,
                dataset_episodes: 16,
                ..Default::default()
            },
        }
    }

    /// The evaluation sample count of this preset (the paper uses 500).
    pub fn eval_samples(self) -> usize {
        match self {
            Preset::Smoke => 100,
            Preset::Fast => 250,
            Preset::Full => 500,
        }
    }

    /// PPO configuration for the learned switching baseline, scaled to the
    /// preset.
    pub fn switching_ppo(self) -> PpoConfig {
        let base = self.config().ppo;
        PpoConfig {
            iterations: base.iterations / 2 + 1,
            ..base
        }
    }
}

/// The six controllers Table I compares on one system.
pub struct ControllerSet {
    /// The system they control.
    pub system: SystemId,
    /// Expert 1 (aggressive).
    pub kappa1: Arc<dyn Controller>,
    /// Expert 2 (lazy; polynomial for the 3D system).
    pub kappa2: Arc<dyn Controller>,
    /// Switching-adaptation baseline \[4\].
    pub a_s: Arc<dyn Controller>,
    /// The mixed controller design (Cocktail stage 1).
    pub a_w: Arc<dyn Controller>,
    /// Direct-distillation student (ablation). Kept concrete so the
    /// verification crate can reach the underlying network.
    pub kappa_d: Arc<NnController>,
    /// Robust-distillation student (Cocktail's output). Kept concrete so
    /// the verification crate can reach the underlying network.
    pub kappa_star: Arc<NnController>,
}

impl ControllerSet {
    /// The controllers in the paper's column order, with their labels.
    pub fn lineup(&self) -> Vec<(&'static str, Arc<dyn Controller>)> {
        vec![
            ("kappa1", self.kappa1.clone()),
            ("kappa2", self.kappa2.clone()),
            ("A_S", self.a_s.clone()),
            ("A_W", self.a_w.clone()),
            ("kappa_D", self.kappa_d.clone() as Arc<dyn Controller>),
            ("kappa_star", self.kappa_star.clone() as Arc<dyn Controller>),
        ]
    }
}

/// Per-system adjustments of the distillation hyperparameters. The three
/// plants have control gains spanning two orders of magnitude, so the
/// L2 weight `λ` and the FGSM radius must be scaled per system: too much
/// regularization smooths away the stabilizing gain (cartpole), too little
/// leaves the Lipschitz constant unreduced (oscillator).
pub fn distill_overrides(sys_id: SystemId, distill: &mut DistillConfig) {
    match sys_id {
        SystemId::Oscillator => {}
        SystemId::Poly3d => {
            distill.lambda = 1e-2;
        }
        SystemId::CartPole => {
            distill.lambda = 2e-3;
            distill.fgsm_fraction = 0.04;
            distill.fgsm_prob = 0.3;
            distill.epochs = distill.epochs * 3 / 2;
        }
    }
}

/// Per-system reward shaping. The steer-away term must be proportionate
/// to typical state magnitudes: the oscillator benefits from a strong
/// pull toward the origin (it sharpens the invariant core of Fig. 3),
/// while the cartpole's larger position/velocity scales would let the
/// same coefficient drown out the safety/energy signal.
pub fn reward_overrides(sys_id: SystemId, reward: &mut cocktail_rl::RewardConfig) {
    match sys_id {
        SystemId::Oscillator => reward.state_scale = 1.0,
        SystemId::Poly3d => reward.state_scale = 0.0,
        SystemId::CartPole => reward.state_scale = 0.02,
    }
}

/// The fully-resolved pipeline configuration for one system: the preset
/// scale plus the per-system reward and distillation overrides. Use this
/// (not `preset.config()` alone) whenever results should be comparable to
/// the experiment harness.
pub fn pipeline_config(sys_id: SystemId, preset: Preset, seed: u64) -> CocktailConfig {
    let mut config = CocktailConfig {
        seed,
        ..preset.config()
    };
    distill_overrides(sys_id, &mut config.distill);
    reward_overrides(sys_id, &mut config.reward);
    config
}

/// Runs the full pipeline (experts → mixing → baselines → distillation)
/// and assembles the Table I controller line-up for one system.
pub fn build_controller_set(sys_id: SystemId, preset: Preset, seed: u64) -> ControllerSet {
    let experts = cloned_experts(sys_id, seed);
    let config = pipeline_config(sys_id, preset, seed);
    let reward = config.reward;
    let result = Cocktail::new(sys_id, experts.clone())
        .with_config(config)
        .run();
    // default A_S: deterministic greedy lookahead (the learned variant is
    // available through `baseline::switching_baseline` but is less stable
    // at small training budgets)
    let a_s = switching_baseline(
        sys_id,
        experts.clone(),
        SwitchingKind::Greedy { lookahead: 12 },
        reward,
        seed.wrapping_add(7),
    );
    ControllerSet {
        system: sys_id,
        kappa1: experts[0].clone(),
        kappa2: experts[1].clone(),
        a_s: Arc::new(a_s),
        a_w: result.mixed,
        kappa_d: result.kappa_d,
        kappa_star: result.kappa_star,
    }
}

/// One row of Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Controller label (paper column).
    pub controller: String,
    /// Safe control rate in percent (no attack).
    pub safe_rate_percent: f64,
    /// Mean control energy over safe trajectories.
    pub energy: f64,
    /// Lipschitz constant, `None` for `A_S`/`A_W` (the paper's "-").
    pub lipschitz: Option<f64>,
}

/// Evaluates the full line-up without attacks — Table I for one system.
pub fn table1_rows(set: &ControllerSet, samples: usize, seed: u64) -> Vec<Table1Row> {
    let sys = set.system.dynamics();
    let domain = sys.verification_domain();
    set.lineup()
        .into_iter()
        .map(|(label, c)| {
            let eval = evaluate(
                sys.as_ref(),
                c.as_ref(),
                &EvalConfig {
                    samples,
                    seed,
                    ..Default::default()
                },
            );
            Table1Row {
                controller: label.to_owned(),
                safe_rate_percent: eval.safe_rate_percent(),
                energy: eval.mean_energy,
                lipschitz: c.lipschitz(&domain),
            }
        })
        .collect()
}

/// One entry of Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Entry {
    /// `kappa_D` or `kappa_star`.
    pub controller: String,
    /// `"adversarial"` or `"noise"`.
    pub threat: String,
    /// Safe control rate in percent under the threat.
    pub safe_rate_percent: f64,
    /// Mean control energy over safe trajectories under the threat.
    pub energy: f64,
}

/// Evaluates `κ_D` vs `κ*` under FGSM attacks and measurement noise at
/// `fraction` of the state bound — Table II for one system.
pub fn table2_entries(
    set: &ControllerSet,
    fraction: f64,
    samples: usize,
    seed: u64,
) -> Vec<Table2Entry> {
    let sys = set.system.dynamics();
    let domain = sys.verification_domain();
    let mut out = Vec::with_capacity(4);
    for (threat, adversarial) in [("adversarial", true), ("noise", false)] {
        for (label, c) in [
            ("kappa_D", set.kappa_d.clone()),
            ("kappa_star", set.kappa_star.clone()),
        ] {
            let eval = evaluate(
                sys.as_ref(),
                c.as_ref(),
                &EvalConfig {
                    samples,
                    seed,
                    attack: AttackModel::scaled_to(&domain, fraction, adversarial),
                    ..Default::default()
                },
            );
            out.push(Table2Entry {
                controller: label.to_owned(),
                threat: threat.to_owned(),
                safe_rate_percent: eval.safe_rate_percent(),
                energy: eval.mean_energy,
            });
        }
    }
    out
}

/// The Fig. 2 data: normalized control signals of `κ_D` and `κ*` under an
/// FGSM attack from one representative initial state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Trace {
    /// The system the trace belongs to.
    pub system: String,
    /// `u(t) / U_sup` for `κ_D`.
    pub kappa_d: Vec<f64>,
    /// `u(t) / U_sup` for `κ*`.
    pub kappa_star: Vec<f64>,
}

/// Generates the Fig. 2 traces for one system.
pub fn fig2_trace(set: &ControllerSet, fraction: f64, seed: u64) -> Fig2Trace {
    let sys = set.system.dynamics();
    let domain = sys.verification_domain();
    let attack = AttackModel::scaled_to(&domain, fraction, true);
    let s0 = {
        // representative initial state: halfway to the X₀ corner
        let x0 = sys.initial_set();
        x0.lerp(&vec![0.75; x0.dim()])
    };
    let (_, u_hi) = sys.control_bounds();
    let norm = u_hi[0];
    let normalize = |trace: Vec<f64>| trace.into_iter().map(|u| u / norm).collect::<Vec<f64>>();
    Fig2Trace {
        system: set.system.label().to_owned(),
        kappa_d: normalize(signal_trace(
            sys.as_ref(),
            set.kappa_d.as_ref(),
            &s0,
            &attack,
            seed,
        )),
        kappa_star: normalize(signal_trace(
            sys.as_ref(),
            set.kappa_star.as_ref(),
            &s0,
            &attack,
            seed,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_monotonically() {
        assert!(Preset::Smoke.config().ppo.iterations < Preset::Fast.config().ppo.iterations);
        assert!(Preset::Fast.config().ppo.iterations < Preset::Full.config().ppo.iterations);
        assert!(Preset::Smoke.eval_samples() < Preset::Full.eval_samples());
    }

    use crate::testutil::oscillator_smoke_set;

    #[test]
    fn smoke_controller_set_produces_all_rows() {
        let set = oscillator_smoke_set();
        let rows = table1_rows(set, 60, 1);
        assert_eq!(rows.len(), 6);
        let labels: Vec<&str> = rows.iter().map(|r| r.controller.as_str()).collect();
        assert_eq!(
            labels,
            vec!["kappa1", "kappa2", "A_S", "A_W", "kappa_D", "kappa_star"]
        );
        // Lipschitz: present for the neural/poly controllers, absent for A_S/A_W
        assert!(rows[0].lipschitz.is_some());
        assert!(rows[2].lipschitz.is_none());
        assert!(rows[3].lipschitz.is_none());
        assert!(rows[5].lipschitz.is_some());
    }

    #[test]
    fn table2_has_four_entries() {
        let set = oscillator_smoke_set();
        let entries = table2_entries(set, 0.1, 60, 1);
        assert_eq!(entries.len(), 4);
        assert!(entries
            .iter()
            .all(|e| (0.0..=100.0).contains(&e.safe_rate_percent)));
    }

    #[test]
    fn fig2_traces_are_normalized() {
        let set = oscillator_smoke_set();
        let trace = fig2_trace(set, 0.1, 2);
        assert_eq!(trace.kappa_d.len(), 100);
        assert!(trace.kappa_d.iter().all(|u| u.abs() <= 1.0 + 1e-9));
        assert!(trace.kappa_star.iter().all(|u| u.abs() <= 1.0 + 1e-9));
    }
}
