//! The paper's evaluation metrics (Properties 1–3).

use cocktail_control::Controller;
use cocktail_distill::AttackModel;
use cocktail_env::{rollout, try_rollout, Dynamics, RolloutConfig};
use cocktail_obs::{Event, NullSink, Span, Telemetry};
use serde::{Deserialize, Serialize};

/// Configuration of a sampling-based evaluation run.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Number of initial states drawn uniformly from `X₀` (the paper
    /// uses 500).
    pub samples: usize,
    /// RNG seed for the initial states, disturbances and noise.
    pub seed: u64,
    /// Per-step perturbation `δ(t)` of the controller's observation.
    pub attack: AttackModel,
    /// Override the evaluation horizon (defaults to the system's `T`).
    pub horizon: Option<usize>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            samples: 500,
            seed: 42,
            attack: AttackModel::None,
            horizon: None,
        }
    }
}

/// The outcome of an evaluation run.
///
/// Mirrors Table I/II rows: `safe_rate` is the paper's `S_r` and
/// `mean_energy` its `e` (Eq. 3, averaged over the trajectories that stay
/// inside the safe region for the entire horizon).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Fraction of sampled initial states whose trajectory stays safe.
    pub safe_rate: f64,
    /// Mean `Σ_t ‖u(t)‖₁` over the safe trajectories (`NaN` when none).
    pub mean_energy: f64,
    /// Number of safe trajectories.
    pub safe_count: usize,
    /// Total sampled initial states.
    pub samples: usize,
}

impl Evaluation {
    /// `S_r` in percent, as printed in the paper's tables.
    pub fn safe_rate_percent(&self) -> f64 {
        100.0 * self.safe_rate
    }
}

// Hand-written rather than derived: `mean_energy` is documented NaN when
// no trajectory is safe, and upstream serde_json flattens a NaN f64 to
// `null`, which the derived Deserialize then rejects — a saved report
// with a zero-safe row would not round-trip. NaN is therefore encoded
// *as* `null` on purpose (strict-JSON friendly) and decoded back to NaN.
impl Serialize for Evaluation {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("safe_rate".to_string(), self.safe_rate.to_value()),
            (
                "mean_energy".to_string(),
                if self.mean_energy.is_nan() {
                    serde::Value::Null
                } else {
                    self.mean_energy.to_value()
                },
            ),
            ("safe_count".to_string(), self.safe_count.to_value()),
            ("samples".to_string(), self.samples.to_value()),
        ])
    }
}

impl Deserialize for Evaluation {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let fields = v
            .as_map()
            .ok_or_else(|| serde::DeError::custom("Evaluation: expected a map"))?;
        let mean_energy = match serde::__field(fields, "mean_energy")? {
            serde::Value::Null => f64::NAN,
            other => f64::from_value(other)?,
        };
        Ok(Self {
            safe_rate: f64::from_value(serde::__field(fields, "safe_rate")?)?,
            mean_energy,
            safe_count: usize::from_value(serde::__field(fields, "safe_count")?)?,
            samples: usize::from_value(serde::__field(fields, "samples")?)?,
        })
    }
}

/// Per-sample outcome of [`evaluate_one`]: safe (with its energy), unsafe,
/// or aborted on non-finite numbers. The distinction lets the parallel
/// evaluation merge per-worker counters deterministically after the join.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SampleOutcome {
    Safe(f64),
    Unsafe,
    Aborted,
}

/// Simulates sample `i` of an evaluation run. Initial states are drawn
/// from a single sequential stream computed up-front so the parallel and
/// sequential paths are bit-identical.
fn evaluate_one(
    sys: &dyn Dynamics,
    controller: &dyn Controller,
    config: &EvalConfig,
    s0: &[f64],
    i: usize,
) -> SampleOutcome {
    let mut control_fn = |s: &[f64]| controller.control(s);
    let mut perturb = config
        .attack
        .perturbation(controller, config.seed ^ (i as u64) << 1);
    // a controller that emits NaN/Inf (e.g. a faulted expert without
    // quarantine) counts as unsafe rather than poisoning the aggregate
    match try_rollout(
        sys,
        &mut control_fn,
        &mut perturb,
        s0,
        &RolloutConfig {
            horizon: config.horizon,
            seed: config.seed.wrapping_add(1).wrapping_add(i as u64),
            ..Default::default()
        },
    ) {
        Ok(traj) if traj.is_safe() => SampleOutcome::Safe(traj.energy()),
        Ok(_) => SampleOutcome::Unsafe,
        Err(_) => SampleOutcome::Aborted,
    }
}

/// Estimates the safe control rate and control energy of a controller by
/// closed-loop simulation from sampled initial states (Section IV's
/// protocol: 500 random initial states from `X₀`). Samples are simulated
/// across all available CPU cores; the result is identical to a
/// sequential run with the same seed.
///
/// # Panics
///
/// Panics if `config.samples == 0` or the controller's dimensions disagree
/// with the plant.
pub fn evaluate(
    sys: &dyn Dynamics,
    controller: &dyn Controller,
    config: &EvalConfig,
) -> Evaluation {
    evaluate_with_workers(
        sys,
        controller,
        config,
        cocktail_math::parallel::default_workers(),
    )
}

/// [`evaluate`] with an explicit worker count. The result is bit-identical
/// for every `workers >= 1`.
///
/// # Panics
///
/// Panics if `config.samples == 0` or the controller's dimensions disagree
/// with the plant.
pub fn evaluate_with_workers(
    sys: &dyn Dynamics,
    controller: &dyn Controller,
    config: &EvalConfig,
    workers: usize,
) -> Evaluation {
    evaluate_with_telemetry(sys, controller, config, workers, &NullSink)
}

/// [`evaluate_with_workers`] with telemetry: opens an `evaluate` span named
/// after the controller and reports `eval.samples`, `eval.safe`,
/// `rollout.unsafe` and `rollout.nan_detected` counters plus an
/// `eval.result` point.
///
/// The rollouts themselves run inside parallel workers, which must not
/// touch the sink (the event stream would become scheduling-dependent);
/// each sample instead reports a [`SampleOutcome`] and the counters are
/// merged in sample order after the join, so the stream is bit-identical
/// for every worker count.
///
/// # Panics
///
/// Panics if `config.samples == 0` or the controller's dimensions disagree
/// with the plant.
pub fn evaluate_with_telemetry(
    sys: &dyn Dynamics,
    controller: &dyn Controller,
    config: &EvalConfig,
    workers: usize,
    tel: &dyn Telemetry,
) -> Evaluation {
    assert!(config.samples > 0, "evaluation needs at least one sample");
    assert_eq!(
        controller.state_dim(),
        sys.state_dim(),
        "controller state dim mismatch"
    );
    assert_eq!(
        controller.control_dim(),
        sys.control_dim(),
        "controller control dim mismatch"
    );
    let _span = Span::enter_with(
        tel,
        "evaluate",
        vec![("controller".to_string(), controller.name().into())],
    );
    let x0 = sys.initial_set();
    // draw all initial states from one sequential stream (determinism)
    let mut rng = cocktail_math::rng::seeded(config.seed);
    let starts: Vec<Vec<f64>> = (0..config.samples)
        .map(|_| cocktail_math::rng::uniform_in_box(&mut rng, &x0))
        .collect();

    let results: Vec<SampleOutcome> =
        cocktail_math::parallel::map_indexed_with_workers(&starts, workers, |i, s0| {
            evaluate_one(sys, controller, config, s0, i)
        });

    let energies: Vec<f64> = results
        .iter()
        .filter_map(|r| match r {
            SampleOutcome::Safe(e) => Some(*e),
            _ => None,
        })
        .collect();
    let safe = energies.len();
    let evaluation = Evaluation {
        safe_rate: safe as f64 / config.samples as f64,
        mean_energy: if energies.is_empty() {
            f64::NAN
        } else {
            cocktail_math::stats::mean(&energies)
        },
        safe_count: safe,
        samples: config.samples,
    };
    if tel.enabled() {
        // post-join merge, in sample order: deterministic for any worker count
        let aborted = results
            .iter()
            .filter(|r| matches!(r, SampleOutcome::Aborted))
            .count() as u64;
        let unsafe_count = results
            .iter()
            .filter(|r| matches!(r, SampleOutcome::Unsafe))
            .count() as u64;
        tel.counter("eval.samples", config.samples as u64);
        tel.counter("eval.safe", safe as u64);
        tel.counter("rollout.unsafe", unsafe_count + aborted);
        tel.counter("rollout.nan_detected", aborted);
        tel.record(
            Event::point("eval.result")
                .with("controller", controller.name())
                .with("safe_rate", evaluation.safe_rate)
                .with("mean_energy", evaluation.mean_energy),
        );
    }
    evaluation
}

/// The control signal `u(t)` of one closed-loop run under a perturbation
/// model — the data behind Fig. 2. Returns one value per step for
/// single-input plants (the paper's plots are 1-D controls).
///
/// # Panics
///
/// Panics if the plant has more than one control input or dimensions
/// mismatch.
pub fn signal_trace(
    sys: &dyn Dynamics,
    controller: &dyn Controller,
    s0: &[f64],
    attack: &AttackModel,
    seed: u64,
) -> Vec<f64> {
    assert_eq!(
        sys.control_dim(),
        1,
        "signal traces are for single-input plants"
    );
    let mut control_fn = |s: &[f64]| controller.control(s);
    let mut perturb = attack.perturbation(controller, seed);
    let traj = rollout(
        sys,
        &mut control_fn,
        &mut perturb,
        s0,
        &RolloutConfig {
            seed: seed.wrapping_add(1),
            stop_on_violation: false,
            ..Default::default()
        },
    );
    traj.controls.iter().map(|u| u[0]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_control::LinearFeedbackController;
    use cocktail_env::systems::VanDerPol;
    use cocktail_math::Matrix;

    fn damped() -> LinearFeedbackController {
        LinearFeedbackController::new(Matrix::from_rows(vec![vec![3.0, 4.0]]))
    }

    fn undamped() -> LinearFeedbackController {
        LinearFeedbackController::new(Matrix::from_rows(vec![vec![0.0, 0.0]]))
    }

    #[test]
    fn good_controller_scores_high_safe_rate() {
        let sys = VanDerPol::new();
        let eval = evaluate(
            &sys,
            &damped(),
            &EvalConfig {
                samples: 200,
                ..Default::default()
            },
        );
        assert!(eval.safe_rate > 0.8, "S_r {}", eval.safe_rate);
        assert!(eval.mean_energy > 0.0);
        assert_eq!(eval.samples, 200);
    }

    #[test]
    fn zero_controller_scores_lower() {
        let sys = VanDerPol::new();
        let cfg = EvalConfig {
            samples: 200,
            ..Default::default()
        };
        let good = evaluate(&sys, &damped(), &cfg);
        let bad = evaluate(&sys, &undamped(), &cfg);
        assert!(
            bad.safe_rate < good.safe_rate,
            "bad {} good {}",
            bad.safe_rate,
            good.safe_rate
        );
    }

    #[test]
    fn attack_degrades_or_matches_nominal() {
        let sys = VanDerPol::new();
        let nominal = evaluate(
            &sys,
            &damped(),
            &EvalConfig {
                samples: 150,
                ..Default::default()
            },
        );
        let attacked = evaluate(
            &sys,
            &damped(),
            &EvalConfig {
                samples: 150,
                attack: AttackModel::scaled_to(&sys.verification_domain(), 0.15, true),
                ..Default::default()
            },
        );
        assert!(attacked.safe_rate <= nominal.safe_rate + 0.05);
    }

    #[test]
    fn evaluation_is_seed_deterministic() {
        let sys = VanDerPol::new();
        let cfg = EvalConfig {
            samples: 50,
            seed: 9,
            ..Default::default()
        };
        let a = evaluate(&sys, &damped(), &cfg);
        let b = evaluate(&sys, &damped(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn evaluation_is_worker_count_invariant() {
        let sys = VanDerPol::new();
        let cfg = EvalConfig {
            samples: 60,
            seed: 11,
            ..Default::default()
        };
        let reference = evaluate_with_workers(&sys, &damped(), &cfg, 1);
        for workers in [2, 8] {
            let got = evaluate_with_workers(&sys, &damped(), &cfg, workers);
            assert_eq!(got, reference, "workers = {workers}");
        }
    }

    #[test]
    fn signal_trace_has_horizon_length() {
        let sys = VanDerPol::new();
        let trace = signal_trace(&sys, &damped(), &[0.5, 0.5], &AttackModel::None, 3);
        assert_eq!(trace.len(), 100);
        assert!(trace.iter().all(|u| u.abs() <= 20.0));
    }

    #[test]
    fn safe_percent_scales() {
        let e = Evaluation {
            safe_rate: 0.984,
            mean_energy: 1.0,
            safe_count: 492,
            samples: 500,
        };
        assert!((e.safe_rate_percent() - 98.4).abs() < 1e-12);
    }

    #[test]
    fn zero_safe_evaluation_round_trips_as_strict_json() {
        // an uncontrolled cartpole from a tilted pole never stays safe, so
        // mean_energy is the documented NaN
        let sys = cocktail_env::systems::CartPole::new();
        let eval = evaluate(
            &sys,
            &cocktail_control::LinearFeedbackController::new(Matrix::from_rows(vec![vec![
                0.0, 0.0, 0.0, 0.0,
            ]])),
            &EvalConfig {
                samples: 20,
                ..Default::default()
            },
        );
        assert_eq!(eval.safe_count, 0, "cartpole must fall uncontrolled");
        assert!(eval.mean_energy.is_nan());

        let json = serde_json::to_string(&eval).expect("serialize");
        assert!(
            json.contains("\"mean_energy\":null"),
            "NaN must encode as null, got {json}"
        );
        assert!(!json.contains("NaN"), "no bare NaN literal: {json}");
        let back: Evaluation = serde_json::from_str(&json).expect("round-trip");
        assert!(back.mean_energy.is_nan());
        assert_eq!(back.safe_count, eval.safe_count);
        assert_eq!(back.samples, eval.samples);
        assert_eq!(back.safe_rate, eval.safe_rate);
    }

    #[test]
    fn finite_evaluation_round_trips_bit_for_bit() {
        let e = Evaluation {
            safe_rate: 0.75,
            mean_energy: 123.456,
            safe_count: 15,
            samples: 20,
        };
        let back: Evaluation = serde_json::from_str(&serde_json::to_string(&e).expect("serialize"))
            .expect("round-trip");
        assert_eq!(back, e);
    }

    #[test]
    fn telemetry_evaluation_merges_counters_deterministically() {
        let sys = VanDerPol::new();
        let cfg = EvalConfig {
            samples: 40,
            seed: 11,
            ..Default::default()
        };
        let run = |workers: usize| {
            let sink = cocktail_obs::InMemorySink::new();
            let eval = evaluate_with_telemetry(&sys, &damped(), &cfg, workers, &sink);
            (
                eval,
                sink.take()
                    .into_iter()
                    .map(cocktail_obs::Event::without_duration)
                    .collect::<Vec<_>>(),
            )
        };
        let (reference_eval, reference_events) = run(1);
        assert!(!reference_events.is_empty());
        for workers in [2, 8] {
            let (eval, events) = run(workers);
            assert_eq!(eval, reference_eval, "workers = {workers}");
            assert_eq!(events, reference_events, "workers = {workers}");
        }
        // instrumented and plain paths agree numerically
        assert_eq!(
            evaluate_with_workers(&sys, &damped(), &cfg, 2),
            reference_eval
        );
    }
}
