//! # Cocktail
//!
//! A Rust reproduction of *"Cocktail: Learn a Better Neural Network
//! Controller from Multiple Experts via Adaptive Mixing and Robust
//! Distillation"* (Wang et al., DAC 2021).
//!
//! Cocktail turns `n` existing control experts into one compact, robust,
//! *verifiable* neural controller in two stages:
//!
//! 1. **Adaptive mixing** — PPO learns a state-dependent weight vector
//!    `a(s) ∈ [-A_B, A_B]ⁿ` so the plant input is
//!    `u = clip(Σ aᵢ(s)·κᵢ(s), U)`, optimizing a safety-punishment /
//!    energy reward. The result is the mixed controller `A_W`.
//! 2. **Robust distillation** — a single student MLP regresses `A_W` with
//!    probabilistic FGSM adversarial training and L2 regularization,
//!    producing `κ*` with a small Lipschitz constant; the ablation without
//!    the robust terms is `κ_D`.
//!
//! This crate orchestrates the full pipeline over the substrates of the
//! workspace (neural nets, RL, plants, verification) and computes the
//! paper's three metrics: safe control rate `S_r`, control energy `e`
//! (Eq. 3) and the Lipschitz constant `L` (footnote 1), plus the
//! verification-time measurements of Figs. 3–4.
//!
//! # Examples
//!
//! Run a miniature end-to-end pipeline on the Van der Pol oscillator:
//!
//! ```
//! use cocktail_core::experiment::Preset;
//! use cocktail_core::pipeline::Cocktail;
//! use cocktail_core::system::SystemId;
//!
//! let sys = SystemId::Oscillator;
//! let experts = cocktail_core::experts::cloned_experts(sys, 0);
//! let result = Cocktail::new(sys, experts)
//!     .with_config(Preset::Smoke.config())
//!     .run();
//! // the distilled student is a plain NnController
//! assert_eq!(result.kappa_star.state_dim(), 2);
//! # use cocktail_control::Controller;
//! ```

pub mod baseline;
pub mod certify;
pub mod experiment;
pub mod experts;
pub mod metrics;
pub mod pipeline;
pub mod policy;
pub mod report;
pub mod supervisor;
pub mod system;

pub use certify::certify_student;
pub use cocktail_analysis::PreflightMode;
pub use experiment::Preset;
pub use metrics::{evaluate, evaluate_with_workers, EvalConfig, Evaluation};
pub use pipeline::{Cocktail, CocktailConfig, CocktailResult, MixingAlgorithm};
pub use supervisor::{DivergenceConfig, PipelineError, RetrainRequest, SupervisorConfig};
pub use system::SystemId;

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared, lazily-built fixtures so the test binary does not rerun the
    //! (expensive) pipeline once per test.

    use crate::experiment::{build_controller_set, ControllerSet, Preset};
    use crate::experts::cloned_experts;
    use crate::system::SystemId;
    use cocktail_control::Controller;
    use std::sync::{Arc, OnceLock};

    /// The oscillator's cloned experts, built once per test binary.
    pub fn oscillator_experts() -> &'static Vec<Arc<dyn Controller>> {
        static CELL: OnceLock<Vec<Arc<dyn Controller>>> = OnceLock::new();
        CELL.get_or_init(|| cloned_experts(SystemId::Oscillator, 0))
    }

    /// A smoke-preset controller set on the oscillator, built once.
    pub fn oscillator_smoke_set() -> &'static ControllerSet {
        static CELL: OnceLock<ControllerSet> = OnceLock::new();
        CELL.get_or_init(|| build_controller_set(SystemId::Oscillator, Preset::Smoke, 0))
    }
}
