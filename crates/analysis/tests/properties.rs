//! Soundness of the interval range analysis.
//!
//! The load-bearing property of the `range` pass: the interval-propagated
//! output box must enclose every concretely evaluated controller output
//! over the verification domain, on all three paper systems. Sampling can
//! only falsify enclosure, never prove it — but a propagation bug (a
//! dropped absolute value, a swapped bound) shows up immediately under
//! randomized weights and states.

#![allow(clippy::expect_used, clippy::unwrap_used)] // test helpers panic on setup failure by design

use cocktail_analysis::{output_range, ControllerSpec, WeightSpec};
use cocktail_env::systems::{CartPole, Poly3d, VanDerPol};
use cocktail_env::Dynamics;
use cocktail_math::BoxRegion;
use cocktail_nn::{Activation, Mlp, MlpBuilder};
use proptest::prelude::*;

fn systems() -> Vec<Box<dyn Dynamics>> {
    vec![
        Box::new(VanDerPol::new()),
        Box::new(Poly3d::new()),
        Box::new(CartPole::new()),
    ]
}

fn policy_net(state_dim: usize, control_dim: usize, seed: u64) -> Mlp {
    MlpBuilder::new(state_dim)
        .hidden(8, Activation::Tanh)
        .hidden(6, Activation::Relu)
        .output(control_dim, Activation::Tanh)
        .seed(seed)
        .build()
}

/// Deterministic sample grid: corners plus `t`-interpolated interior
/// points of the domain.
fn sample_states(domain: &BoxRegion, t: f64) -> Vec<Vec<f64>> {
    let mut states = domain.corners();
    states.push(domain.center());
    states.push(domain.lerp(&vec![t; domain.dim()]));
    states.push(domain.lerp(&vec![1.0 - t; domain.dim()]));
    states
}

fn assert_enclosed(
    spec: &ControllerSpec,
    domain: &BoxRegion,
    s: &[f64],
) -> Result<(), TestCaseError> {
    let bounds = output_range(spec, domain).expect("well-formed spec");
    let u = spec.eval(s).expect("well-formed spec");
    for (j, (iv, &v)) in bounds.iter().zip(&u).enumerate() {
        prop_assert!(
            iv.inflate(1e-9).contains(v),
            "output dim {j}: value {v} escapes certified range [{}, {}]",
            iv.lo(),
            iv.hi()
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn neural_range_encloses_samples_on_all_systems(seed in 0u64..1000, t in 0.0..=1.0f64) {
        for sys in systems() {
            let (_, u_hi) = sys.control_bounds();
            let spec = ControllerSpec::Mlp {
                net: policy_net(sys.state_dim(), sys.control_dim(), seed),
                scale: u_hi,
            };
            let domain = sys.verification_domain();
            for s in sample_states(&domain, t) {
                assert_enclosed(&spec, &domain, &s)?;
            }
        }
    }

    #[test]
    fn mixed_range_encloses_samples_on_all_systems(
        seed in 0u64..1000,
        t in 0.0..=1.0f64,
        w0 in -1.5..1.5f64,
        w1 in -1.5..1.5f64,
    ) {
        for sys in systems() {
            let (u_lo, u_hi) = sys.control_bounds();
            let experts = vec![
                ControllerSpec::Mlp {
                    net: policy_net(sys.state_dim(), sys.control_dim(), seed),
                    scale: u_hi.clone(),
                },
                ControllerSpec::Mlp {
                    net: policy_net(sys.state_dim(), sys.control_dim(), seed.wrapping_add(1)),
                    scale: u_hi.clone(),
                },
            ];
            let spec = ControllerSpec::Mixed {
                experts,
                weights: WeightSpec::Constant { weights: vec![w0, w1] },
                u_inf: u_lo,
                u_sup: u_hi,
            };
            let domain = sys.verification_domain();
            for s in sample_states(&domain, t) {
                assert_enclosed(&spec, &domain, &s)?;
            }
        }
    }

    #[test]
    fn tanh_weight_policy_range_encloses_samples(seed in 0u64..500, t in 0.0..=1.0f64) {
        // the paper's A_W shape: tanh-bounded state-dependent weights
        let sys = VanDerPol::new();
        let (u_lo, u_hi) = sys.control_bounds();
        let spec = ControllerSpec::Mixed {
            experts: vec![
                ControllerSpec::Mlp {
                    net: policy_net(2, 1, seed),
                    scale: u_hi.clone(),
                },
                ControllerSpec::Mlp {
                    net: policy_net(2, 1, seed.wrapping_add(7)),
                    scale: u_hi.clone(),
                },
            ],
            weights: WeightSpec::TanhNet {
                net: MlpBuilder::new(2)
                    .hidden(6, Activation::Tanh)
                    .output(2, Activation::Identity)
                    .seed(seed.wrapping_add(13))
                    .build(),
                bound: 1.5,
            },
            u_inf: u_lo,
            u_sup: u_hi,
        };
        let domain = sys.verification_domain();
        for s in sample_states(&domain, t) {
            assert_enclosed(&spec, &domain, &s)?;
        }
    }
}
