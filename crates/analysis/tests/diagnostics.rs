//! One fixture per diagnostic kind: each broken model must surface its
//! specific code, and a healthy model must come back error-free.

use cocktail_analysis::{AnalysisConfig, Analyzer, ControllerSpec, Severity, WeightSpec};
use cocktail_env::systems::{CartPole, VanDerPol};
use cocktail_math::Matrix;
use cocktail_nn::{Activation, MlpBuilder};
use std::sync::Arc;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn analyzer() -> Analyzer {
    Analyzer::new(Arc::new(VanDerPol::new()))
}

#[test]
fn nan_weight_is_an_error() {
    let spec = ControllerSpec::from_json(&fixture("nan_weight.json")).expect("loadable");
    let report = analyzer().analyze(&spec);
    assert!(report.has_errors(), "{report}");
    assert!(report.has_code("nonfinite-weight"), "{report}");
    // value-level passes must be skipped, not run on NaN data
    assert!(report.has_code("passes-skipped"), "{report}");
}

#[test]
fn dim_mismatched_experts_are_an_error() {
    let spec = ControllerSpec::from_json(&fixture("dim_mismatch.json")).expect("loadable");
    let report = analyzer().analyze(&spec);
    assert!(report.has_errors(), "{report}");
    assert!(report.has_code("dim-mismatch"), "{report}");
}

#[test]
fn clean_fixture_has_no_errors() {
    let spec = ControllerSpec::from_json(&fixture("clean_oscillator.json")).expect("loadable");
    let report = analyzer().analyze(&spec);
    assert!(!report.has_errors(), "{report}");
    // the analyzer must have reached the deep passes
    assert!(report.has_code("output-range"), "{report}");
    assert!(report.has_code("lipschitz-bound"), "{report}");
}

#[test]
fn saturated_tanh_layer_is_flagged() {
    // a huge bias pushes every tanh unit into the flat tail over the
    // whole domain: the layer computes a constant
    let mut net = MlpBuilder::new(2)
        .hidden(3, Activation::Tanh)
        .output(1, Activation::Identity)
        .seed(5)
        .build();
    for b in net.layers_mut()[0].biases_mut() {
        *b = 50.0;
    }
    let spec = ControllerSpec::Mlp {
        net,
        scale: vec![1.0],
    };
    let report = analyzer().analyze(&spec);
    assert!(report.has_code("saturated-layer"), "{report}");
    assert!(
        !report.has_errors(),
        "saturation is a warning, not an error: {report}"
    );
}

#[test]
fn lipschitz_over_budget_is_flagged() {
    let net = MlpBuilder::new(2)
        .hidden(16, Activation::Tanh)
        .output(1, Activation::Identity)
        .seed(6)
        .init_scale(3.0)
        .build();
    let spec = ControllerSpec::Mlp {
        net,
        scale: vec![20.0],
    };
    let config = AnalysisConfig {
        lipschitz_target: Some(1.0),
        ..AnalysisConfig::default()
    };
    let report = Analyzer::with_config(Arc::new(VanDerPol::new()), config).analyze(&spec);
    let budget = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "lipschitz-budget")
        .expect("budget comparison must run");
    assert_eq!(budget.severity, Severity::Warn, "{report}");
}

#[test]
fn actuator_overflow_is_flagged() {
    // an identity-output network scaled far past the ±20 actuator box
    let net = MlpBuilder::new(2)
        .hidden(8, Activation::Tanh)
        .output(1, Activation::Tanh)
        .seed(8)
        .build();
    let spec = ControllerSpec::Mlp {
        net,
        scale: vec![500.0],
    };
    let report = analyzer().analyze(&spec);
    assert!(report.has_code("actuator-overflow"), "{report}");
}

#[test]
fn wrong_plant_is_a_dim_mismatch() {
    // a healthy oscillator model linted against the 4-state cartpole
    let spec = ControllerSpec::from_json(&fixture("clean_oscillator.json")).expect("loadable");
    let report = Analyzer::new(Arc::new(CartPole::new())).analyze(&spec);
    assert!(report.has_errors(), "{report}");
    assert!(report.has_code("dim-mismatch"), "{report}");
}

#[test]
fn weight_arity_mismatch_is_an_error() {
    let expert = ControllerSpec::Linear {
        gain: Matrix::from_rows(vec![vec![1.0, 0.0]]),
        bias: vec![],
    };
    let spec = ControllerSpec::Mixed {
        experts: vec![expert.clone(), expert],
        weights: WeightSpec::Constant { weights: vec![1.0] }, // 1 weight, 2 experts
        u_inf: vec![-20.0],
        u_sup: vec![20.0],
    };
    let report = analyzer().analyze(&spec);
    assert!(report.has_code("weight-arity"), "{report}");
    assert!(report.has_errors());
}

#[test]
fn inverted_actuator_box_is_an_error() {
    let spec = ControllerSpec::Mixed {
        experts: vec![ControllerSpec::Linear {
            gain: Matrix::from_rows(vec![vec![1.0, 0.0]]),
            bias: vec![],
        }],
        weights: WeightSpec::Constant { weights: vec![1.0] },
        u_inf: vec![20.0],
        u_sup: vec![-20.0],
    };
    let report = analyzer().analyze(&spec);
    assert!(report.has_code("empty-control-box"), "{report}");
}

#[test]
fn degenerate_and_exploding_layers_warn() {
    let mut zero = MlpBuilder::new(2)
        .hidden(3, Activation::Tanh)
        .output(1, Activation::Identity)
        .seed(9)
        .build();
    for w in zero.layers_mut()[0].weights_mut().as_mut_slice() {
        *w = 0.0;
    }
    let report = analyzer().analyze(&ControllerSpec::Mlp {
        net: zero,
        scale: vec![1.0],
    });
    assert!(report.has_code("degenerate-layer"), "{report}");

    let huge = MlpBuilder::new(2)
        .hidden(3, Activation::Tanh)
        .output(1, Activation::Identity)
        .seed(10)
        .init_scale(5e3)
        .build();
    let report = analyzer().analyze(&ControllerSpec::Mlp {
        net: huge,
        scale: vec![1.0],
    });
    assert!(report.has_code("exploding-layer"), "{report}");
}
