//! End-to-end tests of the `lint-model` binary: exit codes and verdict
//! lines for broken, clean and unparseable models.

#![allow(clippy::expect_used, clippy::unwrap_used)] // test helpers panic on setup failure by design

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lint-model"))
        .args(args)
        .output()
        .expect("lint-model runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn nan_weight_model_fails_the_lint() {
    let out = lint(&[
        fixture("nan_weight.json").to_str().unwrap(),
        "--system",
        "oscillator",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("nonfinite-weight"), "{text}");
    assert!(text.contains("FAILED"), "{text}");
}

#[test]
fn dim_mismatched_mixture_fails_the_lint() {
    let out = lint(&[
        fixture("dim_mismatch.json").to_str().unwrap(),
        "--system",
        "oscillator",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("dim-mismatch"), "{}", stdout(&out));
}

#[test]
fn clean_model_passes() {
    let out = lint(&[
        fixture("clean_oscillator.json").to_str().unwrap(),
        "--system",
        "oscillator",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}{}",
        stdout(&out),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("PASSED"), "{}", stdout(&out));
}

#[test]
fn clean_model_against_wrong_system_fails() {
    let out = lint(&[
        fixture("clean_oscillator.json").to_str().unwrap(),
        "--system",
        "cartpole",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
}

#[test]
fn deny_warnings_turns_warnings_into_failure() {
    // the clean fixture under an absurdly small Lipschitz budget: a
    // warning appears, and --deny-warnings makes it fatal
    let path = fixture("clean_oscillator.json");
    let relaxed = lint(&[
        path.to_str().unwrap(),
        "--system",
        "oscillator",
        "--lipschitz-target",
        "1e-6",
    ]);
    assert_eq!(relaxed.status.code(), Some(0), "{}", stdout(&relaxed));
    let strict = lint(&[
        path.to_str().unwrap(),
        "--system",
        "oscillator",
        "--lipschitz-target",
        "1e-6",
        "--deny-warnings",
    ]);
    assert_eq!(strict.status.code(), Some(1), "{}", stdout(&strict));
}

#[test]
fn usage_errors_exit_2() {
    let out = lint(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = lint(&["/nonexistent/model.json", "--system", "oscillator"]);
    assert_eq!(out.status.code(), Some(2));
    let out = lint(&[
        fixture("clean_oscillator.json").to_str().unwrap(),
        "--system",
        "mars",
    ]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn garbage_json_exits_2() {
    let dir = std::env::temp_dir().join("cocktail-analysis-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("garbage.json");
    std::fs::write(&path, "{ not json").expect("write garbage");
    let out = lint(&[path.to_str().unwrap(), "--system", "oscillator"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bare_mlp_files_are_accepted() {
    // a bare Mlp JSON (as Mlp::to_json writes) is wrapped with unit scale
    use cocktail_nn::{Activation, MlpBuilder};
    let net = MlpBuilder::new(2)
        .hidden(4, Activation::Tanh)
        .output(1, Activation::Tanh)
        .seed(3)
        .build();
    let dir = std::env::temp_dir().join("cocktail-analysis-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bare_mlp.json");
    std::fs::write(&path, net.to_json().expect("serializable")).expect("write model");
    let out = lint(&[path.to_str().unwrap(), "--system", "oscillator"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}{}",
        stdout(&out),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("neural"), "{}", stdout(&out));
}
