//! Fixture test closing the loop between the batched distillation pipeline
//! and the static linter: a student produced by `robust_distill` (batched
//! forward/backward kernels, parallel dataset generation) must clear the
//! `lint-model` pre-flight gate.

#![allow(clippy::expect_used, clippy::unwrap_used)] // test helpers panic on setup failure by design

use std::process::Command;

use cocktail_control::LinearFeedbackController;
use cocktail_distill::{robust_distill, DistillConfig, TeacherDataset};
use cocktail_env::systems::VanDerPol;
use cocktail_env::Dynamics;
use cocktail_math::Matrix;

#[test]
fn distilled_student_passes_the_preflight_lint() {
    // Teacher: a stabilizing linear gain on the Van der Pol oscillator.
    let teacher = LinearFeedbackController::new(Matrix::from_rows(vec![vec![3.0, 4.0]]));
    let domain = VanDerPol::new().verification_domain();

    // Batched pipeline: parallel uniform sampling + batched robust distill.
    let data = TeacherDataset::sample_uniform_with_workers(&teacher, &domain, 256, 7, 2);
    let student = robust_distill(
        &data,
        &DistillConfig {
            epochs: 20,
            hidden: 12,
            seed: 5,
            ..DistillConfig::default()
        },
    );

    // Serialize the student's network as lint-model consumes it (a bare
    // Mlp file is wrapped with the student's unit output scale).
    assert_eq!(student.scale(), &[1.0], "distilled students are unscaled");
    let dir = std::env::temp_dir().join("cocktail-analysis-distilled-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("distilled_student.json");
    std::fs::write(&path, student.network().to_json().expect("serializable")).expect("write model");

    let out = Command::new(env!("CARGO_BIN_EXE_lint-model"))
        .args([path.to_str().unwrap(), "--system", "oscillator"])
        .output()
        .expect("lint-model runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{stdout}{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("PASSED"), "{stdout}");
}
