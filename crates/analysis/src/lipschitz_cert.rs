//! Lipschitz certification pass.
//!
//! Computes the product-of-spectral-norms Lipschitz bound of the
//! controller (the bound the paper's robust-distillation loss controls
//! and its Bernstein verification consumes), compares it against an
//! optional distillation target, and predicts what the bound costs at
//! verification time: the Bernstein remainder `ε = 1.5·L·Σwᵢ/√d` of
//! `cocktail-verify` and the number of domain partitions needed to push
//! that remainder under the certificate tolerance.
//!
//! The partition prediction inverts the verifier's bisection geometry:
//! splitting every axis `k` times divides the width sum — and hence `ε` —
//! by `2^k` while multiplying the piece count by `2^{kn}`, so reaching a
//! tolerance `τ` from an initial remainder `ε₀ > τ` takes at least
//! `(ε₀/τ)^n` pieces.

use crate::analyzer::AnalysisConfig;
use crate::report::{AnalysisReport, Diagnostic};
use crate::spec::ControllerSpec;
use cocktail_env::Dynamics;
use cocktail_nn::lipschitz::{self, NormKind};
use cocktail_verify::bernstein::rigorous_error_bound;

pub(crate) const PASS: &str = "lipschitz";

/// Runs the pass.
///
/// Assumes the composition and hygiene passes ran clean.
pub fn check(
    spec: &ControllerSpec,
    sys: &dyn Dynamics,
    config: &AnalysisConfig,
    report: &mut AnalysisReport,
) {
    let Some(l) = certified_bound(spec) else {
        report.push(Diagnostic::info(
            PASS,
            "no-certified-bound",
            format!(
                "no product-form Lipschitz bound for a {} controller (state-dependent \
                 weights / hard switching are not globally Lipschitz-certifiable); \
                 Bernstein cost prediction skipped",
                spec.kind()
            ),
        ));
        return;
    };

    report.push(Diagnostic::info(
        PASS,
        "lipschitz-bound",
        format!("certified Lipschitz bound L <= {l:.4} (spectral-norm product)"),
    ));

    if let Some(target) = config.lipschitz_target {
        if l > target {
            report.push(Diagnostic::warn(
                PASS,
                "lipschitz-budget",
                format!(
                    "certified bound {l:.4} exceeds the distillation target L = {target} — \
                     the robust-distillation regularizer did not bind, or the model was \
                     trained without it"
                ),
            ));
        } else {
            report.push(Diagnostic::info(
                PASS,
                "lipschitz-budget",
                format!("certified bound {l:.4} is within the distillation target L = {target}"),
            ));
        }
    }

    let domain = sys.verification_domain();
    let cert = &config.certificate;
    let epsilon = rigorous_error_bound(l, &domain, cert.degree);
    report.push(Diagnostic::info(
        PASS,
        "bernstein-error",
        format!(
            "Bernstein remainder over the unpartitioned domain: eps = {epsilon:.4} at \
             degree {}",
            cert.degree
        ),
    ));

    let pieces = predicted_pieces(epsilon, cert.tolerance, domain.dim());
    if pieces > cert.max_pieces as f64 {
        report.push(Diagnostic::warn(
            PASS,
            "verification-budget",
            format!(
                "reaching tolerance {} needs an estimated {pieces:.0} domain partitions, \
                 beyond the certificate budget of {} pieces — verification will likely \
                 be inconclusive at this Lipschitz bound",
                cert.tolerance, cert.max_pieces
            ),
        ));
    } else {
        report.push(Diagnostic::info(
            PASS,
            "verification-cost",
            format!(
                "estimated {pieces:.0} domain partition(s) to reach tolerance {}",
                cert.tolerance
            ),
        ));
    }
}

/// Product-form Lipschitz upper bound of a spec, when one exists.
///
/// `Mlp`: `max(scale) · Π σ(Wᵢ)·lip(actᵢ)` — the same bound
/// `NnController::lipschitz_constant` certifies. `Linear`: `σ(K)`.
/// Mixed and switching controllers get `None`: their weight policies vary
/// with the state, so no product bound applies.
pub fn certified_bound(spec: &ControllerSpec) -> Option<f64> {
    match spec {
        ControllerSpec::Mlp { net, scale } => {
            let max_scale = scale.iter().copied().fold(0.0f64, f64::max);
            Some(max_scale * lipschitz::upper_bound(net, NormKind::Spectral))
        }
        ControllerSpec::Linear { gain, .. } => Some(gain.spectral_norm()),
        ControllerSpec::Mixed { .. } | ControllerSpec::Switching { .. } => None,
    }
}

/// Minimum partition count to reach tolerance `tau` from an initial
/// remainder `epsilon` over an `n`-dimensional domain.
fn predicted_pieces(epsilon: f64, tau: f64, n: usize) -> f64 {
    if epsilon <= tau {
        return 1.0;
    }
    (epsilon / tau)
        .powi(i32::try_from(n).unwrap_or(i32::MAX))
        .ceil()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_math::Matrix;

    #[test]
    fn linear_bound_is_gain_spectral_norm() {
        let spec = ControllerSpec::Linear {
            gain: Matrix::from_rows(vec![vec![3.0, 4.0]]),
            bias: vec![],
        };
        let l = certified_bound(&spec).expect("linear is certifiable");
        assert!((l - 5.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_has_no_certified_bound() {
        let spec = ControllerSpec::Mixed {
            experts: vec![ControllerSpec::Linear {
                gain: Matrix::from_rows(vec![vec![1.0]]),
                bias: vec![],
            }],
            weights: crate::spec::WeightSpec::Constant { weights: vec![1.0] },
            u_inf: vec![-1.0],
            u_sup: vec![1.0],
        };
        assert!(certified_bound(&spec).is_none());
    }

    #[test]
    fn piece_prediction_inverts_bisection_geometry() {
        // already within tolerance: one piece
        assert_eq!(predicted_pieces(0.4, 0.5, 3), 1.0);
        // one halving of every axis of a 2-D domain: 4 pieces
        assert_eq!(predicted_pieces(1.0, 0.5, 2), 4.0);
        assert_eq!(predicted_pieces(2.0, 0.5, 2), 16.0);
    }
}
