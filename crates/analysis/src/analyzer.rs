//! The analyzer driver: pass configuration, ordering and gating.

use crate::report::{AnalysisReport, Diagnostic};
use crate::spec::ControllerSpec;
use crate::{composition, hygiene, lipschitz_cert, range};
use cocktail_env::Dynamics;
use cocktail_verify::CertificateConfig;
use std::sync::Arc;

/// Tuning knobs of the analyzer.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Distillation Lipschitz target `L`; `None` disables the budget
    /// comparison (the bound itself is still reported).
    pub lipschitz_target: Option<f64>,
    /// Verification-side parameters (degree, tolerance, piece budget)
    /// used to predict the Bernstein certification cost.
    pub certificate: CertificateConfig,
    /// Per-layer spectral-norm limit above which a layer counts as
    /// exploding.
    pub spectral_norm_limit: f64,
    /// Pre-activation magnitude beyond which a tanh unit counts as
    /// saturated (sigmoid uses twice this).
    pub saturation_margin: f64,
    /// Absolute slack when comparing certified output ranges against
    /// actuator limits (absorbs rounding in the interval arithmetic).
    pub range_tolerance: f64,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self {
            lipschitz_target: None,
            certificate: CertificateConfig::default(),
            spectral_norm_limit: 1e3,
            saturation_margin: 4.0,
            range_tolerance: 1e-9,
        }
    }
}

/// How the pipeline reacts to pre-flight analysis findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreflightMode {
    /// Skip the analysis entirely.
    Off,
    /// Run it and print findings to stderr; never abort.
    #[default]
    Warn,
    /// Run it and panic on error-level findings.
    Deny,
}

/// Static analyzer for controller specs against one plant.
///
/// Runs four passes in dependency order:
///
/// 1. **composition** — structural validation; shapes must be consistent
///    before any value-level pass may index into them.
/// 2. **hygiene** — value-level weight checks; everything must be finite
///    before interval arithmetic is sound (`Interval::new` rejects NaN).
/// 3. **range** — interval propagation of the verification domain.
/// 4. **lipschitz** — Lipschitz bound, budget comparison, Bernstein cost.
///
/// A pass that finds errors stops the chain; the report says so
/// explicitly, so a partial report is never mistaken for a full one.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cocktail_analysis::{Analyzer, ControllerSpec};
/// use cocktail_env::systems::VanDerPol;
/// use cocktail_nn::{Activation, MlpBuilder};
///
/// let net = MlpBuilder::new(2).hidden(8, Activation::Tanh)
///     .output(1, Activation::Tanh).seed(1).build();
/// let spec = ControllerSpec::Mlp { net, scale: vec![20.0] };
/// let report = Analyzer::new(Arc::new(VanDerPol::new())).analyze(&spec);
/// assert!(!report.has_errors(), "{report}");
/// ```
pub struct Analyzer {
    sys: Arc<dyn Dynamics>,
    config: AnalysisConfig,
}

impl Analyzer {
    /// Analyzer with the default configuration.
    pub fn new(sys: Arc<dyn Dynamics>) -> Self {
        Self::with_config(sys, AnalysisConfig::default())
    }

    /// Analyzer with an explicit configuration.
    pub fn with_config(sys: Arc<dyn Dynamics>, config: AnalysisConfig) -> Self {
        Self { sys, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Runs all passes over `spec` and returns the combined report.
    pub fn analyze(&self, spec: &ControllerSpec) -> AnalysisReport {
        let mut report = AnalysisReport::new();

        composition::check(spec, self.sys.as_ref(), &mut report);
        if report.has_errors() {
            report.push(skipped(
                "structural errors above make value-level passes unsound",
            ));
            return report;
        }

        hygiene::check(spec, &self.config, &mut report);
        if report.has_errors() {
            report.push(skipped(
                "non-finite values above make interval arithmetic unsound",
            ));
            return report;
        }

        range::check(spec, self.sys.as_ref(), &self.config, &mut report);
        lipschitz_cert::check(spec, self.sys.as_ref(), &self.config, &mut report);
        report
    }
}

fn skipped(why: &str) -> Diagnostic {
    Diagnostic::info(
        "analyzer",
        "passes-skipped",
        format!("remaining passes skipped: {why}"),
    )
}
