//! Structured analysis findings.
//!
//! Every pass appends [`Diagnostic`]s to a shared [`AnalysisReport`]; the
//! report is the analyzer's only output, so callers (the `lint-model` CLI,
//! the pipeline pre-flight gate, tests) decide what a finding means for
//! them — exit code, panic, or log line — instead of the passes deciding.

use std::fmt;

/// How bad a finding is.
///
/// Ordering is by severity: `Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Neutral fact worth surfacing (a bound, a norm, a predicted cost).
    Info,
    /// Suspicious but not provably broken; the model still runs.
    Warn,
    /// The model is unusable or provably violates a contract.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding: a severity, a stable machine-readable code, the pass that
/// produced it, and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad the finding is.
    pub severity: Severity,
    /// Stable kebab-case identifier, e.g. `nonfinite-weight`.
    pub code: &'static str,
    /// The pass that produced the finding, e.g. `hygiene`.
    pub pass: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// An error-level finding.
    pub fn error(pass: &'static str, code: &'static str, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Error,
            code,
            pass,
            message: message.into(),
        }
    }

    /// A warning-level finding.
    pub fn warn(pass: &'static str, code: &'static str, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Warn,
            code,
            pass,
            message: message.into(),
        }
    }

    /// An info-level finding.
    pub fn info(pass: &'static str, code: &'static str, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Info,
            code,
            pass,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.pass, self.message
        )
    }
}

/// The full outcome of analyzing one controller spec.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every finding of another report.
    pub fn merge(&mut self, other: AnalysisReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// All findings, in the order the passes produced them.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// `true` when no finding at all was produced.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` when at least one error-level finding exists.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// `true` when at least one warning-level finding exists.
    pub fn has_warnings(&self) -> bool {
        self.count(Severity::Warn) > 0
    }

    /// Number of findings at exactly the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The worst severity present, or `None` on an empty report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// `true` when a finding with the given code exists.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// One-line totals, e.g. `2 errors, 1 warning, 3 notes`.
    pub fn summary(&self) -> String {
        fn plural(n: usize, word: &str) -> String {
            if n == 1 {
                format!("1 {word}")
            } else {
                format!("{n} {word}s")
            }
        }
        format!(
            "{}, {}, {}",
            plural(self.count(Severity::Error), "error"),
            plural(self.count(Severity::Warn), "warning"),
            plural(self.count(Severity::Info), "note"),
        )
    }

    /// Multi-line rendering: one finding per line, worst first within the
    /// original pass order preserved per severity.
    pub fn render(&self) -> String {
        let mut lines: Vec<String> = Vec::with_capacity(self.diagnostics.len());
        for severity in [Severity::Error, Severity::Warn, Severity::Info] {
            for d in self.diagnostics.iter().filter(|d| d.severity == severity) {
                lines.push(d.to_string());
            }
        }
        lines.join("\n")
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AnalysisReport {
        let mut r = AnalysisReport::new();
        r.push(Diagnostic::info("hygiene", "layer-norm", "sigma = 1.0"));
        r.push(Diagnostic::error("composition", "dim-mismatch", "2 vs 3"));
        r.push(Diagnostic::warn("range", "saturated-layer", "layer 1"));
        r
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn counting_and_flags() {
        let r = sample();
        assert!(r.has_errors());
        assert!(r.has_warnings());
        assert_eq!(r.count(Severity::Info), 1);
        assert_eq!(r.max_severity(), Some(Severity::Error));
        assert!(r.has_code("dim-mismatch"));
        assert!(!r.has_code("nonfinite-weight"));
    }

    #[test]
    fn render_orders_worst_first() {
        let text = sample().render();
        let err = text.find("error[").expect("error line");
        let warn = text.find("warning[").expect("warning line");
        let info = text.find("info[").expect("info line");
        assert!(err < warn && warn < info, "{text}");
    }

    #[test]
    fn summary_pluralizes() {
        assert_eq!(sample().summary(), "1 error, 1 warning, 1 note");
        assert_eq!(
            AnalysisReport::new().summary(),
            "0 errors, 0 warnings, 0 notes"
        );
    }

    #[test]
    fn merge_concatenates() {
        let mut a = AnalysisReport::new();
        a.merge(sample());
        a.merge(sample());
        assert_eq!(a.diagnostics().len(), 6);
    }
}
