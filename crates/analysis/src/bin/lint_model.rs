//! `lint-model`: static analysis of a serialized controller against one
//! of the paper's systems.
//!
//! ```text
//! cargo run -p cocktail-analysis --bin lint-model -- MODEL.json --system cartpole
//! ```
//!
//! The model file holds either a [`ControllerSpec`] or a bare `Mlp` (as
//! written by `Mlp::to_json`), which is wrapped with a unit output scale.
//!
//! Exit codes: `0` clean (warnings allowed unless `--deny-warnings`),
//! `1` findings failed the lint, `2` usage or load error.

use cocktail_analysis::{AnalysisConfig, Analyzer, ControllerSpec};
use cocktail_env::systems::{CartPole, Poly3d, VanDerPol};
use cocktail_env::Dynamics;
use cocktail_nn::Mlp;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: lint-model <MODEL.json> --system <NAME> [options]

Statically analyzes a serialized controller: composition, weight hygiene,
interval range analysis and Lipschitz certification. No rollouts are run.

arguments:
  <MODEL.json>            ControllerSpec JSON, or a bare Mlp (unit scale)
  --system <NAME>         plant: oscillator | 3d | cartpole

options:
  --deny-warnings         exit nonzero on warnings, not just errors
  --lipschitz-target <L>  distillation Lipschitz budget to check against
  --degree <N>            Bernstein degree for the cost prediction
  --quiet                 print only the verdict line
";

struct Args {
    model_path: String,
    system: Arc<dyn Dynamics>,
    deny_warnings: bool,
    quiet: bool,
    config: AnalysisConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut model_path = None;
    let mut system = None;
    let mut deny_warnings = false;
    let mut quiet = false;
    let mut config = AnalysisConfig::default();

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--system" => {
                let name = argv.next().ok_or("--system needs a value")?;
                system = Some(resolve_system(&name)?);
            }
            "--deny-warnings" => deny_warnings = true,
            "--quiet" => quiet = true,
            "--lipschitz-target" => {
                let v = argv.next().ok_or("--lipschitz-target needs a value")?;
                let l: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid Lipschitz target `{v}`"))?;
                config.lipschitz_target = Some(l);
            }
            "--degree" => {
                let v = argv.next().ok_or("--degree needs a value")?;
                config.certificate.degree =
                    v.parse().map_err(|_| format!("invalid degree `{v}`"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => {
                if model_path.replace(other.to_string()).is_some() {
                    return Err("more than one model path given".to_string());
                }
            }
        }
    }

    Ok(Args {
        model_path: model_path.ok_or("no model path given")?,
        system: system.ok_or("no --system given")?,
        deny_warnings,
        quiet,
        config,
    })
}

fn resolve_system(name: &str) -> Result<Arc<dyn Dynamics>, String> {
    match name.to_ascii_lowercase().as_str() {
        "oscillator" | "vdp" | "vanderpol" => Ok(Arc::new(VanDerPol::new())),
        "3d" | "poly3d" | "3d-system" => Ok(Arc::new(Poly3d::new())),
        "cartpole" | "cart-pole" => Ok(Arc::new(CartPole::new())),
        other => Err(format!(
            "unknown system `{other}` (expected oscillator | 3d | cartpole)"
        )),
    }
}

/// Loads a spec, accepting a bare `Mlp` file by wrapping it in a neural
/// controller spec with unit scale.
fn load_spec(text: &str) -> Result<ControllerSpec, String> {
    match ControllerSpec::from_json(text) {
        Ok(spec) => Ok(spec),
        Err(spec_err) => match serde_json::from_str::<Mlp>(text) {
            Ok(net) => {
                let outputs = net
                    .layers()
                    .last()
                    .map_or(0, cocktail_nn::Dense::output_dim);
                Ok(ControllerSpec::Mlp {
                    net,
                    scale: vec![1.0; outputs],
                })
            }
            Err(_) => Err(format!("not a ControllerSpec or Mlp JSON file: {spec_err}")),
        },
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let text = match std::fs::read_to_string(&args.model_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read `{}`: {e}", args.model_path);
            return ExitCode::from(2);
        }
    };
    let spec = match load_spec(&text) {
        Ok(spec) => spec,
        Err(msg) => {
            eprintln!("error: cannot parse `{}`: {msg}", args.model_path);
            return ExitCode::from(2);
        }
    };

    let report = Analyzer::with_config(args.system, args.config).analyze(&spec);
    if !args.quiet && !report.is_empty() {
        println!("{report}");
    }

    let failed = report.has_errors() || (args.deny_warnings && report.has_warnings());
    println!(
        "{}: {} controller — {} ({})",
        args.model_path,
        spec.kind(),
        if failed { "FAILED" } else { "PASSED" },
        report.summary()
    );
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
