//! Interval range analysis.
//!
//! Propagates the plant's verification domain through a controller spec
//! with interval arithmetic and reports what the bounds imply:
//!
//! * **Saturated layers** — a tanh/sigmoid layer whose pre-activation
//!   interval sits entirely in the flat tail, or a `ReLU` layer that is dead
//!   on the whole domain, computes a constant; the controller cannot react
//!   to the state there.
//! * **Actuator overflow** — output dimensions whose certified range
//!   exceeds the plant's control box `[U_inf, U_sup]`; the plant will
//!   clip, so the effective policy is not the trained one.
//! * **Clipped mixtures** — the raw mixture `Σ aᵢ κᵢ(s)` of a mixed
//!   controller escaping its own actuator box, i.e. the paper's Eq. (4)
//!   projection is load-bearing rather than a formality.
//!
//! The per-layer propagation mirrors `Dense::forward_interval`'s
//! centre/radius form: `z ∈ [Wc + b − |W|r, Wc + b + |W|r]`, which is the
//! tightest interval extension of an affine map over a box. It is
//! re-implemented here (rather than calling `Mlp::bounds`) because the
//! pass needs the *pre-activation* interval of every layer for saturation
//! detection, which the network API does not expose.

use crate::analyzer::AnalysisConfig;
use crate::report::{AnalysisReport, Diagnostic};
use crate::spec::{ControllerSpec, WeightSpec};
use cocktail_env::Dynamics;
use cocktail_math::{BoxRegion, Interval};
use cocktail_nn::{Activation, Dense, Mlp};

pub(crate) const PASS: &str = "range";

/// Runs the pass: propagates `sys.verification_domain()` through the spec
/// and reports saturation and actuator-overflow findings.
///
/// Assumes the composition and hygiene passes ran clean (shapes are
/// consistent and every value is finite).
pub fn check(
    spec: &ControllerSpec,
    sys: &dyn Dynamics,
    config: &AnalysisConfig,
    report: &mut AnalysisReport,
) {
    let domain = sys.verification_domain();
    let Some(out) = spec_interval(spec, "controller", domain.intervals(), config, Some(report))
    else {
        return;
    };

    report.push(Diagnostic::info(
        PASS,
        "output-range",
        format!(
            "certified output range over the verification domain: {}",
            render_box(&out)
        ),
    ));

    let (u_lo, u_hi) = sys.control_bounds();
    for (j, iv) in out.iter().enumerate() {
        let (lo, hi) = (u_lo[j], u_hi[j]);
        if iv.lo() < lo - config.range_tolerance || iv.hi() > hi + config.range_tolerance {
            report.push(Diagnostic::warn(
                PASS,
                "actuator-overflow",
                format!(
                    "output dim {j} spans [{:.4}, {:.4}] but plant `{}` only accepts \
                     [{lo}, {hi}] — the plant will clip, so the executed policy differs \
                     from the analyzed one",
                    iv.lo(),
                    iv.hi(),
                    sys.name()
                ),
            ));
        }
    }
}

/// Certified output box of a controller spec over a state-domain box, or
/// `None` when the spec is malformed or is a `Switching` ensemble with a
/// malformed expert.
///
/// This is the side-effect-free entry point used by tests and the CLI;
/// the pass itself goes through the same propagation with a report
/// attached for saturation findings.
pub fn output_range(spec: &ControllerSpec, domain: &BoxRegion) -> Option<Vec<Interval>> {
    if spec.state_dim()? != domain.dim() {
        return None;
    }
    let config = AnalysisConfig::default();
    spec_interval(spec, "controller", domain.intervals(), &config, None)
}

fn spec_interval(
    spec: &ControllerSpec,
    path: &str,
    input: &[Interval],
    config: &AnalysisConfig,
    mut report: Option<&mut AnalysisReport>,
) -> Option<Vec<Interval>> {
    match spec {
        ControllerSpec::Mlp { net, scale } => {
            let raw = net_interval(net, path, input, config, report.as_deref_mut())?;
            if raw.len() != scale.len() {
                return None;
            }
            Some(raw.iter().zip(scale).map(|(iv, &k)| *iv * k).collect())
        }
        ControllerSpec::Linear { gain, bias } => {
            if gain.as_slice().len() != gain.rows() * gain.cols()
                || gain.cols() != input.len()
                || (!bias.is_empty() && bias.len() != gain.rows())
            {
                return None;
            }
            Some(
                (0..gain.rows())
                    .map(|r| {
                        let mut acc = Interval::point(bias.get(r).copied().unwrap_or(0.0));
                        for (c, x) in input.iter().enumerate() {
                            // u = -K s + b
                            acc = acc + *x * -gain[(r, c)];
                        }
                        acc
                    })
                    .collect(),
            )
        }
        ControllerSpec::Mixed {
            experts,
            weights,
            u_inf,
            u_sup,
        } => {
            let m = spec.control_dim()?;
            if u_inf.len() != m || u_sup.len() != m {
                return None;
            }
            let expert_ranges: Vec<Vec<Interval>> = experts
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    spec_interval(
                        e,
                        &format!("{path}.experts[{i}]"),
                        input,
                        config,
                        report.as_deref_mut(),
                    )
                })
                .collect::<Option<_>>()?;
            if expert_ranges.iter().any(|r| r.len() != m) {
                return None;
            }
            let weight_ranges: Vec<Interval> = match weights {
                WeightSpec::Constant { weights } => {
                    if weights.len() != experts.len() {
                        return None;
                    }
                    weights.iter().map(|&w| Interval::point(w)).collect()
                }
                WeightSpec::TanhNet { net, bound } => {
                    let logits = net_interval(
                        net,
                        &format!("{path}.weight-policy"),
                        input,
                        config,
                        report.as_deref_mut(),
                    )?;
                    if logits.len() != experts.len() {
                        return None;
                    }
                    logits.iter().map(|z| z.tanh() * *bound).collect()
                }
            };
            let raw: Vec<Interval> = (0..m)
                .map(|j| {
                    let mut acc = Interval::point(0.0);
                    for (w, e) in weight_ranges.iter().zip(&expert_ranges) {
                        acc = acc + *w * e[j];
                    }
                    acc
                })
                .collect();
            if let Some(report) = report.as_deref_mut() {
                let escapes: Vec<usize> = (0..m)
                    .filter(|&j| raw[j].lo() < u_inf[j] || raw[j].hi() > u_sup[j])
                    .collect();
                if !escapes.is_empty() {
                    report.push(Diagnostic::warn(
                        PASS,
                        "clipped-mixture",
                        format!(
                            "{path}: the raw mixture Σ aᵢκᵢ(s) can escape the actuator box on \
                             output dims {escapes:?} (raw range {}) — the Eq. (4) clip is \
                             load-bearing there",
                            render_box(&raw)
                        ),
                    ));
                }
            }
            Some(
                raw.iter()
                    .enumerate()
                    .map(|(j, iv)| iv.clamp_to(u_inf[j], u_sup[j]))
                    .collect(),
            )
        }
        ControllerSpec::Switching { experts } => {
            // any expert may be active: the reachable set is the union,
            // over-approximated by the per-dimension hull
            let m = spec.control_dim()?;
            let mut hull: Option<Vec<Interval>> = None;
            for (i, e) in experts.iter().enumerate() {
                let r = spec_interval(
                    e,
                    &format!("{path}.experts[{i}]"),
                    input,
                    config,
                    report.as_deref_mut(),
                )?;
                if r.len() != m {
                    return None;
                }
                hull = Some(match hull {
                    None => r,
                    Some(h) => h.iter().zip(&r).map(|(a, b)| a.hull(b)).collect(),
                });
            }
            hull
        }
    }
}

/// Interval-propagates one network, reporting saturated layers.
fn net_interval(
    net: &Mlp,
    path: &str,
    input: &[Interval],
    config: &AnalysisConfig,
    mut report: Option<&mut AnalysisReport>,
) -> Option<Vec<Interval>> {
    if net.layers().is_empty() || net.layers()[0].input_dim() != input.len() {
        return None;
    }
    let mut iv = input.to_vec();
    for (li, layer) in net.layers().iter().enumerate() {
        let z = pre_activation_interval(layer, &iv)?;
        if let Some(report) = report.as_deref_mut() {
            report_saturation(path, li, layer, &z, config, report);
        }
        iv = z
            .iter()
            .map(|&zi| layer.activation().apply_interval(zi))
            .collect();
    }
    Some(iv)
}

/// Tightest interval extension of `W x + b` over a box, in centre/radius
/// form (mirrors `Dense::forward_interval`).
fn pre_activation_interval(layer: &Dense, input: &[Interval]) -> Option<Vec<Interval>> {
    let w = layer.weights();
    if w.cols() != input.len()
        || w.as_slice().len() != w.rows() * w.cols()
        || layer.biases().len() != w.rows()
    {
        return None;
    }
    let centre: Vec<f64> = input.iter().map(Interval::mid).collect();
    let radius: Vec<f64> = input.iter().map(Interval::radius).collect();
    Some(
        (0..w.rows())
            .map(|r| {
                let mut zc = layer.biases()[r];
                let mut zr = 0.0;
                for c in 0..w.cols() {
                    zc += w[(r, c)] * centre[c];
                    zr += w[(r, c)].abs() * radius[c];
                }
                Interval::new(zc - zr, zc + zr)
            })
            .collect(),
    )
}

/// Is the activation provably flat (constant output) on the whole
/// pre-activation interval?
fn unit_saturated(activation: Activation, z: Interval, margin: f64) -> bool {
    match activation {
        // tanh(±4) is within 7e-4 of ±1; past the margin the unit is a
        // constant for all practical purposes
        Activation::Tanh => z.lo() >= margin || z.hi() <= -margin,
        // sigmoid flattens about twice as slowly as tanh
        Activation::Sigmoid => z.lo() >= 2.0 * margin || z.hi() <= -2.0 * margin,
        // a ReLU that never sees positive input is exactly dead
        Activation::Relu => z.hi() <= 0.0,
        // identity / leaky-relu / softplus never flatten to a constant
        Activation::Identity | Activation::LeakyRelu { .. } | Activation::Softplus => false,
    }
}

fn report_saturation(
    path: &str,
    li: usize,
    layer: &Dense,
    z: &[Interval],
    config: &AnalysisConfig,
    report: &mut AnalysisReport,
) {
    let saturated = z
        .iter()
        .filter(|&&zi| unit_saturated(layer.activation(), zi, config.saturation_margin))
        .count();
    if saturated == 0 {
        return;
    }
    if saturated == z.len() {
        report.push(Diagnostic::warn(
            PASS,
            "saturated-layer",
            format!(
                "{path} layer {li}: all {saturated} {:?} units are saturated over the whole \
                 verification domain — the layer computes a constant and the controller \
                 cannot react to the state",
                layer.activation()
            ),
        ));
    } else {
        report.push(Diagnostic::info(
            PASS,
            "saturated-units",
            format!(
                "{path} layer {li}: {saturated}/{} {:?} units saturated over the domain",
                z.len(),
                layer.activation()
            ),
        ));
    }
}

fn render_box(ivs: &[Interval]) -> String {
    let dims: Vec<String> = ivs
        .iter()
        .map(|iv| format!("[{:.4}, {:.4}]", iv.lo(), iv.hi()))
        .collect();
    dims.join(" x ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_nn::MlpBuilder;

    #[test]
    fn pre_activation_matches_dense_forward_interval_post_activation() {
        let net = MlpBuilder::new(2)
            .hidden(5, Activation::Tanh)
            .output(1, Activation::Identity)
            .seed(3)
            .build();
        let domain = BoxRegion::cube(2, -1.5, 1.5);
        // the whole-network propagation must agree with the existing IBP
        let ours = net_interval(
            &net,
            "t",
            domain.intervals(),
            &AnalysisConfig::default(),
            None,
        )
        .expect("well-formed");
        let theirs = net.bounds(&domain);
        for (a, b) in ours.iter().zip(&theirs) {
            assert!((a.lo() - b.lo()).abs() < 1e-12 && (a.hi() - b.hi()).abs() < 1e-12);
        }
    }

    #[test]
    fn dead_relu_layer_is_flagged() {
        let mut report = AnalysisReport::new();
        // one ReLU unit with a large negative bias: dead on [-1, 1]^2
        let layer = Dense::from_parts(
            cocktail_math::Matrix::from_rows(vec![vec![0.1, 0.1]]),
            vec![-10.0],
            Activation::Relu,
        );
        let z = pre_activation_interval(&layer, BoxRegion::cube(2, -1.0, 1.0).intervals())
            .expect("well-formed");
        report_saturation("t", 0, &layer, &z, &AnalysisConfig::default(), &mut report);
        assert!(report.has_code("saturated-layer"), "{report}");
    }

    #[test]
    fn identity_layers_never_saturate() {
        assert!(!unit_saturated(
            Activation::Identity,
            Interval::new(100.0, 200.0),
            4.0
        ));
        assert!(unit_saturated(
            Activation::Tanh,
            Interval::new(4.5, 9.0),
            4.0
        ));
        assert!(unit_saturated(
            Activation::Tanh,
            Interval::new(-9.0, -4.5),
            4.0
        ));
        assert!(!unit_saturated(
            Activation::Tanh,
            Interval::new(-1.0, 1.0),
            4.0
        ));
    }
}
