//! Weight-hygiene pass.
//!
//! Value-level checks on every network and gain matrix in a spec:
//! non-finite weights or biases (error — the controller would emit NaN),
//! degenerate all-zero layers (warning — the layer contributes nothing and
//! usually signals a failed initialization or a truncated file), exploding
//! layers whose spectral norm exceeds a configured limit (warning — the
//! Lipschitz product and any verification budget blow up), and per-layer
//! spectral-norm notes that make the Lipschitz certification below
//! auditable layer by layer.
//!
//! The pass assumes the composition pass already validated shapes: it
//! reads matrix entries only through `as_slice`, never by index.

use crate::analyzer::AnalysisConfig;
use crate::report::{AnalysisReport, Diagnostic};
use crate::spec::{Component, ControllerSpec};
use cocktail_math::Matrix;

pub(crate) const PASS: &str = "hygiene";

/// Runs the pass over every component of `spec`.
pub fn check(spec: &ControllerSpec, config: &AnalysisConfig, report: &mut AnalysisReport) {
    for component in spec.components() {
        match component {
            Component::Net { path, net, scale } => {
                for (li, layer) in net.layers().iter().enumerate() {
                    check_matrix(
                        &format!("{path} layer {li} weights"),
                        layer.weights(),
                        config,
                        report,
                    );
                    check_vector(&format!("{path} layer {li} biases"), layer.biases(), report);
                }
                if let Some(scale) = scale {
                    check_vector(&format!("{path} output scale"), scale, report);
                }
            }
            Component::Gain { path, gain, bias } => {
                check_matrix(&format!("{path} gain"), gain, config, report);
                check_vector(&format!("{path} bias"), bias, report);
            }
        }
    }
}

fn check_matrix(what: &str, m: &Matrix, config: &AnalysisConfig, report: &mut AnalysisReport) {
    let entries = m.as_slice();
    if let Some(bad) = entries.iter().position(|v| !v.is_finite()) {
        report.push(Diagnostic::error(
            PASS,
            "nonfinite-weight",
            format!(
                "{what}: entry ({}, {}) is {} — the controller would propagate it to every output",
                bad / m.cols(),
                bad % m.cols(),
                entries[bad]
            ),
        ));
        return; // norms are meaningless on non-finite data
    }
    if entries.iter().all(|&v| v == 0.0) {
        report.push(Diagnostic::warn(
            PASS,
            "degenerate-layer",
            format!(
                "{what}: all {} entries are zero — the layer transmits nothing",
                entries.len()
            ),
        ));
        return;
    }
    let sigma = m.spectral_norm();
    if sigma > config.spectral_norm_limit {
        report.push(Diagnostic::warn(
            PASS,
            "exploding-layer",
            format!(
                "{what}: spectral norm {sigma:.3e} exceeds the limit {:.1e} — \
                 Lipschitz products and verification budgets blow up",
                config.spectral_norm_limit
            ),
        ));
    } else {
        report.push(Diagnostic::info(
            PASS,
            "layer-norm",
            format!("{what}: spectral norm sigma = {sigma:.4}"),
        ));
    }
}

fn check_vector(what: &str, v: &[f64], report: &mut AnalysisReport) {
    if let Some(bad) = v.iter().position(|x| !x.is_finite()) {
        report.push(Diagnostic::error(
            PASS,
            "nonfinite-weight",
            format!("{what}: entry {bad} is {}", v[bad]),
        ));
    }
}
