//! Static analysis of Cocktail controllers and networks.
//!
//! A linter for the artifacts the rest of the workspace produces: expert
//! controllers, the adaptive mixture `A_W`, and distilled student
//! networks. It executes no rollouts — every finding is derived from the
//! weights, the architecture and the plant's declared domains:
//!
//! * **composition** — dimension and arity errors the runtime
//!   constructors would otherwise turn into panics deep inside a run;
//! * **hygiene** — non-finite, degenerate and exploding weights;
//! * **range** — interval propagation of the verification domain through
//!   the controller: saturated layers, dead `ReLU`s, and outputs that
//!   provably exceed the actuator limits `[U_inf, U_sup]`;
//! * **lipschitz** — the spectral-norm product bound, the distillation
//!   budget `L`, and the predicted Bernstein verification cost.
//!
//! The analyzable form is [`ControllerSpec`], a serializable
//! pre-construction mirror of the controller families: unlike the runtime
//! types it loads malformed models cleanly so the analyzer can explain
//! what is wrong instead of panicking.
//!
//! Two front ends consume the analyzer: the `lint-model` binary (exit
//! code ≠ 0 on error findings) and the pipeline pre-flight gate in
//! `cocktail-core`, controlled by [`PreflightMode`].

mod analyzer;
mod composition;
mod hygiene;
mod lipschitz_cert;
mod range;
mod report;
mod spec;

pub use analyzer::{AnalysisConfig, Analyzer, PreflightMode};
pub use lipschitz_cert::certified_bound;
pub use range::output_range;
pub use report::{AnalysisReport, Diagnostic, Severity};
pub use spec::{Component, ControllerSpec, WeightSpec};
