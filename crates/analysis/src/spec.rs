//! Serializable controller specifications.
//!
//! The runtime controller types deliberately validate their invariants in
//! their constructors (`Mlp::new`, `MixedController::new`, … panic on
//! malformed input), which is the right behaviour *inside* a pipeline but
//! useless for a linter: a model file with a NaN weight or mismatched
//! dimensions must be loadable so the analyzer can explain what is wrong
//! instead of aborting. [`ControllerSpec`] is that pre-construction form —
//! a plain data mirror of the controller families in `cocktail-control`
//! that derives `Serialize`/`Deserialize` field-wise and therefore accepts
//! arbitrary (including broken) content.

use cocktail_math::Matrix;
use cocktail_nn::Mlp;
use serde::{Deserialize, Serialize};

/// Pre-construction description of a controller.
///
/// Mirrors the controller families of `cocktail-control`:
/// `Mlp` ↔ `NnController`, `Linear` ↔ `LinearFeedbackController`,
/// `Mixed` ↔ `MixedController`, `Switching` ↔ `SwitchingController`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControllerSpec {
    /// A neural controller `u = scale ⊙ net(s)`.
    Mlp {
        /// The policy network.
        net: Mlp,
        /// Per-output scaling (element-wise, all entries positive).
        scale: Vec<f64>,
    },
    /// An affine state-feedback law `u = -K s + b`.
    Linear {
        /// The gain matrix `K` (`control_dim` × `state_dim`).
        gain: Matrix,
        /// Constant offset `b`; empty means zero.
        bias: Vec<f64>,
    },
    /// The paper's adaptive mixture `A_W`: `u = clip(Σᵢ aᵢ(s) κᵢ(s))`.
    Mixed {
        /// The expert controllers being mixed.
        experts: Vec<ControllerSpec>,
        /// The mixing-weight policy producing `a(s)`.
        weights: WeightSpec,
        /// Lower actuator limits `U_inf` (one per control dimension).
        u_inf: Vec<f64>,
        /// Upper actuator limits `U_sup` (one per control dimension).
        u_sup: Vec<f64>,
    },
    /// A hard-switching ensemble: one expert active at a time.
    Switching {
        /// The candidate experts.
        experts: Vec<ControllerSpec>,
    },
}

/// Pre-construction description of a mixing-weight policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WeightSpec {
    /// State-independent weights `a(s) = w`.
    Constant {
        /// One weight per expert.
        weights: Vec<f64>,
    },
    /// The paper's bounded policy `a(s) = bound · tanh(net(s))`.
    TanhNet {
        /// The weight network (state → one logit per expert).
        net: Mlp,
        /// Weight bound `W ≥ 1`.
        bound: f64,
    },
}

/// One analyzable sub-component of a spec, discovered by
/// [`ControllerSpec::components`]. The `path` locates the component for
/// diagnostics (e.g. `controller.experts[1]`).
#[derive(Debug)]
pub enum Component<'a> {
    /// A neural network, optionally with an output scale vector.
    Net {
        /// Dotted path from the root spec.
        path: String,
        /// The network itself.
        net: &'a Mlp,
        /// The output scale, when the owner is an `Mlp` spec.
        scale: Option<&'a [f64]>,
    },
    /// An affine gain matrix with its bias.
    Gain {
        /// Dotted path from the root spec.
        path: String,
        /// The gain matrix.
        gain: &'a Matrix,
        /// The bias vector (possibly empty).
        bias: &'a [f64],
    },
}

impl ControllerSpec {
    /// Short human label for the spec family.
    pub fn kind(&self) -> &'static str {
        match self {
            ControllerSpec::Mlp { .. } => "neural",
            ControllerSpec::Linear { .. } => "linear",
            ControllerSpec::Mixed { .. } => "mixed",
            ControllerSpec::Switching { .. } => "switching",
        }
    }

    /// Input (state) dimension, or `None` when the spec is too malformed
    /// to have one (empty network, empty ensemble).
    pub fn state_dim(&self) -> Option<usize> {
        match self {
            ControllerSpec::Mlp { net, .. } => {
                net.layers().first().map(cocktail_nn::Dense::input_dim)
            }
            ControllerSpec::Linear { gain, .. } => Some(gain.cols()),
            ControllerSpec::Mixed { experts, .. } | ControllerSpec::Switching { experts } => {
                experts.first().and_then(ControllerSpec::state_dim)
            }
        }
    }

    /// Output (control) dimension, or `None` when undeterminable.
    pub fn control_dim(&self) -> Option<usize> {
        match self {
            ControllerSpec::Mlp { net, .. } => {
                net.layers().last().map(cocktail_nn::Dense::output_dim)
            }
            ControllerSpec::Linear { gain, .. } => Some(gain.rows()),
            ControllerSpec::Mixed { experts, .. } | ControllerSpec::Switching { experts } => {
                experts.first().and_then(ControllerSpec::control_dim)
            }
        }
    }

    /// Flat list of every network / gain component with its diagnostic
    /// path, depth-first from the root.
    pub fn components(&self) -> Vec<Component<'_>> {
        let mut out = Vec::new();
        self.collect_components("controller", &mut out);
        out
    }

    fn collect_components<'a>(&'a self, path: &str, out: &mut Vec<Component<'a>>) {
        match self {
            ControllerSpec::Mlp { net, scale } => {
                out.push(Component::Net {
                    path: path.to_string(),
                    net,
                    scale: Some(scale),
                });
            }
            ControllerSpec::Linear { gain, bias } => {
                out.push(Component::Gain {
                    path: path.to_string(),
                    gain,
                    bias,
                });
            }
            ControllerSpec::Mixed {
                experts, weights, ..
            } => {
                for (i, e) in experts.iter().enumerate() {
                    e.collect_components(&format!("{path}.experts[{i}]"), out);
                }
                if let WeightSpec::TanhNet { net, .. } = weights {
                    out.push(Component::Net {
                        path: format!("{path}.weight-policy"),
                        net,
                        scale: None,
                    });
                }
            }
            ControllerSpec::Switching { experts } => {
                for (i, e) in experts.iter().enumerate() {
                    e.collect_components(&format!("{path}.experts[{i}]"), out);
                }
            }
        }
    }

    /// Concrete evaluation at a state, mirroring the runtime controllers.
    ///
    /// Returns `None` for malformed specs (dimension mismatches, empty
    /// ensembles) and for `Switching`, whose output depends on a selector
    /// the spec does not carry. Used by tests to compare interval bounds
    /// against sampled outputs.
    pub fn eval(&self, s: &[f64]) -> Option<Vec<f64>> {
        if self.state_dim()? != s.len() {
            return None;
        }
        match self {
            ControllerSpec::Mlp { net, scale } => {
                let y = net.forward(s);
                if y.len() != scale.len() {
                    return None;
                }
                Some(y.iter().zip(scale).map(|(v, k)| v * k).collect())
            }
            ControllerSpec::Linear { gain, bias } => {
                if gain.as_slice().len() != gain.rows() * gain.cols()
                    || (!bias.is_empty() && bias.len() != gain.rows())
                {
                    return None;
                }
                Some(
                    (0..gain.rows())
                        .map(|r| {
                            let row: f64 = (0..gain.cols()).map(|c| gain[(r, c)] * s[c]).sum();
                            bias.get(r).copied().unwrap_or(0.0) - row
                        })
                        .collect(),
                )
            }
            ControllerSpec::Mixed {
                experts,
                weights,
                u_inf,
                u_sup,
            } => {
                let m = self.control_dim()?;
                if u_inf.len() != m || u_sup.len() != m {
                    return None;
                }
                let w = match weights {
                    WeightSpec::Constant { weights } => weights.clone(),
                    WeightSpec::TanhNet { net, bound } => {
                        net.forward(s).iter().map(|z| bound * z.tanh()).collect()
                    }
                };
                if w.len() != experts.len() {
                    return None;
                }
                let mut u = vec![0.0; m];
                for (wi, e) in w.iter().zip(experts) {
                    let ue = e.eval(s)?;
                    if ue.len() != m {
                        return None;
                    }
                    for (acc, v) in u.iter_mut().zip(&ue) {
                        *acc += wi * v;
                    }
                }
                Some(
                    u.iter()
                        .zip(u_inf.iter().zip(u_sup))
                        .map(|(&v, (&lo, &hi))| v.clamp(lo, hi))
                        .collect(),
                )
            }
            ControllerSpec::Switching { .. } => None,
        }
    }

    /// Builds the spec of an `NnController`-shaped pair.
    pub fn from_network(net: Mlp, scale: Vec<f64>) -> Self {
        ControllerSpec::Mlp { net, scale }
    }

    /// JSON text of this spec.
    ///
    /// # Panics
    ///
    /// Never panics: the value-tree serializer is total over specs.
    #[allow(
        clippy::expect_used,
        reason = "the value-tree serializer is total over specs"
    )]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialization is total")
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse/shape error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_nn::{Activation, MlpBuilder};

    fn net(input: usize, output: usize) -> Mlp {
        MlpBuilder::new(input)
            .hidden(4, Activation::Tanh)
            .output(output, Activation::Identity)
            .seed(7)
            .build()
    }

    #[test]
    fn dims_of_each_family() {
        let mlp = ControllerSpec::Mlp {
            net: net(3, 2),
            scale: vec![1.0, 1.0],
        };
        assert_eq!(mlp.state_dim(), Some(3));
        assert_eq!(mlp.control_dim(), Some(2));

        let lin = ControllerSpec::Linear {
            gain: Matrix::from_rows(vec![vec![1.0, 0.0]]),
            bias: vec![],
        };
        assert_eq!(lin.state_dim(), Some(2));
        assert_eq!(lin.control_dim(), Some(1));

        let mixed = ControllerSpec::Mixed {
            experts: vec![mlp.clone(), mlp],
            weights: WeightSpec::Constant {
                weights: vec![0.5, 0.5],
            },
            u_inf: vec![-1.0, -1.0],
            u_sup: vec![1.0, 1.0],
        };
        assert_eq!(mixed.state_dim(), Some(3));
        assert_eq!(mixed.control_dim(), Some(2));

        let empty = ControllerSpec::Switching { experts: vec![] };
        assert_eq!(empty.state_dim(), None);
    }

    #[test]
    fn component_paths_cover_nested_networks() {
        let mixed = ControllerSpec::Mixed {
            experts: vec![
                ControllerSpec::Mlp {
                    net: net(2, 1),
                    scale: vec![1.0],
                },
                ControllerSpec::Linear {
                    gain: Matrix::from_rows(vec![vec![1.0, 2.0]]),
                    bias: vec![],
                },
            ],
            weights: WeightSpec::TanhNet {
                net: net(2, 2),
                bound: 1.0,
            },
            u_inf: vec![-1.0],
            u_sup: vec![1.0],
        };
        let paths: Vec<String> = mixed
            .components()
            .iter()
            .map(|c| match c {
                Component::Net { path, .. } | Component::Gain { path, .. } => path.clone(),
            })
            .collect();
        assert_eq!(
            paths,
            vec![
                "controller.experts[0]",
                "controller.experts[1]",
                "controller.weight-policy"
            ]
        );
    }

    #[test]
    fn eval_matches_manual_linear_feedback() {
        let spec = ControllerSpec::Linear {
            gain: Matrix::from_rows(vec![vec![2.0, -1.0]]),
            bias: vec![0.5],
        };
        // u = b - K s
        let u = spec.eval(&[1.0, 3.0]).expect("well-formed");
        assert!((u[0] - (0.5 - (2.0 - 3.0))).abs() < 1e-12);
    }

    #[test]
    fn eval_clips_mixture_to_actuator_box() {
        let spec = ControllerSpec::Mixed {
            experts: vec![ControllerSpec::Linear {
                gain: Matrix::from_rows(vec![vec![-100.0]]),
                bias: vec![],
            }],
            weights: WeightSpec::Constant { weights: vec![1.0] },
            u_inf: vec![-2.0],
            u_sup: vec![2.0],
        };
        assert_eq!(spec.eval(&[1.0]), Some(vec![2.0]));
    }

    #[test]
    fn json_round_trip() {
        let spec = ControllerSpec::Mixed {
            experts: vec![ControllerSpec::Mlp {
                net: net(2, 1),
                scale: vec![20.0],
            }],
            weights: WeightSpec::Constant { weights: vec![1.0] },
            u_inf: vec![-20.0],
            u_sup: vec![20.0],
        };
        let back = ControllerSpec::from_json(&spec.to_json()).expect("round trip");
        assert_eq!(back, spec);
    }

    #[test]
    fn malformed_eval_returns_none() {
        let spec = ControllerSpec::Mlp {
            net: net(2, 1),
            scale: vec![1.0, 1.0],
        };
        assert_eq!(spec.eval(&[0.0, 0.0]), None); // scale arity mismatch
        assert_eq!(spec.eval(&[0.0]), None); // state dim mismatch
    }
}
