//! Composition pass: structural validation.
//!
//! Everything the runtime constructors would panic on — and a few things
//! they cannot see — expressed as diagnostics instead: matrix storage vs
//! declared shape, bias arity, consecutive-layer dimensions, output-scale
//! arity and positivity, expert dimension agreement in ensembles,
//! mixing-weight arity, actuator-box sanity, and finally the spec's
//! dimensions against the plant it is supposed to drive.
//!
//! This pass runs first and must never index into possibly-inconsistent
//! storage: every element access is preceded by a length check.

use crate::report::{AnalysisReport, Diagnostic};
use crate::spec::{ControllerSpec, WeightSpec};
use cocktail_env::Dynamics;
use cocktail_math::Matrix;
use cocktail_nn::Mlp;

pub(crate) const PASS: &str = "composition";

/// Runs the pass: structural checks of `spec` plus its fit to `sys`.
pub fn check(spec: &ControllerSpec, sys: &dyn Dynamics, report: &mut AnalysisReport) {
    check_spec(spec, "controller", report);

    // Fit to the plant (skipped when the spec has no determinable dims;
    // the structural checks above already explain why).
    if let Some(n) = spec.state_dim() {
        if n != sys.state_dim() {
            report.push(Diagnostic::error(
                PASS,
                "dim-mismatch",
                format!(
                    "controller reads {n}-dimensional states but plant `{}` has {} state dims",
                    sys.name(),
                    sys.state_dim()
                ),
            ));
        }
    }
    if let Some(m) = spec.control_dim() {
        if m != sys.control_dim() {
            report.push(Diagnostic::error(
                PASS,
                "dim-mismatch",
                format!(
                    "controller emits {m}-dimensional controls but plant `{}` takes {} control dims",
                    sys.name(),
                    sys.control_dim()
                ),
            ));
        }
    }
}

fn check_spec(spec: &ControllerSpec, path: &str, report: &mut AnalysisReport) {
    match spec {
        ControllerSpec::Mlp { net, scale } => check_net(path, net, Some(scale), report),
        ControllerSpec::Linear { gain, bias } => {
            check_matrix_storage(&format!("{path} gain"), gain, report);
            if !bias.is_empty() && bias.len() != gain.rows() {
                report.push(Diagnostic::error(
                    PASS,
                    "bias-arity",
                    format!(
                        "{path}: bias has {} entries but the gain emits {} outputs",
                        bias.len(),
                        gain.rows()
                    ),
                ));
            }
        }
        ControllerSpec::Mixed {
            experts,
            weights,
            u_inf,
            u_sup,
        } => {
            check_ensemble(experts, path, report);
            match weights {
                WeightSpec::Constant { weights } => {
                    if weights.len() != experts.len() {
                        report.push(Diagnostic::error(
                            PASS,
                            "weight-arity",
                            format!(
                                "{path}: {} mixing weights for {} experts",
                                weights.len(),
                                experts.len()
                            ),
                        ));
                    }
                }
                WeightSpec::TanhNet { net, bound } => {
                    check_net(&format!("{path}.weight-policy"), net, None, report);
                    if let Some(outputs) = net.layers().last().map(cocktail_nn::Dense::output_dim) {
                        if outputs != experts.len() {
                            report.push(Diagnostic::error(
                                PASS,
                                "weight-arity",
                                format!(
                                    "{path}: weight policy emits {outputs} weights for {} experts",
                                    experts.len()
                                ),
                            ));
                        }
                    }
                    if let (Some(inputs), Some(n)) = (
                        net.layers().first().map(cocktail_nn::Dense::input_dim),
                        experts.first().and_then(ControllerSpec::state_dim),
                    ) {
                        if inputs != n {
                            report.push(Diagnostic::error(
                                PASS,
                                "dim-mismatch",
                                format!(
                                    "{path}: weight policy reads {inputs}-dimensional states \
                                     but the experts read {n}"
                                ),
                            ));
                        }
                    }
                    if bound.is_nan() || *bound < 1.0 {
                        report.push(Diagnostic::error(
                            PASS,
                            "weight-bound",
                            format!(
                                "{path}: weight bound {bound} violates the paper's W >= 1 \
                                 requirement"
                            ),
                        ));
                    }
                }
            }
            if let Some(m) = experts.first().and_then(ControllerSpec::control_dim) {
                for (name, v) in [("u_inf", u_inf), ("u_sup", u_sup)] {
                    if v.len() != m {
                        report.push(Diagnostic::error(
                            PASS,
                            "bound-arity",
                            format!(
                                "{path}: {name} has {} entries for {m} control dims",
                                v.len()
                            ),
                        ));
                    }
                    if let Some(bad) = v.iter().position(|x| !x.is_finite()) {
                        report.push(Diagnostic::error(
                            PASS,
                            "nonfinite-bound",
                            format!("{path}: {name}[{bad}] is {}", v[bad]),
                        ));
                    }
                }
                for (j, (lo, hi)) in u_inf.iter().zip(u_sup).enumerate() {
                    if lo > hi {
                        report.push(Diagnostic::error(
                            PASS,
                            "empty-control-box",
                            format!("{path}: u_inf[{j}] = {lo} exceeds u_sup[{j}] = {hi}"),
                        ));
                    }
                }
            }
        }
        ControllerSpec::Switching { experts } => check_ensemble(experts, path, report),
    }
}

fn check_ensemble(experts: &[ControllerSpec], path: &str, report: &mut AnalysisReport) {
    if experts.is_empty() {
        report.push(Diagnostic::error(
            PASS,
            "empty-ensemble",
            format!("{path}: an ensemble needs at least one expert"),
        ));
        return;
    }
    for (i, e) in experts.iter().enumerate() {
        check_spec(e, &format!("{path}.experts[{i}]"), report);
    }
    for dims in [
        ControllerSpec::state_dim as fn(&ControllerSpec) -> Option<usize>,
        ControllerSpec::control_dim,
    ] {
        let first = dims(&experts[0]);
        for (i, e) in experts.iter().enumerate().skip(1) {
            let d = dims(e);
            if d.is_some() && first.is_some() && d != first {
                report.push(Diagnostic::error(
                    PASS,
                    "dim-mismatch",
                    format!(
                        "{path}: expert {i} has dimensions ({:?} -> {:?}) but expert 0 has \
                         ({:?} -> {:?}) — the mixture Σ aᵢκᵢ(s) is undefined",
                        e.state_dim(),
                        e.control_dim(),
                        experts[0].state_dim(),
                        experts[0].control_dim()
                    ),
                ));
                break;
            }
        }
    }
}

fn check_net(path: &str, net: &Mlp, scale: Option<&[f64]>, report: &mut AnalysisReport) {
    if net.layers().is_empty() {
        report.push(Diagnostic::error(
            PASS,
            "empty-network",
            format!("{path}: network has no layers"),
        ));
        return;
    }
    for (li, layer) in net.layers().iter().enumerate() {
        check_matrix_storage(
            &format!("{path} layer {li} weights"),
            layer.weights(),
            report,
        );
        if layer.biases().len() != layer.weights().rows() {
            report.push(Diagnostic::error(
                PASS,
                "bias-arity",
                format!(
                    "{path} layer {li}: {} biases for {} units",
                    layer.biases().len(),
                    layer.weights().rows()
                ),
            ));
        }
    }
    for (li, pair) in net.layers().windows(2).enumerate() {
        let (out, inp) = (pair[0].weights().rows(), pair[1].weights().cols());
        if out != inp {
            report.push(Diagnostic::error(
                PASS,
                "layer-dim-mismatch",
                format!(
                    "{path}: layer {li} emits {out} activations but layer {} reads {inp}",
                    li + 1
                ),
            ));
        }
    }
    if let Some(scale) = scale {
        let outputs = net
            .layers()
            .last()
            .map_or(0, cocktail_nn::Dense::output_dim);
        if scale.len() != outputs {
            report.push(Diagnostic::error(
                PASS,
                "scale-arity",
                format!(
                    "{path}: {} scale entries for {outputs} outputs",
                    scale.len()
                ),
            ));
        }
        for (j, k) in scale.iter().enumerate() {
            if !(*k > 0.0 && k.is_finite()) {
                report.push(Diagnostic::error(
                    PASS,
                    "scale-domain",
                    format!("{path}: scale[{j}] = {k} must be positive and finite"),
                ));
            }
        }
    }
}

fn check_matrix_storage(what: &str, m: &Matrix, report: &mut AnalysisReport) {
    if m.as_slice().len() != m.rows() * m.cols() {
        report.push(Diagnostic::error(
            PASS,
            "matrix-shape",
            format!(
                "{what}: stores {} entries but declares {}x{}",
                m.as_slice().len(),
                m.rows(),
                m.cols()
            ),
        ));
    }
}
