//! Property-based tests of the plant substrate: interval-step soundness,
//! rollout determinism and clipping invariants across all three systems.

use cocktail_env::systems::{CartPole, Poly3d, VanDerPol};
use cocktail_env::{rollout, Dynamics, RolloutConfig};
use cocktail_math::{rng, BoxRegion, Interval};
use proptest::prelude::*;

fn systems() -> Vec<Box<dyn Dynamics>> {
    vec![
        Box::new(VanDerPol::new()),
        Box::new(Poly3d::new()),
        Box::new(CartPole::new()),
    ]
}

/// Builds a random sub-box of the initial set from unit coordinates.
fn sub_box(sys: &dyn Dynamics, lo_t: &[f64], width_t: f64) -> BoxRegion {
    let x0 = sys.initial_set();
    let dims = x0
        .intervals()
        .iter()
        .zip(lo_t)
        .map(|(iv, &t)| {
            let lo = iv.lo() + t * iv.width() * (1.0 - width_t);
            let hi = lo + iv.width() * width_t;
            Interval::new(lo, hi.min(iv.hi()))
        })
        .collect();
    BoxRegion::new(dims)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interval_step_contains_concrete_step(
        seed in 0u64..10_000,
        t0 in 0.0..1.0f64, t1 in 0.0..1.0f64, t2 in 0.0..1.0f64, t3 in 0.0..1.0f64,
        width in 0.05..0.5f64,
        u_frac in -1.0..1.0f64,
    ) {
        let ts = [t0, t1, t2, t3];
        for sys in systems() {
            let region = sub_box(sys.as_ref(), &ts[..sys.state_dim()], width);
            let (ulo, uhi) = sys.control_bounds();
            let u_point: Vec<f64> =
                ulo.iter().zip(&uhi).map(|(&l, &h)| 0.5 * (l + h) + 0.5 * u_frac * (h - l)).collect();
            let ubox: Vec<Interval> = u_point.iter().map(|&u| Interval::point(u)).collect();
            let wamp = sys.disturbance_amplitude();
            let wbox: Vec<Interval> = wamp.iter().map(|&a| Interval::symmetric(a)).collect();
            let bounds = sys.step_interval(region.intervals(), &ubox, &wbox);

            let mut r = rng::seeded(seed);
            for _ in 0..10 {
                let s = rng::uniform_in_box(&mut r, &region);
                let w = rng::uniform_symmetric(
                    &mut r,
                    sys.disturbance_dim(),
                    *wamp.first().unwrap_or(&0.0),
                );
                let next = sys.step(&s, &u_point, &w);
                for (n, b) in next.iter().zip(&bounds) {
                    prop_assert!(b.inflate(1e-9).contains(*n), "{}: {n} escapes {b}", sys.name());
                }
            }
        }
    }

    #[test]
    fn rollout_controls_always_clipped(seed in 0u64..1000, gain in -50.0..50.0f64) {
        for sys in systems() {
            let dim = sys.state_dim();
            let mut controller = |s: &[f64]| vec![gain * s.iter().sum::<f64>(); sys.control_dim()];
            let mut no_attack = |_t: usize, s: &[f64]| vec![0.0; s.len()];
            let mut r = rng::seeded(seed);
            let s0 = rng::uniform_in_box(&mut r, &sys.initial_set());
            prop_assert_eq!(s0.len(), dim);
            let traj = rollout(
                sys.as_ref(),
                &mut controller,
                &mut no_attack,
                &s0,
                &RolloutConfig { horizon: Some(20), seed, ..Default::default() },
            );
            let (lo, hi) = sys.control_bounds();
            for u in &traj.controls {
                for (i, v) in u.iter().enumerate() {
                    prop_assert!((lo[i]..=hi[i]).contains(v));
                }
            }
        }
    }

    #[test]
    fn rollout_energy_is_nonnegative_and_additive(seed in 0u64..1000) {
        let sys = VanDerPol::new();
        let mut controller = |s: &[f64]| vec![-2.0 * s[0] - 2.0 * s[1]];
        let mut no_attack = |_t: usize, s: &[f64]| vec![0.0; s.len()];
        let mut r = rng::seeded(seed);
        let s0 = rng::uniform_in_box(&mut r, &sys.initial_set());
        let traj = rollout(
            &sys,
            &mut controller,
            &mut no_attack,
            &s0,
            &RolloutConfig { seed, ..Default::default() },
        );
        let manual: f64 = traj.controls.iter().map(|u| u[0].abs()).sum();
        prop_assert!((traj.energy() - manual).abs() < 1e-12);
        prop_assert!(traj.energy() >= 0.0);
    }

    #[test]
    fn safety_flag_matches_visited_states(seed in 0u64..1000, gain in 0.0..5.0f64) {
        for sys in systems() {
            let mut controller = {
                let g = gain;
                move |s: &[f64]| vec![-g * s.iter().sum::<f64>(); 1]
            };
            let mut no_attack = |_t: usize, s: &[f64]| vec![0.0; s.len()];
            let mut r = rng::seeded(seed);
            let s0 = rng::uniform_in_box(&mut r, &sys.initial_set());
            let traj = rollout(
                sys.as_ref(),
                &mut controller,
                &mut no_attack,
                &s0,
                &RolloutConfig { horizon: Some(50), seed, stop_on_violation: false, ..Default::default() },
            );
            let all_safe = traj.states.iter().all(|s| sys.is_safe(s));
            prop_assert_eq!(traj.is_safe(), all_safe, "{} flag mismatch", sys.name());
            if let Some(t) = traj.first_violation {
                prop_assert!(!sys.is_safe(&traj.states[t]));
                for s in &traj.states[..t] {
                    prop_assert!(sys.is_safe(s));
                }
            }
        }
    }

    #[test]
    fn same_seed_same_trajectory(seed in 0u64..1000) {
        let sys = VanDerPol::new();
        let run = || {
            let mut c = |s: &[f64]| vec![-s[0] - s[1]];
            let mut p = |_t: usize, s: &[f64]| vec![0.0; s.len()];
            rollout(&sys, &mut c, &mut p, &[0.7, -0.7],
                &RolloutConfig { seed, ..Default::default() })
        };
        prop_assert_eq!(run(), run());
    }
}
