//! Seeded, deterministic fault injection for experts and plant sensors.
//!
//! A [`FaultPlan`] schedules [`FaultKind`]s over step windows; a
//! [`FaultInjector`] executes the plan against a stream of controller
//! outputs (or observed states) during a rollout. Everything is a pure
//! function of `(plan, seed, step, input)`, so injected runs obey the same
//! bit-for-bit determinism contract as the rest of the workspace: the same
//! plan and seed produce the same faulty trajectory at any worker count.
//!
//! # Examples
//!
//! ```
//! use cocktail_env::fault::{FaultInjector, FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::window(FaultKind::Dropout, 2, Some(4));
//! let mut inj = FaultInjector::new(plan, 0);
//! assert_eq!(inj.output(0, &[1.5]), vec![1.5]); // healthy
//! assert_eq!(inj.output(2, &[1.5]), vec![0.0]); // dropped
//! assert_eq!(inj.output(4, &[1.5]), vec![1.5]); // window closed
//! ```

use serde::{Deserialize, Serialize};

/// The kinds of faults the injector can produce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Replace every output component with `NaN`.
    NanOutput,
    /// Replace every output component with `+∞`.
    InfOutput,
    /// Freeze the output at the last healthy value (zeros if none yet).
    StuckAt,
    /// Silently output zero.
    Dropout,
    /// Clamp every output component into `[-limit, limit]`.
    Saturate {
        /// Magnitude bound of the saturated output.
        limit: f64,
    },
    /// Additive spike of `±magnitude` on one observed-state component
    /// (which component and which sign are hashed from the seed and step).
    SensorSpike {
        /// Absolute size of the spike.
        magnitude: f64,
    },
}

impl FaultKind {
    /// Whether this fault corrupts controller outputs (as opposed to the
    /// observed state).
    pub fn affects_output(&self) -> bool {
        !matches!(self, FaultKind::SensorSpike { .. })
    }
}

/// A half-open step window `[start, end)`; `end = None` means "forever".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// First step at which the fault is active.
    pub start: usize,
    /// First step at which the fault is inactive again (`None`: permanent).
    pub end: Option<usize>,
}

impl FaultWindow {
    /// A window active from `start` onwards, forever.
    pub fn permanent(start: usize) -> Self {
        Self { start, end: None }
    }

    /// Whether step `t` falls inside the window.
    pub fn contains(&self, t: usize) -> bool {
        t >= self.start && self.end.is_none_or(|e| t < e)
    }
}

/// One scheduled fault: a kind plus the window in which it is active.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// What goes wrong.
    pub kind: FaultKind,
    /// When it goes wrong.
    pub window: FaultWindow,
}

/// A deterministic schedule of faults over a rollout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Scheduled faults, applied in order when windows overlap.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// A single fault active for the whole rollout.
    pub fn permanent(kind: FaultKind) -> Self {
        Self::window(kind, 0, None)
    }

    /// A single fault active on `[start, end)`.
    pub fn window(kind: FaultKind, start: usize, end: Option<usize>) -> Self {
        Self {
            events: vec![FaultEvent {
                kind,
                window: FaultWindow { start, end },
            }],
        }
    }

    /// Adds another scheduled fault (builder style).
    pub fn and(mut self, kind: FaultKind, start: usize, end: Option<usize>) -> Self {
        self.events.push(FaultEvent {
            kind,
            window: FaultWindow { start, end },
        });
        self
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events active at step `t`, in schedule order.
    pub fn active_at(&self, t: usize) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.window.contains(t))
    }

    /// Draws `count` random fault events over a `horizon`-step rollout.
    /// Purely a function of `(seed, horizon, count)` — the same arguments
    /// always produce the same plan.
    pub fn random(seed: u64, horizon: usize, count: usize) -> Self {
        let horizon = horizon.max(1);
        let mut events = Vec::with_capacity(count);
        for i in 0..count {
            let h = hash2(seed, i as u64);
            let start = (h % horizon as u64) as usize;
            let len = 1 + (hash2(h, 1) % (horizon as u64 / 2).max(1)) as usize;
            let kind = match hash2(h, 2) % 6 {
                0 => FaultKind::NanOutput,
                1 => FaultKind::InfOutput,
                2 => FaultKind::StuckAt,
                3 => FaultKind::Dropout,
                4 => FaultKind::Saturate { limit: 0.5 },
                _ => FaultKind::SensorSpike { magnitude: 0.5 },
            };
            events.push(FaultEvent {
                kind,
                window: FaultWindow {
                    start,
                    end: Some((start + len).min(horizon)),
                },
            });
        }
        Self { events }
    }
}

/// splitmix64-style finalizer mixing two words; the per-step fault
/// randomness derives from this so it is independent of call order.
fn hash2(a: u64, b: u64) -> u64 {
    let mut z = (a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Executes a [`FaultPlan`] against controller outputs and observed states.
///
/// The only mutable state is the last healthy output (for
/// [`FaultKind::StuckAt`]); call [`FaultInjector::reset`] between episodes,
/// or construct a fresh injector per episode for parallel evaluation (the
/// deterministic-parallelism contract requires per-episode injectors, since
/// a shared injector's stuck-at memory would depend on episode
/// interleaving).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    last_healthy: Option<Vec<f64>>,
}

impl FaultInjector {
    /// Creates an injector for `plan`; `seed` drives the sensor-spike
    /// randomness.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        Self {
            plan,
            seed,
            last_healthy: None,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Clears the stuck-at memory (start of a new episode).
    pub fn reset(&mut self) {
        self.last_healthy = None;
    }

    /// Applies the output faults active at step `t` to a healthy
    /// controller output, in schedule order.
    pub fn output(&mut self, t: usize, healthy: &[f64]) -> Vec<f64> {
        let mut out = healthy.to_vec();
        let mut stuck = false;
        let active: Vec<FaultKind> = self.plan.active_at(t).map(|e| e.kind.clone()).collect();
        for kind in &active {
            match kind {
                FaultKind::NanOutput => out.fill(f64::NAN),
                FaultKind::InfOutput => out.fill(f64::INFINITY),
                FaultKind::Dropout => out.fill(0.0),
                FaultKind::StuckAt => {
                    stuck = true;
                    out = self
                        .last_healthy
                        .clone()
                        .unwrap_or_else(|| vec![0.0; healthy.len()]);
                }
                FaultKind::Saturate { limit } => {
                    for v in &mut out {
                        *v = v.clamp(-limit.abs(), limit.abs());
                    }
                }
                FaultKind::SensorSpike { .. } => {}
            }
        }
        if !stuck {
            self.last_healthy = Some(healthy.to_vec());
        }
        out
    }

    /// Applies the sensor faults active at step `t` to an observed state:
    /// each active spike adds `±magnitude` to one hashed component.
    pub fn sensor(&self, t: usize, observed: &[f64]) -> Vec<f64> {
        let mut s = observed.to_vec();
        if s.is_empty() {
            return s;
        }
        for (j, event) in self.plan.active_at(t).enumerate() {
            if let FaultKind::SensorSpike { magnitude } = event.kind {
                let h = hash2(self.seed, ((t as u64) << 8) | j as u64);
                let dim = (h % s.len() as u64) as usize;
                let sign = if h & (1 << 32) == 0 { 1.0 } else { -1.0 };
                s[dim] += sign * magnitude;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_gate_activation() {
        let w = FaultWindow {
            start: 3,
            end: Some(6),
        };
        assert!(!w.contains(2));
        assert!(w.contains(3));
        assert!(w.contains(5));
        assert!(!w.contains(6));
        assert!(FaultWindow::permanent(4).contains(1_000_000));
    }

    #[test]
    fn nan_and_inf_outputs_corrupt_everything() {
        let mut inj = FaultInjector::new(FaultPlan::permanent(FaultKind::NanOutput), 0);
        assert!(inj.output(0, &[1.0, -2.0]).iter().all(|v| v.is_nan()));
        let mut inj = FaultInjector::new(FaultPlan::permanent(FaultKind::InfOutput), 0);
        assert!(inj.output(0, &[1.0]).iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn stuck_at_freezes_last_healthy_output() {
        let plan = FaultPlan::window(FaultKind::StuckAt, 2, Some(4));
        let mut inj = FaultInjector::new(plan, 0);
        assert_eq!(inj.output(0, &[1.0]), vec![1.0]);
        assert_eq!(inj.output(1, &[2.0]), vec![2.0]);
        assert_eq!(inj.output(2, &[3.0]), vec![2.0], "frozen at step-1 value");
        assert_eq!(inj.output(3, &[4.0]), vec![2.0], "still frozen");
        assert_eq!(inj.output(4, &[5.0]), vec![5.0], "window closed");
    }

    #[test]
    fn stuck_at_with_no_history_outputs_zero() {
        let mut inj = FaultInjector::new(FaultPlan::permanent(FaultKind::StuckAt), 0);
        assert_eq!(inj.output(0, &[7.0, 7.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn saturation_clamps_magnitude() {
        let mut inj =
            FaultInjector::new(FaultPlan::permanent(FaultKind::Saturate { limit: 0.5 }), 0);
        assert_eq!(inj.output(0, &[3.0, -3.0, 0.2]), vec![0.5, -0.5, 0.2]);
    }

    #[test]
    fn sensor_spike_hits_one_component_deterministically() {
        let plan = FaultPlan::permanent(FaultKind::SensorSpike { magnitude: 0.7 });
        let inj = FaultInjector::new(plan.clone(), 11);
        let s = [0.0, 0.0, 0.0];
        let spiked = inj.sensor(5, &s);
        let moved: Vec<usize> = (0..3).filter(|&i| spiked[i] != 0.0).collect();
        assert_eq!(moved.len(), 1);
        assert_eq!(spiked[moved[0]].abs(), 0.7);
        // same (plan, seed, step) → same spike; different step may differ
        assert_eq!(FaultInjector::new(plan, 11).sensor(5, &s), spiked);
    }

    #[test]
    fn output_faults_leave_sensor_path_untouched_and_vice_versa() {
        let inj = FaultInjector::new(FaultPlan::permanent(FaultKind::Dropout), 3);
        assert_eq!(inj.sensor(0, &[1.0, 2.0]), vec![1.0, 2.0]);
        let mut inj2 = FaultInjector::new(
            FaultPlan::permanent(FaultKind::SensorSpike { magnitude: 1.0 }),
            3,
        );
        assert_eq!(inj2.output(0, &[4.0]), vec![4.0]);
    }

    #[test]
    fn reset_clears_stuck_memory() {
        let plan = FaultPlan::window(FaultKind::StuckAt, 1, None);
        let mut inj = FaultInjector::new(plan, 0);
        assert_eq!(inj.output(0, &[9.0]), vec![9.0]);
        assert_eq!(inj.output(1, &[5.0]), vec![9.0]);
        inj.reset();
        assert_eq!(inj.output(1, &[5.0]), vec![0.0], "no healthy history");
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(42, 100, 5);
        let b = FaultPlan::random(42, 100, 5);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 5);
        let c = FaultPlan::random(43, 100, 5);
        assert_ne!(a, c);
        for e in &a.events {
            assert!(e.window.start < 100);
            assert!(e.window.end.is_some_and(|end| end <= 100));
        }
    }

    #[test]
    fn plan_serializes_round_trip() {
        let plan = FaultPlan::random(7, 50, 4).and(FaultKind::NanOutput, 0, Some(3));
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(plan, back);
    }
}
