//! External disturbance models (`ω(t)` in the system equation).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the external disturbance `ω(t)` is sampled at every step.
///
/// # Examples
///
/// ```
/// use cocktail_env::DisturbanceModel;
///
/// let model = DisturbanceModel::Uniform(vec![0.05]);
/// let mut rng = cocktail_math::rng::seeded(0);
/// let w = model.sample(&mut rng);
/// assert!(w[0].abs() <= 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum DisturbanceModel {
    /// No disturbance; produces an empty vector.
    #[default]
    None,
    /// Component `i` is uniform in `[-amp[i], amp[i]]` — the paper's model.
    Uniform(Vec<f64>),
}

impl DisturbanceModel {
    /// Builds the model matching a system's declared amplitude vector.
    pub fn from_amplitude(amp: Vec<f64>) -> Self {
        if amp.is_empty() || amp.iter().all(|&a| a == 0.0) {
            DisturbanceModel::None
        } else {
            DisturbanceModel::Uniform(amp)
        }
    }

    /// Dimension of the sampled vector.
    pub fn dim(&self) -> usize {
        match self {
            DisturbanceModel::None => 0,
            DisturbanceModel::Uniform(amp) => amp.len(),
        }
    }

    /// Draws one disturbance realization.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        match self {
            DisturbanceModel::None => Vec::new(),
            DisturbanceModel::Uniform(amp) => amp
                .iter()
                .map(|&a| if a > 0.0 { rng.gen_range(-a..=a) } else { 0.0 })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_math::rng::seeded;

    #[test]
    fn none_is_empty() {
        let mut r = seeded(0);
        assert!(DisturbanceModel::None.sample(&mut r).is_empty());
        assert_eq!(DisturbanceModel::None.dim(), 0);
    }

    #[test]
    fn uniform_respects_amplitude() {
        let m = DisturbanceModel::Uniform(vec![0.1, 0.0, 2.0]);
        let mut r = seeded(1);
        for _ in 0..100 {
            let w = m.sample(&mut r);
            assert!(w[0].abs() <= 0.1);
            assert_eq!(w[1], 0.0);
            assert!(w[2].abs() <= 2.0);
        }
    }

    #[test]
    fn from_amplitude_collapses_zero() {
        assert_eq!(
            DisturbanceModel::from_amplitude(vec![]),
            DisturbanceModel::None
        );
        assert_eq!(
            DisturbanceModel::from_amplitude(vec![0.0]),
            DisturbanceModel::None
        );
        assert_eq!(
            DisturbanceModel::from_amplitude(vec![0.05]),
            DisturbanceModel::Uniform(vec![0.05])
        );
    }
}
