//! Closed-loop trajectory simulation.
//!
//! The rollout driver implements the paper's Eq. 2: the controller observes
//! the *perturbed* state `s(t) + δ(t)` (attack or measurement noise), its
//! output is clipped into `U` (Eq. 4), the plant evolves from the true
//! state under disturbance `ω(t)`, and the trajectory is safe iff every
//! visited state stays inside the safe region `X`.

use crate::disturbance::DisturbanceModel;
use crate::dynamics::Dynamics;
use cocktail_math::vector;
use serde::{Deserialize, Serialize};

/// A simulated closed-loop trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Visited true states, `controls.len() + 1` entries.
    pub states: Vec<Vec<f64>>,
    /// Applied (clipped) control inputs.
    pub controls: Vec<Vec<f64>>,
    /// Step index of the first safety violation, if any.
    pub first_violation: Option<usize>,
}

impl Trajectory {
    /// Whether every visited state was safe.
    pub fn is_safe(&self) -> bool {
        self.first_violation.is_none()
    }

    /// Total control energy `Σ_t ‖u(t)‖₁` (the paper's Eq. 3 summand).
    pub fn energy(&self) -> f64 {
        self.controls.iter().map(|u| vector::norm_1(u)).sum()
    }

    /// Number of executed control steps.
    pub fn len(&self) -> usize {
        self.controls.len()
    }

    /// Whether no step was executed.
    pub fn is_empty(&self) -> bool {
        self.controls.is_empty()
    }

    /// The final state.
    #[allow(
        clippy::expect_used,
        reason = "a trajectory always holds at least the initial state"
    )]
    pub fn last_state(&self) -> &[f64] {
        self.states
            .last()
            .expect("trajectory always holds the initial state")
    }
}

/// Configuration for [`rollout`].
#[derive(Debug, Clone)]
pub struct RolloutConfig {
    /// Number of control steps; `None` uses the system's own horizon.
    pub horizon: Option<usize>,
    /// External-disturbance model; `None` uses the system's declared
    /// uniform amplitude.
    pub disturbance: Option<DisturbanceModel>,
    /// RNG seed for disturbance sampling.
    pub seed: u64,
    /// Stop simulating at the first safety violation (default `true`;
    /// the safe-control-rate metric only needs the first violation).
    pub stop_on_violation: bool,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        Self {
            horizon: None,
            disturbance: None,
            seed: 0,
            stop_on_violation: true,
        }
    }
}

/// Simulates the closed loop from `s0`.
///
/// `controller` maps the *observed* state to a control vector;
/// `perturbation` produces `δ(t)` from the step index and the true state
/// (return a zero vector for the nominal setting). The rollout clips the
/// control into `U` before applying it.
///
/// # Panics
///
/// Panics if `s0.len() != sys.state_dim()` or the controller returns a
/// vector of the wrong dimension.
///
/// # Examples
///
/// ```
/// use cocktail_env::{rollout, Dynamics, RolloutConfig, systems::VanDerPol};
///
/// let sys = VanDerPol::new();
/// // proportional damping controller
/// let mut controller = |s: &[f64]| vec![-2.0 * s[0] - 2.0 * s[1]];
/// let mut no_attack = |_t: usize, s: &[f64]| vec![0.0; s.len()];
/// let traj = rollout(&sys, &mut controller, &mut no_attack, &[0.5, 0.5],
///                    &RolloutConfig::default());
/// assert!(traj.is_safe());
/// ```
pub fn rollout(
    sys: &dyn Dynamics,
    controller: &mut dyn FnMut(&[f64]) -> Vec<f64>,
    perturbation: &mut dyn FnMut(usize, &[f64]) -> Vec<f64>,
    s0: &[f64],
    config: &RolloutConfig,
) -> Trajectory {
    assert_eq!(
        s0.len(),
        sys.state_dim(),
        "initial state dimension mismatch"
    );
    let horizon = config.horizon.unwrap_or_else(|| sys.horizon());
    let disturbance = config
        .disturbance
        .clone()
        .unwrap_or_else(|| DisturbanceModel::from_amplitude(sys.disturbance_amplitude()));
    let mut rng = cocktail_math::rng::seeded(config.seed);

    let mut states = Vec::with_capacity(horizon + 1);
    let mut controls = Vec::with_capacity(horizon);
    let mut first_violation = if sys.is_safe(s0) { None } else { Some(0) };
    states.push(s0.to_vec());

    if first_violation.is_some() && config.stop_on_violation {
        return Trajectory {
            states,
            controls,
            first_violation,
        };
    }

    let mut s = s0.to_vec();
    for t in 0..horizon {
        let delta = perturbation(t, &s);
        assert_eq!(delta.len(), s.len(), "perturbation dimension mismatch");
        let observed = vector::add(&s, &delta);
        let u_raw = controller(&observed);
        assert_eq!(
            u_raw.len(),
            sys.control_dim(),
            "controller output dimension mismatch"
        );
        let u = sys.clip_control(&u_raw);
        // Only police finiteness while the trajectory is still in-spec:
        // after a violation (with stop_on_violation off) systems with
        // superlinear dynamics such as Poly3d legitimately diverge to
        // infinity within a few steps.
        debug_assert!(
            first_violation.is_some()
                || !observed.iter().all(|v| v.is_finite())
                || u.iter().all(|v| v.is_finite()),
            "controller produced a non-finite control at step {t} from a finite observation"
        );
        let mut omega = disturbance.sample(&mut rng);
        omega.truncate(sys.disturbance_dim());
        if omega.len() < sys.disturbance_dim() {
            omega.resize(sys.disturbance_dim(), 0.0);
        }
        s = sys.step(&s, &u, &omega);
        controls.push(u);
        states.push(s.clone());
        if first_violation.is_none() && !sys.is_safe(&s) {
            first_violation = Some(t + 1);
            if config.stop_on_violation {
                break;
            }
        }
        debug_assert!(
            first_violation.is_some() || s.iter().all(|v| v.is_finite()),
            "dynamics produced a non-finite state at step {} before any safety violation",
            t + 1
        );
    }
    Trajectory {
        states,
        controls,
        first_violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::{CartPole, VanDerPol};

    fn zero_perturbation(_t: usize, s: &[f64]) -> Vec<f64> {
        vec![0.0; s.len()]
    }

    #[test]
    fn zero_controller_on_vdp_from_origin_stays_safe() {
        let sys = VanDerPol::new();
        let mut c = |_: &[f64]| vec![0.0];
        let mut p = zero_perturbation;
        let traj = rollout(&sys, &mut c, &mut p, &[0.0, 0.0], &RolloutConfig::default());
        assert!(traj.is_safe());
        assert_eq!(traj.len(), 100);
        assert_eq!(traj.energy(), 0.0);
    }

    #[test]
    fn damping_controller_stabilizes_vdp() {
        let sys = VanDerPol::new();
        let mut c = |s: &[f64]| vec![-3.0 * s[0] - 3.0 * s[1]];
        let mut p = zero_perturbation;
        let traj = rollout(&sys, &mut c, &mut p, &[1.5, 1.5], &RolloutConfig::default());
        assert!(traj.is_safe());
        let last = traj.last_state();
        assert!(cocktail_math::vector::norm_2(last) < 0.5, "final {last:?}");
    }

    #[test]
    fn uncontrolled_cartpole_violates_and_stops_early() {
        let sys = CartPole::new();
        let mut c = |_: &[f64]| vec![0.0];
        let mut p = zero_perturbation;
        let traj = rollout(
            &sys,
            &mut c,
            &mut p,
            &[0.0, 0.0, 0.15, 0.0],
            &RolloutConfig::default(),
        );
        assert!(!traj.is_safe());
        let v = traj.first_violation.expect("must violate");
        assert!(v < 200);
        assert_eq!(traj.len(), v, "stop_on_violation trims the rollout");
    }

    #[test]
    fn unsafe_initial_state_flagged_at_zero() {
        let sys = VanDerPol::new();
        let mut c = |_: &[f64]| vec![0.0];
        let mut p = zero_perturbation;
        let traj = rollout(&sys, &mut c, &mut p, &[3.0, 0.0], &RolloutConfig::default());
        assert_eq!(traj.first_violation, Some(0));
        assert!(traj.is_empty());
    }

    #[test]
    fn rollout_is_seed_deterministic() {
        let sys = VanDerPol::new();
        let run = |seed| {
            let mut c = |s: &[f64]| vec![-s[0] - s[1]];
            let mut p = zero_perturbation;
            rollout(
                &sys,
                &mut c,
                &mut p,
                &[1.0, -1.0],
                &RolloutConfig {
                    seed,
                    ..Default::default()
                },
            )
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).states, run(6).states);
    }

    #[test]
    fn perturbation_reaches_controller_not_plant() {
        let sys = VanDerPol::new();
        // controller echoes what it sees into the control; with a constant
        // +1 perturbation on s₁ the observed state differs from the true one.
        let mut seen = Vec::new();
        let mut c = |s: &[f64]| {
            seen.push(s.to_vec());
            vec![0.0]
        };
        let mut p = |_t: usize, s: &[f64]| {
            let mut d = vec![0.0; s.len()];
            d[0] = 1.0;
            d
        };
        let traj = rollout(
            &sys,
            &mut c,
            &mut p,
            &[0.0, 0.0],
            &RolloutConfig {
                horizon: Some(1),
                disturbance: Some(DisturbanceModel::None),
                ..Default::default()
            },
        );
        assert_eq!(seen[0][0], 1.0, "controller sees perturbed state");
        assert_eq!(traj.states[0][0], 0.0, "true state unperturbed");
    }

    #[test]
    fn control_is_clipped_to_bounds() {
        let sys = VanDerPol::new();
        let mut c = |_: &[f64]| vec![1000.0];
        let mut p = zero_perturbation;
        let traj = rollout(
            &sys,
            &mut c,
            &mut p,
            &[0.0, 0.0],
            &RolloutConfig {
                horizon: Some(3),
                ..Default::default()
            },
        );
        assert!(traj.controls.iter().all(|u| u[0] == 20.0));
    }

    #[test]
    fn energy_accumulates_l1_norm() {
        let sys = VanDerPol::new();
        let mut c = |_: &[f64]| vec![-2.0];
        let mut p = zero_perturbation;
        let traj = rollout(
            &sys,
            &mut c,
            &mut p,
            &[0.0, 0.0],
            &RolloutConfig {
                horizon: Some(5),
                ..Default::default()
            },
        );
        assert_eq!(traj.energy(), 10.0);
    }
}
