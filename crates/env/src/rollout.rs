//! Closed-loop trajectory simulation.
//!
//! The rollout driver implements the paper's Eq. 2: the controller observes
//! the *perturbed* state `s(t) + δ(t)` (attack or measurement noise), its
//! output is clipped into `U` (Eq. 4), the plant evolves from the true
//! state under disturbance `ω(t)`, and the trajectory is safe iff every
//! visited state stays inside the safe region `X`.

use crate::disturbance::DisturbanceModel;
use crate::dynamics::Dynamics;
use cocktail_math::vector;
use cocktail_obs::{Event, Telemetry};
use serde::{Deserialize, Serialize};

/// A simulated closed-loop trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Visited true states, `controls.len() + 1` entries.
    pub states: Vec<Vec<f64>>,
    /// Applied (clipped) control inputs.
    pub controls: Vec<Vec<f64>>,
    /// Step index of the first safety violation, if any.
    pub first_violation: Option<usize>,
}

impl Trajectory {
    /// Whether every visited state was safe.
    pub fn is_safe(&self) -> bool {
        self.first_violation.is_none()
    }

    /// Total control energy `Σ_t ‖u(t)‖₁` (the paper's Eq. 3 summand).
    pub fn energy(&self) -> f64 {
        self.controls.iter().map(|u| vector::norm_1(u)).sum()
    }

    /// Number of executed control steps.
    pub fn len(&self) -> usize {
        self.controls.len()
    }

    /// Whether no step was executed.
    pub fn is_empty(&self) -> bool {
        self.controls.is_empty()
    }

    /// The final state.
    #[allow(
        clippy::expect_used,
        reason = "a trajectory always holds at least the initial state"
    )]
    pub fn last_state(&self) -> &[f64] {
        self.states
            .last()
            .expect("trajectory always holds the initial state")
    }
}

/// Structured failure of a closed-loop simulation. Always-on: unlike a
/// `debug_assert!`, these checks also protect release builds, where fault
/// injection and buggy controllers are most likely to run.
///
/// Both variants only fire while the trajectory is still in-spec — after a
/// safety violation (with `stop_on_violation` off) superlinear systems such
/// as Poly3d legitimately diverge to infinity, which is not an error.
#[derive(Debug, Clone, PartialEq)]
pub enum RolloutError {
    /// The controller returned a non-finite control from a finite
    /// observation before any safety violation.
    NonFiniteControl {
        /// Step at which the control was produced.
        step: usize,
        /// The offending (clipped) control vector.
        control: Vec<f64>,
    },
    /// The dynamics produced a non-finite state before any safety
    /// violation.
    NonFiniteState {
        /// Step at which the state was produced.
        step: usize,
        /// The offending state vector.
        state: Vec<f64>,
    },
}

impl std::fmt::Display for RolloutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RolloutError::NonFiniteControl { step, control } => write!(
                f,
                "controller produced a non-finite control {control:?} at step {step} \
                 from a finite observation"
            ),
            RolloutError::NonFiniteState { step, state } => write!(
                f,
                "dynamics produced a non-finite state {state:?} at step {step} \
                 before any safety violation"
            ),
        }
    }
}

impl std::error::Error for RolloutError {}

/// Configuration for [`rollout`].
#[derive(Debug, Clone)]
pub struct RolloutConfig {
    /// Number of control steps; `None` uses the system's own horizon.
    pub horizon: Option<usize>,
    /// External-disturbance model; `None` uses the system's declared
    /// uniform amplitude.
    pub disturbance: Option<DisturbanceModel>,
    /// RNG seed for disturbance sampling.
    pub seed: u64,
    /// Stop simulating at the first safety violation (default `true`;
    /// the safe-control-rate metric only needs the first violation).
    pub stop_on_violation: bool,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        Self {
            horizon: None,
            disturbance: None,
            seed: 0,
            stop_on_violation: true,
        }
    }
}

/// Simulates the closed loop from `s0`.
///
/// `controller` maps the *observed* state to a control vector;
/// `perturbation` produces `δ(t)` from the step index and the true state
/// (return a zero vector for the nominal setting). The rollout clips the
/// control into `U` before applying it.
///
/// # Panics
///
/// Panics if `s0.len() != sys.state_dim()`, the controller returns a
/// vector of the wrong dimension, or the closed loop produces non-finite
/// numbers before the first safety violation (see [`try_rollout`] for the
/// fallible variant used by fault-tolerant callers).
///
/// # Examples
///
/// ```
/// use cocktail_env::{rollout, Dynamics, RolloutConfig, systems::VanDerPol};
///
/// let sys = VanDerPol::new();
/// // proportional damping controller
/// let mut controller = |s: &[f64]| vec![-2.0 * s[0] - 2.0 * s[1]];
/// let mut no_attack = |_t: usize, s: &[f64]| vec![0.0; s.len()];
/// let traj = rollout(&sys, &mut controller, &mut no_attack, &[0.5, 0.5],
///                    &RolloutConfig::default());
/// assert!(traj.is_safe());
/// ```
pub fn rollout(
    sys: &dyn Dynamics,
    controller: &mut dyn FnMut(&[f64]) -> Vec<f64>,
    perturbation: &mut dyn FnMut(usize, &[f64]) -> Vec<f64>,
    s0: &[f64],
    config: &RolloutConfig,
) -> Trajectory {
    #[allow(
        clippy::expect_used,
        reason = "the panicking wrapper is the documented convenience API; \
                  fallible callers use try_rollout"
    )]
    try_rollout(sys, controller, perturbation, s0, config)
        .expect("rollout hit a non-finite control or state")
}

/// [`rollout`] with structured error reporting instead of a panic: a
/// non-finite control (from a finite observation) or a non-finite state
/// *before* the first safety violation aborts the simulation with a
/// [`RolloutError`]. Post-violation divergence is still tolerated, since
/// superlinear plants legitimately blow up once outside the safe region.
///
/// # Errors
///
/// Returns [`RolloutError`] when the closed loop produces non-finite
/// numbers while the trajectory is still in-spec.
///
/// # Panics
///
/// Panics if `s0.len() != sys.state_dim()` or the controller returns a
/// vector of the wrong dimension (those are caller bugs, not runtime
/// faults).
pub fn try_rollout(
    sys: &dyn Dynamics,
    controller: &mut dyn FnMut(&[f64]) -> Vec<f64>,
    perturbation: &mut dyn FnMut(usize, &[f64]) -> Vec<f64>,
    s0: &[f64],
    config: &RolloutConfig,
) -> Result<Trajectory, RolloutError> {
    assert_eq!(
        s0.len(),
        sys.state_dim(),
        "initial state dimension mismatch"
    );
    let horizon = config.horizon.unwrap_or_else(|| sys.horizon());
    let disturbance = config
        .disturbance
        .clone()
        .unwrap_or_else(|| DisturbanceModel::from_amplitude(sys.disturbance_amplitude()));
    let mut rng = cocktail_math::rng::seeded(config.seed);

    let mut states = Vec::with_capacity(horizon + 1);
    let mut controls = Vec::with_capacity(horizon);
    let mut first_violation = if sys.is_safe(s0) { None } else { Some(0) };
    states.push(s0.to_vec());

    if first_violation.is_some() && config.stop_on_violation {
        return Ok(Trajectory {
            states,
            controls,
            first_violation,
        });
    }

    let mut s = s0.to_vec();
    for t in 0..horizon {
        let delta = perturbation(t, &s);
        assert_eq!(delta.len(), s.len(), "perturbation dimension mismatch");
        let observed = vector::add(&s, &delta);
        let u_raw = controller(&observed);
        assert_eq!(
            u_raw.len(),
            sys.control_dim(),
            "controller output dimension mismatch"
        );
        let u = sys.clip_control(&u_raw);
        // Only police finiteness while the trajectory is still in-spec:
        // after a violation (with stop_on_violation off) systems with
        // superlinear dynamics such as Poly3d legitimately diverge to
        // infinity within a few steps.
        if first_violation.is_none()
            && observed.iter().all(|v| v.is_finite())
            && !u.iter().all(|v| v.is_finite())
        {
            return Err(RolloutError::NonFiniteControl {
                step: t,
                control: u,
            });
        }
        let mut omega = disturbance.sample(&mut rng);
        omega.truncate(sys.disturbance_dim());
        if omega.len() < sys.disturbance_dim() {
            omega.resize(sys.disturbance_dim(), 0.0);
        }
        s = sys.step(&s, &u, &omega);
        controls.push(u);
        states.push(s.clone());
        if first_violation.is_none() && !sys.is_safe(&s) {
            first_violation = Some(t + 1);
            if config.stop_on_violation {
                break;
            }
        }
        if first_violation.is_none() && !s.iter().all(|v| v.is_finite()) {
            return Err(RolloutError::NonFiniteState {
                step: t + 1,
                state: s,
            });
        }
    }
    Ok(Trajectory {
        states,
        controls,
        first_violation,
    })
}

/// [`try_rollout`] with telemetry: reports the episode's outcome on `tel`
/// as counters (`rollout.completed`, `rollout.unsafe`,
/// `rollout.nan_detected`) plus a `rollout.abort` point carrying the step
/// and reason when the closed loop produced non-finite numbers.
///
/// Telemetry is emitted once per episode (never per step), so the
/// instrumented path costs one `enabled()` check on top of the plain
/// rollout. Do **not** call this from inside a parallel worker closure —
/// collect outcomes and emit after the join (crate `cocktail_obs`
/// documents the determinism contract).
///
/// # Errors
///
/// Exactly as [`try_rollout`].
pub fn try_rollout_observed(
    sys: &dyn Dynamics,
    controller: &mut dyn FnMut(&[f64]) -> Vec<f64>,
    perturbation: &mut dyn FnMut(usize, &[f64]) -> Vec<f64>,
    s0: &[f64],
    config: &RolloutConfig,
    tel: &dyn Telemetry,
) -> Result<Trajectory, RolloutError> {
    let result = try_rollout(sys, controller, perturbation, s0, config);
    if tel.enabled() {
        match &result {
            Ok(traj) => {
                tel.counter("rollout.completed", 1);
                if !traj.is_safe() {
                    tel.counter("rollout.unsafe", 1);
                }
            }
            Err(err) => {
                tel.counter("rollout.nan_detected", 1);
                let (step, reason) = match err {
                    RolloutError::NonFiniteControl { step, .. } => (*step, "non-finite control"),
                    RolloutError::NonFiniteState { step, .. } => (*step, "non-finite state"),
                };
                tel.record(
                    Event::point("rollout.abort")
                        .with("step", step)
                        .with("reason", reason),
                );
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::{CartPole, VanDerPol};

    fn zero_perturbation(_t: usize, s: &[f64]) -> Vec<f64> {
        vec![0.0; s.len()]
    }

    #[test]
    fn zero_controller_on_vdp_from_origin_stays_safe() {
        let sys = VanDerPol::new();
        let mut c = |_: &[f64]| vec![0.0];
        let mut p = zero_perturbation;
        let traj = rollout(&sys, &mut c, &mut p, &[0.0, 0.0], &RolloutConfig::default());
        assert!(traj.is_safe());
        assert_eq!(traj.len(), 100);
        assert_eq!(traj.energy(), 0.0);
    }

    #[test]
    fn damping_controller_stabilizes_vdp() {
        let sys = VanDerPol::new();
        let mut c = |s: &[f64]| vec![-3.0 * s[0] - 3.0 * s[1]];
        let mut p = zero_perturbation;
        let traj = rollout(&sys, &mut c, &mut p, &[1.5, 1.5], &RolloutConfig::default());
        assert!(traj.is_safe());
        let last = traj.last_state();
        assert!(cocktail_math::vector::norm_2(last) < 0.5, "final {last:?}");
    }

    #[test]
    fn uncontrolled_cartpole_violates_and_stops_early() {
        let sys = CartPole::new();
        let mut c = |_: &[f64]| vec![0.0];
        let mut p = zero_perturbation;
        let traj = rollout(
            &sys,
            &mut c,
            &mut p,
            &[0.0, 0.0, 0.15, 0.0],
            &RolloutConfig::default(),
        );
        assert!(!traj.is_safe());
        let v = traj.first_violation.expect("must violate");
        assert!(v < 200);
        assert_eq!(traj.len(), v, "stop_on_violation trims the rollout");
    }

    #[test]
    fn unsafe_initial_state_flagged_at_zero() {
        let sys = VanDerPol::new();
        let mut c = |_: &[f64]| vec![0.0];
        let mut p = zero_perturbation;
        let traj = rollout(&sys, &mut c, &mut p, &[3.0, 0.0], &RolloutConfig::default());
        assert_eq!(traj.first_violation, Some(0));
        assert!(traj.is_empty());
    }

    #[test]
    fn rollout_is_seed_deterministic() {
        let sys = VanDerPol::new();
        let run = |seed| {
            let mut c = |s: &[f64]| vec![-s[0] - s[1]];
            let mut p = zero_perturbation;
            rollout(
                &sys,
                &mut c,
                &mut p,
                &[1.0, -1.0],
                &RolloutConfig {
                    seed,
                    ..Default::default()
                },
            )
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).states, run(6).states);
    }

    #[test]
    fn perturbation_reaches_controller_not_plant() {
        let sys = VanDerPol::new();
        // controller echoes what it sees into the control; with a constant
        // +1 perturbation on s₁ the observed state differs from the true one.
        let mut seen = Vec::new();
        let mut c = |s: &[f64]| {
            seen.push(s.to_vec());
            vec![0.0]
        };
        let mut p = |_t: usize, s: &[f64]| {
            let mut d = vec![0.0; s.len()];
            d[0] = 1.0;
            d
        };
        let traj = rollout(
            &sys,
            &mut c,
            &mut p,
            &[0.0, 0.0],
            &RolloutConfig {
                horizon: Some(1),
                disturbance: Some(DisturbanceModel::None),
                ..Default::default()
            },
        );
        assert_eq!(seen[0][0], 1.0, "controller sees perturbed state");
        assert_eq!(traj.states[0][0], 0.0, "true state unperturbed");
    }

    #[test]
    fn control_is_clipped_to_bounds() {
        let sys = VanDerPol::new();
        let mut c = |_: &[f64]| vec![1000.0];
        let mut p = zero_perturbation;
        let traj = rollout(
            &sys,
            &mut c,
            &mut p,
            &[0.0, 0.0],
            &RolloutConfig {
                horizon: Some(3),
                ..Default::default()
            },
        );
        assert!(traj.controls.iter().all(|u| u[0] == 20.0));
    }

    #[test]
    fn nan_control_from_finite_observation_is_a_structured_error() {
        let sys = VanDerPol::new();
        let mut c = |_: &[f64]| vec![f64::NAN];
        let mut p = zero_perturbation;
        let err = try_rollout(&sys, &mut c, &mut p, &[0.5, 0.5], &RolloutConfig::default())
            .expect_err("NaN control must be rejected");
        match err {
            RolloutError::NonFiniteControl { step, control } => {
                assert_eq!(step, 0);
                assert!(control[0].is_nan());
            }
            other => panic!("wrong error variant: {other:?}"),
        }
    }

    #[test]
    fn infinite_control_is_clipped_not_an_error() {
        // +∞ clips into U_sup, so the loop stays finite and healthy
        let sys = VanDerPol::new();
        let mut c = |_: &[f64]| vec![f64::INFINITY];
        let mut p = zero_perturbation;
        let traj = try_rollout(
            &sys,
            &mut c,
            &mut p,
            &[0.0, 0.0],
            &RolloutConfig {
                horizon: Some(3),
                ..Default::default()
            },
        )
        .expect("clipped control is finite");
        assert!(traj.controls.iter().all(|u| u[0] == 20.0));
    }

    #[test]
    fn nan_control_from_nan_observation_is_tolerated() {
        // a corrupted sensor (non-finite observation) excuses the
        // controller; the NaN then surfaces as a state error or violation
        let sys = VanDerPol::new();
        let mut c = |s: &[f64]| vec![s[0]];
        let mut p = |_t: usize, s: &[f64]| vec![f64::NAN; s.len()];
        let result = try_rollout(&sys, &mut c, &mut p, &[0.5, 0.5], &RolloutConfig::default());
        // the NaN control drives the state to NaN, which is_safe() rejects,
        // so the run ends as a violation rather than an error
        let traj = result.expect("NaN from NaN observation is not a controller bug");
        assert!(!traj.is_safe());
    }

    #[test]
    fn rollout_error_displays_step() {
        let e = RolloutError::NonFiniteState {
            step: 7,
            state: vec![f64::NAN],
        };
        assert!(e.to_string().contains("step 7"));
        let e = RolloutError::NonFiniteControl {
            step: 3,
            control: vec![f64::NAN],
        };
        assert!(e.to_string().contains("step 3"));
    }

    #[test]
    fn observed_rollout_reports_outcome_counters() {
        let sink = cocktail_obs::InMemorySink::new();
        let sys = VanDerPol::new();
        let mut p = zero_perturbation;

        let mut healthy = |s: &[f64]| vec![-2.0 * s[0] - 2.0 * s[1]];
        try_rollout_observed(
            &sys,
            &mut healthy,
            &mut p,
            &[0.5, 0.5],
            &RolloutConfig::default(),
            &sink,
        )
        .expect("healthy loop");
        assert_eq!(sink.counter_total("rollout.completed"), 1);
        assert_eq!(sink.counter_total("rollout.nan_detected"), 0);

        let mut nan = |_: &[f64]| vec![f64::NAN];
        try_rollout_observed(
            &sys,
            &mut nan,
            &mut p,
            &[0.5, 0.5],
            &RolloutConfig::default(),
            &sink,
        )
        .expect_err("NaN control");
        assert_eq!(sink.counter_total("rollout.nan_detected"), 1);
        assert!(sink.events().iter().any(|e| e.name == "rollout.abort"
            && e.field("reason") == Some(&"non-finite control".into())));
    }

    #[test]
    fn energy_accumulates_l1_norm() {
        let sys = VanDerPol::new();
        let mut c = |_: &[f64]| vec![-2.0];
        let mut p = zero_perturbation;
        let traj = rollout(
            &sys,
            &mut c,
            &mut p,
            &[0.0, 0.0],
            &RolloutConfig {
                horizon: Some(5),
                ..Default::default()
            },
        );
        assert_eq!(traj.energy(), 10.0);
    }
}
