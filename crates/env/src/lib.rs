//! Discrete-time nonlinear plant models and trajectory rollouts.
//!
//! This crate is the simulation substrate of the Cocktail reproduction. It
//! defines the paper's system model (Section II)
//!
//! ```text
//! s(t+1) = f(s(t), u(t), ω(t), δ(t))
//! ```
//!
//! through the [`Dynamics`] trait and implements the three benchmark plants
//! of Section IV with the paper's exact parameters:
//!
//! * [`systems::VanDerPol`] — the oscillator, `τ = 0.05`, `X = X₀ = [-2,2]²`,
//!   `u ∈ [-20, 20]`, `ω ~ U[-0.05, 0.05]`, `T = 100`;
//! * [`systems::Poly3d`] — example 15 of Sassi et al. \[25\], Euler-discretized
//!   at `τ = 0.05`, `X = X₀ = [-0.5, 0.5]³`, `u ∈ [-10, 10]`, `T = 100`;
//! * [`systems::CartPole`] — the classic cartpole with
//!   `m_c = 1, m_p = 0.1, l = 1, τ = 0.02`, `T = 200`,
//!   `X = {|s₁| ≤ 2.4, |s₃| ≤ 0.209}`, `X₀ = [-0.2, 0.2]⁴`.
//!
//! State perturbations `δ(t)` (attacks / measurement noise) are applied to
//! the state *observed by the controller*, matching the paper's threat
//! model; the plant itself evolves from the true state. The [`mod@rollout`]
//! module provides the closed-loop simulator that the safe-control-rate and
//! energy metrics are computed from, and every system also exposes a sound
//! interval step ([`Dynamics::step_interval`]) for the verification crate.
//!
//! # Examples
//!
//! ```
//! use cocktail_env::{Dynamics, systems::VanDerPol};
//!
//! let sys = VanDerPol::new();
//! let next = sys.step(&[1.0, 0.0], &[0.0], &[0.0]);
//! assert_eq!(next.len(), 2);
//! assert!(sys.is_safe(&next));
//! ```

pub mod disturbance;
pub mod dynamics;
pub mod fault;
pub mod rollout;
pub mod systems;

pub use disturbance::DisturbanceModel;
pub use dynamics::Dynamics;
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultWindow};
pub use rollout::{
    rollout, try_rollout, try_rollout_observed, RolloutConfig, RolloutError, Trajectory,
};
