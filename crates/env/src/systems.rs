//! The three benchmark systems of the paper's Section IV.

use crate::dynamics::Dynamics;
use cocktail_math::{BoxRegion, Interval};
use serde::{Deserialize, Serialize};

/// Van der Pol oscillator, discretized at `τ = 0.05`.
///
/// ```text
/// s₁(t+1) = s₁ + τ s₂
/// s₂(t+1) = s₂ + τ [(1 − s₁²) s₂ − s₁ + u] + ω
/// ```
///
/// `X = X₀ = [-2, 2]²`, `u ∈ [-20, 20]`, `ω ~ U[-0.05, 0.05]`, `T = 100`.
///
/// # Examples
///
/// ```
/// use cocktail_env::{Dynamics, systems::VanDerPol};
///
/// let sys = VanDerPol::new();
/// let s = sys.step(&[0.5, -0.5], &[1.0], &[0.0]);
/// assert!((s[0] - (0.5 + 0.05 * -0.5)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VanDerPol {
    tau: f64,
}

impl VanDerPol {
    /// Creates the oscillator with the paper's `τ = 0.05`.
    pub fn new() -> Self {
        Self { tau: 0.05 }
    }

    /// The sampling period.
    pub fn tau(&self) -> f64 {
        self.tau
    }
}

impl Default for VanDerPol {
    fn default() -> Self {
        Self::new()
    }
}

impl Dynamics for VanDerPol {
    fn name(&self) -> &str {
        "oscillator"
    }

    fn state_dim(&self) -> usize {
        2
    }

    fn control_dim(&self) -> usize {
        1
    }

    fn disturbance_dim(&self) -> usize {
        1
    }

    fn step(&self, s: &[f64], u: &[f64], omega: &[f64]) -> Vec<f64> {
        assert_eq!(s.len(), 2, "state dimension mismatch");
        assert_eq!(u.len(), 1, "control dimension mismatch");
        assert_eq!(omega.len(), 1, "disturbance dimension mismatch");
        let (s1, s2) = (s[0], s[1]);
        vec![
            s1 + self.tau * s2,
            s2 + self.tau * ((1.0 - s1 * s1) * s2 - s1 + u[0]) + omega[0],
        ]
    }

    fn step_interval(&self, s: &[Interval], u: &[Interval], omega: &[Interval]) -> Vec<Interval> {
        assert_eq!(s.len(), 2, "state dimension mismatch");
        assert_eq!(u.len(), 1, "control dimension mismatch");
        assert_eq!(omega.len(), 1, "disturbance dimension mismatch");
        let (s1, s2) = (s[0], s[1]);
        let one = Interval::point(1.0);
        let next1 = s1 + s2 * self.tau;
        let accel = (one - s1.square()) * s2 - s1 + u[0];
        let next2 = s2 + accel * self.tau + omega[0];
        vec![next1, next2]
    }

    fn is_safe(&self, s: &[f64]) -> bool {
        assert_eq!(s.len(), 2, "state dimension mismatch");
        s.iter().all(|v| v.abs() <= 2.0)
    }

    fn initial_set(&self) -> BoxRegion {
        BoxRegion::cube(2, -2.0, 2.0)
    }

    fn verification_domain(&self) -> BoxRegion {
        BoxRegion::cube(2, -2.0, 2.0)
    }

    fn control_bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![-20.0], vec![20.0])
    }

    fn disturbance_amplitude(&self) -> Vec<f64> {
        vec![0.05]
    }

    fn horizon(&self) -> usize {
        100
    }
}

/// The 3D polynomial system of Sassi et al. \[25\] (example 15):
/// `ẋ = y + 0.5 z², ẏ = z, ż = u`, Euler-discretized at `τ = 0.05`.
///
/// `X = X₀ = [-0.5, 0.5]³`, `u ∈ [-10, 10]`, `T = 100`, no disturbance.
///
/// # Examples
///
/// ```
/// use cocktail_env::{Dynamics, systems::Poly3d};
///
/// let sys = Poly3d::new();
/// let s = sys.step(&[0.0, 0.2, 0.4], &[1.0], &[]);
/// assert!((s[0] - 0.05 * (0.2 + 0.5 * 0.16)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poly3d {
    tau: f64,
}

impl Poly3d {
    /// Creates the system with the paper's `τ = 0.05`.
    pub fn new() -> Self {
        Self { tau: 0.05 }
    }

    /// The sampling period.
    pub fn tau(&self) -> f64 {
        self.tau
    }
}

impl Default for Poly3d {
    fn default() -> Self {
        Self::new()
    }
}

impl Dynamics for Poly3d {
    fn name(&self) -> &str {
        "3d-system"
    }

    fn state_dim(&self) -> usize {
        3
    }

    fn control_dim(&self) -> usize {
        1
    }

    fn disturbance_dim(&self) -> usize {
        0
    }

    fn step(&self, s: &[f64], u: &[f64], omega: &[f64]) -> Vec<f64> {
        assert_eq!(s.len(), 3, "state dimension mismatch");
        assert_eq!(u.len(), 1, "control dimension mismatch");
        assert!(omega.is_empty(), "3d system has no disturbance");
        let (x, y, z) = (s[0], s[1], s[2]);
        vec![
            x + self.tau * (y + 0.5 * z * z),
            y + self.tau * z,
            z + self.tau * u[0],
        ]
    }

    fn step_interval(&self, s: &[Interval], u: &[Interval], omega: &[Interval]) -> Vec<Interval> {
        assert_eq!(s.len(), 3, "state dimension mismatch");
        assert_eq!(u.len(), 1, "control dimension mismatch");
        assert!(omega.is_empty(), "3d system has no disturbance");
        let (x, y, z) = (s[0], s[1], s[2]);
        vec![
            x + (y + z.square() * 0.5) * self.tau,
            y + z * self.tau,
            z + u[0] * self.tau,
        ]
    }

    fn is_safe(&self, s: &[f64]) -> bool {
        assert_eq!(s.len(), 3, "state dimension mismatch");
        s.iter().all(|v| v.abs() <= 0.5)
    }

    fn initial_set(&self) -> BoxRegion {
        BoxRegion::cube(3, -0.5, 0.5)
    }

    fn verification_domain(&self) -> BoxRegion {
        BoxRegion::cube(3, -0.5, 0.5)
    }

    fn control_bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![-10.0], vec![10.0])
    }

    fn disturbance_amplitude(&self) -> Vec<f64> {
        Vec::new()
    }

    fn horizon(&self) -> usize {
        100
    }
}

/// The cartpole, Euler-discretized at `τ = 0.02` with the paper's
/// parameters (`m_c = 1`, `m_p = 0.1`, `m_t = 1.1`, `g = 9.8`, `l = 1`).
///
/// State `(s₁, s₂, s₃, s₄)` = (cart position, cart velocity, pole angle,
/// pole angular velocity); safe region `|s₁| ≤ 2.4 ∧ |s₃| ≤ 0.209`,
/// `X₀ = [-0.2, 0.2]⁴`, `T = 200`, no disturbance. The control bound is
/// `u ∈ [-10, 10]` (the paper does not state it; ±10 N is the standard
/// continuous-cartpole choice and comfortably covers the LQR stabilizer).
///
/// # Examples
///
/// ```
/// use cocktail_env::{Dynamics, systems::CartPole};
///
/// let sys = CartPole::new();
/// assert!(sys.is_safe(&[0.0, 5.0, 0.1, -3.0]));
/// assert!(!sys.is_safe(&[0.0, 0.0, 0.3, 0.0]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CartPole {
    tau: f64,
    m_cart: f64,
    m_pole: f64,
    gravity: f64,
    length: f64,
}

impl CartPole {
    /// Creates the cartpole with the paper's parameters.
    pub fn new() -> Self {
        Self {
            tau: 0.02,
            m_cart: 1.0,
            m_pole: 0.1,
            gravity: 9.8,
            length: 1.0,
        }
    }

    /// The sampling period.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    fn m_total(&self) -> f64 {
        self.m_cart + self.m_pole
    }

    /// The accelerations `(s_acc, θ_acc)` for a given state and force —
    /// exposed so tests can cross-check the update equations.
    pub fn accelerations(&self, s: &[f64], u: f64) -> (f64, f64) {
        let (s3, s4) = (s[2], s[3]);
        let m_t = self.m_total();
        let psi = (u + self.m_pole * self.length * s4 * s4 * s3.sin()) / m_t;
        let theta_acc = (self.gravity * s3.sin() - s3.cos() * psi)
            / (self.length * (4.0 / 3.0 - self.m_pole * s3.cos() * s3.cos() / m_t));
        let s_acc = psi - self.m_pole * self.length * s3.cos() * theta_acc / m_t;
        (s_acc, theta_acc)
    }
}

impl Default for CartPole {
    fn default() -> Self {
        Self::new()
    }
}

impl Dynamics for CartPole {
    fn name(&self) -> &str {
        "cartpole"
    }

    fn state_dim(&self) -> usize {
        4
    }

    fn control_dim(&self) -> usize {
        1
    }

    fn disturbance_dim(&self) -> usize {
        0
    }

    fn step(&self, s: &[f64], u: &[f64], omega: &[f64]) -> Vec<f64> {
        assert_eq!(s.len(), 4, "state dimension mismatch");
        assert_eq!(u.len(), 1, "control dimension mismatch");
        assert!(omega.is_empty(), "cartpole has no disturbance");
        let (s_acc, theta_acc) = self.accelerations(s, u[0]);
        vec![
            s[0] + self.tau * s[1],
            s[1] + self.tau * s_acc,
            s[2] + self.tau * s[3],
            s[3] + self.tau * theta_acc,
        ]
    }

    fn step_interval(&self, s: &[Interval], u: &[Interval], omega: &[Interval]) -> Vec<Interval> {
        assert_eq!(s.len(), 4, "state dimension mismatch");
        assert_eq!(u.len(), 1, "control dimension mismatch");
        assert!(omega.is_empty(), "cartpole has no disturbance");
        let m_t = Interval::point(self.m_total());
        let ml = Interval::point(self.m_pole * self.length);
        let g = Interval::point(self.gravity);
        let (s3, s4) = (s[2], s[3]);
        let sin3 = s3.sin();
        let cos3 = s3.cos();
        let psi = (u[0] + ml * s4.square() * sin3) / m_t;
        let denom = Interval::point(self.length)
            * (Interval::point(4.0 / 3.0) - cos3.square() * Interval::point(self.m_pole) / m_t);
        let theta_acc = (g * sin3 - cos3 * psi) / denom;
        let s_acc = psi - ml * cos3 * theta_acc / m_t;
        vec![
            s[0] + s[1] * self.tau,
            s[1] + s_acc * self.tau,
            s[2] + s[3] * self.tau,
            s[3] + theta_acc * self.tau,
        ]
    }

    fn is_safe(&self, s: &[f64]) -> bool {
        assert_eq!(s.len(), 4, "state dimension mismatch");
        s[0].abs() <= 2.4 && s[2].abs() <= 0.209
    }

    fn initial_set(&self) -> BoxRegion {
        BoxRegion::cube(4, -0.2, 0.2)
    }

    fn verification_domain(&self) -> BoxRegion {
        // s₂ and s₄ are unconstrained in X; ±3 comfortably covers every
        // velocity observed along safe trajectories of the paper's horizon.
        BoxRegion::new(vec![
            Interval::new(-2.4, 2.4),
            Interval::new(-3.0, 3.0),
            Interval::new(-0.209, 0.209),
            Interval::new(-3.0, 3.0),
        ])
    }

    fn control_bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![-10.0], vec![10.0])
    }

    fn disturbance_amplitude(&self) -> Vec<f64> {
        Vec::new()
    }

    fn horizon(&self) -> usize {
        200
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_math::rng;

    #[test]
    fn vdp_step_matches_hand_computation() {
        let sys = VanDerPol::new();
        let s = [1.0, -0.5];
        let next = sys.step(&s, &[2.0], &[0.01]);
        let expect1 = 1.0 + 0.05 * -0.5;
        let expect2 = -0.5 + 0.05 * ((1.0 - 1.0) * -0.5 - 1.0 + 2.0) + 0.01;
        assert!((next[0] - expect1).abs() < 1e-12);
        assert!((next[1] - expect2).abs() < 1e-12);
    }

    #[test]
    fn vdp_unforced_origin_is_fixed_point() {
        let sys = VanDerPol::new();
        let next = sys.step(&[0.0, 0.0], &[0.0], &[0.0]);
        assert_eq!(next, vec![0.0, 0.0]);
    }

    #[test]
    fn poly3d_step_matches_hand_computation() {
        let sys = Poly3d::new();
        let next = sys.step(&[0.1, 0.2, 0.3], &[-1.0], &[]);
        assert!((next[0] - (0.1 + 0.05 * (0.2 + 0.5 * 0.09))).abs() < 1e-12);
        assert!((next[1] - (0.2 + 0.05 * 0.3)).abs() < 1e-12);
        assert!((next[2] - (0.3 - 0.05)).abs() < 1e-12);
    }

    #[test]
    fn cartpole_accelerations_match_paper_form() {
        let sys = CartPole::new();
        let s = [0.0, 0.0, 0.05, 0.1];
        let u = 1.0;
        let m_t = 1.1;
        let psi = (u + 0.1 * 1.0 * 0.01 * 0.05_f64.sin()) / m_t;
        // paper writes (g sin s3 − cos s3 ψ) m_t / (l (1.333 m_t − m_p cos² s3));
        // the standard Barto form divides by l(4/3 − m_p cos²/m_t) after
        // normalizing by m_t — identical up to the 1.333 truncation.
        let theta_acc = (9.8 * 0.05_f64.sin() - 0.05_f64.cos() * psi)
            / (1.0 * (4.0 / 3.0 - 0.1 * 0.05_f64.cos().powi(2) / m_t));
        let s_acc = psi - 0.1 * 1.0 * 0.05_f64.cos() * theta_acc / m_t;
        let (sa, ta) = sys.accelerations(&s, u);
        assert!((sa - s_acc).abs() < 1e-12);
        assert!((ta - theta_acc).abs() < 1e-12);
    }

    #[test]
    fn cartpole_falls_without_control() {
        let sys = CartPole::new();
        let mut s = vec![0.0, 0.0, 0.05, 0.0];
        for _ in 0..200 {
            s = sys.step(&s, &[0.0], &[]);
        }
        assert!(!sys.is_safe(&s), "uncontrolled pole should fall: {s:?}");
    }

    #[test]
    fn cartpole_gravity_accelerates_fall() {
        let sys = CartPole::new();
        let (_, ta) = sys.accelerations(&[0.0, 0.0, 0.1, 0.0], 0.0);
        assert!(
            ta > 0.0,
            "positive angle should accelerate positively under gravity"
        );
        let (_, ta_neg) = sys.accelerations(&[0.0, 0.0, -0.1, 0.0], 0.0);
        assert!(ta_neg < 0.0);
    }

    #[test]
    fn interval_step_contains_concrete_steps() {
        let systems: Vec<Box<dyn Dynamics>> = vec![
            Box::new(VanDerPol::new()),
            Box::new(Poly3d::new()),
            Box::new(CartPole::new()),
        ];
        let mut r = rng::seeded(11);
        for sys in &systems {
            let region = sys.initial_set();
            let (ulo, uhi) = sys.control_bounds();
            let ubox: Vec<Interval> = ulo
                .iter()
                .zip(&uhi)
                .map(|(&l, &h)| Interval::new(l / 10.0, h / 10.0))
                .collect();
            let wamp = sys.disturbance_amplitude();
            let wbox: Vec<Interval> = wamp.iter().map(|&a| Interval::symmetric(a)).collect();
            let sbox: Vec<Interval> = region.intervals().to_vec();
            let bounds = sys.step_interval(&sbox, &ubox, &wbox);
            for _ in 0..200 {
                let s = rng::uniform_in_box(&mut r, &region);
                let u: Vec<f64> = ubox
                    .iter()
                    .map(|iv| iv.lo() + (iv.hi() - iv.lo()) * 0.37)
                    .collect();
                let w: Vec<f64> = wamp.iter().map(|&a| a * 0.5).collect();
                let next = sys.step(&s, &u, &w);
                for (ni, bi) in next.iter().zip(&bounds) {
                    assert!(
                        bi.inflate(1e-9).contains(*ni),
                        "{}: {ni} escapes {bi}",
                        sys.name()
                    );
                }
            }
        }
    }

    #[test]
    fn safety_boundaries_exact() {
        let vdp = VanDerPol::new();
        assert!(vdp.is_safe(&[2.0, -2.0]));
        assert!(!vdp.is_safe(&[2.0001, 0.0]));
        let cp = CartPole::new();
        assert!(cp.is_safe(&[2.4, 100.0, 0.209, -100.0]));
        assert!(!cp.is_safe(&[2.41, 0.0, 0.0, 0.0]));
        assert!(!cp.is_safe(&[0.0, 0.0, 0.21, 0.0]));
    }
}
