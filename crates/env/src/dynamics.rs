//! The system-model trait.

use cocktail_math::{BoxRegion, Interval};

/// A discrete-time controlled system `s(t+1) = f(s(t), u(t), ω(t))`.
///
/// The trait carries everything the paper's Section II problem statement
/// attaches to a system: the safe region `X`, the initial set `X₀`, the
/// control bound `U`, the disturbance bound `Ω`, and the episode length
/// `T`. State perturbations `δ(t)` are *not* part of the plant — they model
/// attacks or sensor noise on the controller's observation and are injected
/// by the rollout driver.
///
/// Implementations must also provide [`Dynamics::step_interval`], a sound
/// interval extension of `f` used by the reachability analysis: for every
/// concrete `(s, u, ω)` inside the given boxes, the concrete successor must
/// lie inside the returned intervals.
///
/// The trait is object-safe; experiment drivers hold `&dyn Dynamics`.
pub trait Dynamics: Send + Sync {
    /// Human-readable system name ("oscillator", "3d-system", "cartpole").
    fn name(&self) -> &str;

    /// State dimension `|s|`.
    fn state_dim(&self) -> usize;

    /// Control dimension `|u|`.
    fn control_dim(&self) -> usize;

    /// Disturbance dimension `|ω|` (0 when the plant is deterministic).
    fn disturbance_dim(&self) -> usize;

    /// One simulation step from the *true* state.
    ///
    /// # Panics
    ///
    /// Implementations panic if any argument dimension is wrong.
    fn step(&self, s: &[f64], u: &[f64], omega: &[f64]) -> Vec<f64>;

    /// Sound interval extension of [`Self::step`].
    ///
    /// # Panics
    ///
    /// Implementations panic if any argument dimension is wrong.
    fn step_interval(&self, s: &[Interval], u: &[Interval], omega: &[Interval]) -> Vec<Interval>;

    /// Whether `s` lies in the safe region `X`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `s.len() != self.state_dim()`.
    fn is_safe(&self, s: &[f64]) -> bool;

    /// The initial-state set `X₀`.
    fn initial_set(&self) -> BoxRegion;

    /// A finite box over-approximating the safe region, used as the domain
    /// for gridding, sampling and Bernstein approximation. For systems with
    /// unconstrained state dimensions (cartpole velocities) the box is a
    /// generous finite surrogate; [`Self::is_safe`] remains the authority.
    fn verification_domain(&self) -> BoxRegion;

    /// Control bounds `(U_inf, U_sup)` per input dimension.
    fn control_bounds(&self) -> (Vec<f64>, Vec<f64>);

    /// Per-component amplitude of the uniform disturbance `ω`; empty when
    /// `disturbance_dim() == 0`.
    fn disturbance_amplitude(&self) -> Vec<f64>;

    /// Episode / evaluation horizon `T` (Eq. 3).
    fn horizon(&self) -> usize;

    /// Clips a control vector into `U` — the paper's Eq. 4 clip.
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != self.control_dim()`.
    fn clip_control(&self, u: &[f64]) -> Vec<f64> {
        let (lo, hi) = self.control_bounds();
        cocktail_math::vector::clip(u, &lo, &hi)
    }

    /// The disturbance set `Ω` as a box (degenerate `{0}` box when the
    /// plant is deterministic but a disturbance slot is still needed).
    fn disturbance_set(&self) -> BoxRegion {
        let amp = self.disturbance_amplitude();
        if amp.is_empty() {
            BoxRegion::new(vec![Interval::point(0.0)])
        } else {
            BoxRegion::new(amp.iter().map(|&a| Interval::symmetric(a)).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::{CartPole, Poly3d, VanDerPol};

    fn all_systems() -> Vec<Box<dyn Dynamics>> {
        vec![
            Box::new(VanDerPol::new()),
            Box::new(Poly3d::new()),
            Box::new(CartPole::new()),
        ]
    }

    #[test]
    fn trait_is_object_safe_and_consistent() {
        for sys in all_systems() {
            assert!(!sys.name().is_empty());
            assert_eq!(sys.initial_set().dim(), sys.state_dim());
            assert_eq!(sys.verification_domain().dim(), sys.state_dim());
            let (lo, hi) = sys.control_bounds();
            assert_eq!(lo.len(), sys.control_dim());
            assert_eq!(hi.len(), sys.control_dim());
            assert!(lo.iter().zip(&hi).all(|(l, h)| l < h));
            assert_eq!(sys.disturbance_amplitude().len(), sys.disturbance_dim());
            assert!(sys.horizon() > 0);
        }
    }

    #[test]
    fn clip_control_respects_bounds() {
        for sys in all_systems() {
            let huge = vec![1e9; sys.control_dim()];
            let clipped = sys.clip_control(&huge);
            let (_, hi) = sys.control_bounds();
            assert_eq!(clipped, hi);
        }
    }

    #[test]
    fn initial_states_are_safe() {
        for sys in all_systems() {
            let x0 = sys.initial_set();
            assert!(sys.is_safe(&x0.center()));
            for corner in x0.corners() {
                assert!(sys.is_safe(&corner), "{} corner unsafe", sys.name());
            }
        }
    }

    #[test]
    fn step_preserves_dimension() {
        for sys in all_systems() {
            let s = sys.initial_set().center();
            let u = vec![0.0; sys.control_dim()];
            let w = vec![0.0; sys.disturbance_dim()];
            assert_eq!(sys.step(&s, &u, &w).len(), sys.state_dim());
        }
    }
}
