//! Exploration-noise processes for DDPG.
//!
//! Lillicrap et al. used an Ornstein–Uhlenbeck process for temporally
//! correlated exploration; later practice showed plain Gaussian noise
//! works as well. Both are provided and selected by
//! [`crate::ddpg::DdpgConfig::noise_kind`].

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which exploration-noise process DDPG uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum NoiseKind {
    /// Independent `N(0, σ²)` per step.
    #[default]
    Gaussian,
    /// Ornstein–Uhlenbeck: `x ← x + θ(μ − x) + σ ε`, temporally
    /// correlated with mean reversion to `μ = 0`.
    OrnsteinUhlenbeck {
        /// Mean-reversion rate `θ ∈ (0, 1]`.
        theta: f64,
    },
}

/// A stateful exploration-noise generator.
///
/// # Examples
///
/// ```
/// use cocktail_rl::noise::{ExplorationNoise, NoiseKind};
///
/// let mut noise = ExplorationNoise::new(NoiseKind::OrnsteinUhlenbeck { theta: 0.15 }, 2);
/// let mut rng = cocktail_math::rng::seeded(0);
/// let sample = noise.sample(&mut rng, 0.2);
/// assert_eq!(sample.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ExplorationNoise {
    kind: NoiseKind,
    state: Vec<f64>,
}

impl ExplorationNoise {
    /// Creates a generator for `dim`-dimensional actions.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, or for OU if `theta` is outside `(0, 1]`.
    pub fn new(kind: NoiseKind, dim: usize) -> Self {
        assert!(dim > 0, "noise dimension must be positive");
        if let NoiseKind::OrnsteinUhlenbeck { theta } = kind {
            assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
        }
        Self {
            kind,
            state: vec![0.0; dim],
        }
    }

    /// Draws the next noise vector at amplitude `sigma`.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R, sigma: f64) -> Vec<f64> {
        match self.kind {
            NoiseKind::Gaussian => {
                cocktail_math::rng::gaussian_vector(rng, self.state.len(), sigma)
            }
            NoiseKind::OrnsteinUhlenbeck { theta } => {
                let eps = cocktail_math::rng::gaussian_vector(rng, self.state.len(), sigma);
                for (x, e) in self.state.iter_mut().zip(&eps) {
                    *x += theta * (0.0 - *x) + e;
                }
                self.state.clone()
            }
        }
    }

    /// Resets the internal state (call at episode boundaries for OU).
    pub fn reset(&mut self) {
        self.state.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_noise_is_uncorrelated() {
        let mut noise = ExplorationNoise::new(NoiseKind::Gaussian, 1);
        let mut rng = cocktail_math::rng::seeded(1);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| noise.sample(&mut rng, 1.0)[0])
            .collect();
        // lag-1 autocorrelation ≈ 0
        let mean = cocktail_math::stats::mean(&xs);
        let var = cocktail_math::stats::variance(&xs);
        let autocov: f64 = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (xs.len() - 1) as f64;
        assert!(
            (autocov / var).abs() < 0.05,
            "gaussian autocorrelation {}",
            autocov / var
        );
    }

    #[test]
    fn ou_noise_is_positively_correlated() {
        let mut noise = ExplorationNoise::new(NoiseKind::OrnsteinUhlenbeck { theta: 0.1 }, 1);
        let mut rng = cocktail_math::rng::seeded(2);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| noise.sample(&mut rng, 0.3)[0])
            .collect();
        let mean = cocktail_math::stats::mean(&xs);
        let var = cocktail_math::stats::variance(&xs);
        let autocov: f64 = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (xs.len() - 1) as f64;
        let rho = autocov / var;
        // theory: lag-1 autocorrelation of OU(θ) ≈ 1 − θ
        assert!((rho - 0.9).abs() < 0.05, "OU autocorrelation {rho}");
    }

    #[test]
    fn ou_mean_reverts_to_zero() {
        let mut noise = ExplorationNoise::new(NoiseKind::OrnsteinUhlenbeck { theta: 0.2 }, 1);
        let mut rng = cocktail_math::rng::seeded(3);
        let xs: Vec<f64> = (0..50_000)
            .map(|_| noise.sample(&mut rng, 0.2)[0])
            .collect();
        assert!(cocktail_math::stats::mean(&xs).abs() < 0.05);
    }

    #[test]
    fn reset_clears_state() {
        let mut noise = ExplorationNoise::new(NoiseKind::OrnsteinUhlenbeck { theta: 0.5 }, 3);
        let mut rng = cocktail_math::rng::seeded(4);
        noise.sample(&mut rng, 1.0);
        noise.reset();
        assert_eq!(noise.state, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn invalid_theta_panics() {
        ExplorationNoise::new(NoiseKind::OrnsteinUhlenbeck { theta: 1.5 }, 1);
    }
}
