//! Experience replay (Algorithm 1 line 1: "Initialize replay memory D").

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::VecDeque;

/// One environment transition `[s, a, r, s', done]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State the action was taken from.
    pub state: Vec<f64>,
    /// Applied action.
    pub action: Vec<f64>,
    /// Immediate reward.
    pub reward: f64,
    /// Successor state.
    pub next_state: Vec<f64>,
    /// Whether the episode terminated at this step (safety violation or
    /// horizon).
    pub done: bool,
}

/// Fixed-capacity FIFO replay buffer with uniform sampling.
///
/// # Examples
///
/// ```
/// use cocktail_rl::buffer::{ReplayBuffer, Transition};
///
/// let mut buf = ReplayBuffer::new(2);
/// for i in 0..3 {
///     buf.push(Transition {
///         state: vec![i as f64], action: vec![0.0], reward: 0.0,
///         next_state: vec![0.0], done: false,
///     });
/// }
/// assert_eq!(buf.len(), 2); // oldest evicted
/// ```
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    data: VecDeque<Transition>,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            data: VecDeque::with_capacity(capacity.min(1 << 20)),
        }
    }

    /// Appends a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.data.len() == self.capacity {
            self.data.pop_front();
        }
        self.data.push_back(t);
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Uniformly samples `n` transitions with replacement.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty or `n == 0`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<&Transition> {
        assert!(!self.data.is_empty(), "cannot sample from an empty buffer");
        assert!(n > 0, "sample size must be positive");
        (0..n)
            .map(|_| &self.data[rng.gen_range(0..self.data.len())])
            .collect()
    }

    /// Uniformly samples `min(n, len)` distinct transitions.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<&Transition> {
        assert!(!self.data.is_empty(), "cannot sample from an empty buffer");
        let mut idx: Vec<usize> = (0..self.data.len()).collect();
        idx.shuffle(rng);
        idx.truncate(n.min(self.data.len()));
        idx.into_iter().map(|i| &self.data[i]).collect()
    }

    /// Drops all stored transitions.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f64) -> Transition {
        Transition {
            state: vec![v],
            action: vec![0.0],
            reward: v,
            next_state: vec![v],
            done: false,
        }
    }

    #[test]
    fn fifo_eviction() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(t(i as f64));
        }
        assert_eq!(b.len(), 3);
        let mut rng = cocktail_math::rng::seeded(0);
        let sampled = b.sample(&mut rng, 50);
        assert!(
            sampled.iter().all(|tr| tr.reward >= 2.0),
            "old entries evicted"
        );
    }

    #[test]
    fn sample_distinct_has_no_duplicates() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..10 {
            b.push(t(i as f64));
        }
        let mut rng = cocktail_math::rng::seeded(1);
        let sampled = b.sample_distinct(&mut rng, 10);
        let mut rewards: Vec<f64> = sampled.iter().map(|tr| tr.reward).collect();
        rewards.sort_by(f64::total_cmp);
        rewards.dedup();
        assert_eq!(rewards.len(), 10);
    }

    #[test]
    fn sample_distinct_caps_at_len() {
        let mut b = ReplayBuffer::new(10);
        b.push(t(1.0));
        let mut rng = cocktail_math::rng::seeded(2);
        assert_eq!(b.sample_distinct(&mut rng, 100).len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut b = ReplayBuffer::new(4);
        b.push(t(0.0));
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn sampling_empty_panics() {
        let b = ReplayBuffer::new(4);
        let mut rng = cocktail_math::rng::seeded(3);
        b.sample(&mut rng, 1);
    }
}
