//! Proximal policy optimization (Algorithm 1 lines 2–10).
//!
//! The paper's adaptive-mixing objective is the PPO surrogate with a KL
//! penalty:
//!
//! ```text
//! argmax_θ  Ê[ (π_θ(a|s) / π_θold(a|s)) Â − β KL(π_θold, π_θ) ]
//! ```
//!
//! We implement exactly that (plus the standard ratio clip, which only ever
//! tightens the update) with a diagonal-Gaussian policy: an MLP mean head
//! and a learnable, state-independent `log σ` vector.

use crate::gae::gae;
use crate::gaussian;
use crate::mdp::{EpisodeFactory, Mdp};
use cocktail_math::{parallel, stats, Matrix};
use cocktail_nn::{loss, Activation, Adam, BatchCache, GradStore, Mlp, MlpBuilder, Optimizer};
use cocktail_obs::{Event, NullSink, Span, Telemetry};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// PPO hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Outer training iterations (the paper's epochs `N`).
    pub iterations: usize,
    /// Episodes collected per iteration with the current policy.
    pub episodes_per_iteration: usize,
    /// Gradient passes over each collected batch.
    pub update_epochs: usize,
    /// Minibatch size for the policy/value updates.
    pub minibatch_size: usize,
    /// Discount factor γ.
    pub gamma: f64,
    /// GAE λ.
    pub lambda: f64,
    /// PPO ratio clip ε.
    pub clip_ratio: f64,
    /// KL-penalty weight β (the paper's objective).
    pub kl_beta: f64,
    /// Entropy bonus weight.
    pub entropy_bonus: f64,
    /// Mean-network learning rate.
    pub policy_lr: f64,
    /// Value-network learning rate.
    pub value_lr: f64,
    /// Initial `log σ` of the exploration noise.
    pub init_log_std: f64,
    /// Hidden width of the two-hidden-layer Tanh networks.
    pub hidden: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            iterations: 60,
            episodes_per_iteration: 8,
            update_epochs: 6,
            minibatch_size: 64,
            gamma: 0.99,
            lambda: 0.95,
            clip_ratio: 0.2,
            kl_beta: 0.01,
            entropy_bonus: 1e-3,
            policy_lr: 3e-3,
            value_lr: 1e-2,
            init_log_std: -0.5,
            hidden: 32,
            seed: 0,
        }
    }
}

/// A diagonal-Gaussian policy: MLP mean + learnable `log σ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianPolicy {
    mean_net: Mlp,
    log_std: Vec<f64>,
}

impl GaussianPolicy {
    /// Creates a policy with a fresh mean network.
    pub fn new(
        state_dim: usize,
        action_dim: usize,
        hidden: usize,
        init_log_std: f64,
        seed: u64,
    ) -> Self {
        let mean_net = MlpBuilder::new(state_dim)
            .hidden(hidden, Activation::Tanh)
            .hidden(hidden, Activation::Tanh)
            .output(action_dim, Activation::Identity)
            .seed(seed)
            .build();
        Self {
            mean_net,
            log_std: vec![init_log_std; action_dim],
        }
    }

    /// The mean network.
    pub fn mean_net(&self) -> &Mlp {
        &self.mean_net
    }

    /// Current exploration `log σ`.
    pub fn log_std(&self) -> &[f64] {
        &self.log_std
    }

    /// Policy mean `μ(s)`.
    pub fn mean(&self, s: &[f64]) -> Vec<f64> {
        self.mean_net.forward(s)
    }

    /// Stochastic (unclipped) action.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R, s: &[f64]) -> Vec<f64> {
        gaussian::sample(rng, &self.mean(s), &self.log_std)
    }

    /// Deterministic deployment action: `clip(μ(s), ±bound)`.
    pub fn deterministic(&self, s: &[f64], bound: f64) -> Vec<f64> {
        self.mean(s)
            .iter()
            .map(|m| m.clamp(-bound, bound))
            .collect()
    }
}

/// Per-iteration statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Mean undiscounted episode return.
    pub mean_return: f64,
    /// Mean episode length.
    pub mean_length: f64,
    /// Fraction of episodes that ended without a safety violation.
    pub safe_fraction: f64,
}

/// The result of PPO training.
#[derive(Debug, Clone)]
pub struct TrainedPolicy {
    /// The learned policy.
    pub policy: GaussianPolicy,
    /// The learned value network.
    pub value: Mlp,
    /// Per-iteration statistics, oldest first.
    pub history: Vec<IterationStats>,
}

struct Sample {
    state: Vec<f64>,
    action: Vec<f64>,
    advantage: f64,
    ret: f64,
    log_prob_old: f64,
    mean_old: Vec<f64>,
}

/// Raw trajectory of one episode, before value/advantage post-processing.
struct EpisodeData {
    states: Vec<Vec<f64>>,
    actions: Vec<Vec<f64>>,
    rewards: Vec<f64>,
    means: Vec<Vec<f64>>,
}

/// Adam state for the bare `log σ` vector (the mean net uses the full
/// [`Adam`] optimizer; this mirrors it for a plain parameter vector).
/// Serializable so checkpoints capture the exploration-noise moments too.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct VecAdam {
    lr: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl VecAdam {
    fn new(lr: f64, dim: usize) -> Self {
        Self {
            lr,
            t: 0,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
        }
    }

    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        self.t += 1;
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = b1 * self.m[i] + (1.0 - b1) * grads[i];
            self.v[i] = b2 * self.v[i] + (1.0 - b2) * grads[i] * grads[i];
            params[i] -= self.lr * (self.m[i] / bc1) / ((self.v[i] / bc2).sqrt() + eps);
        }
    }
}

/// PPO trainer. Construct with [`PpoTrainer::new`], then call
/// [`PpoTrainer::train`] on any [`Mdp`].
pub struct PpoTrainer {
    config: PpoConfig,
    policy: GaussianPolicy,
    value: Mlp,
}

impl PpoTrainer {
    /// Creates a trainer with freshly-initialized networks.
    pub fn new(config: &PpoConfig, state_dim: usize, action_dim: usize) -> Self {
        let policy = GaussianPolicy::new(
            state_dim,
            action_dim,
            config.hidden,
            config.init_log_std,
            config.seed,
        );
        let value = MlpBuilder::new(state_dim)
            .hidden(config.hidden, Activation::Tanh)
            .hidden(config.hidden, Activation::Tanh)
            .output(1, Activation::Identity)
            .seed(config.seed.wrapping_add(1))
            .build();
        Self {
            config: config.clone(),
            policy,
            value,
        }
    }

    /// Runs the full training loop, consuming the trainer.
    pub fn train(mut self, mdp: &mut dyn Mdp) -> TrainedPolicy {
        assert_eq!(
            mdp.state_dim(),
            self.policy.mean_net.input_dim(),
            "state dim mismatch"
        );
        assert_eq!(
            mdp.action_dim(),
            self.policy.mean_net.output_dim(),
            "action dim mismatch"
        );
        let mut rng = cocktail_math::rng::seeded(self.config.seed.wrapping_add(2));
        let mut policy_opt = Adam::new(self.config.policy_lr);
        let mut value_opt = Adam::new(self.config.value_lr);
        let mut log_std_opt = VecAdam::new(self.config.policy_lr, mdp.action_dim());
        let mut history = Vec::with_capacity(self.config.iterations);

        for _ in 0..self.config.iterations {
            let (samples, stats) = self.collect(mdp, &mut rng);
            history.push(stats);
            self.update(
                &samples,
                &mut policy_opt,
                &mut value_opt,
                &mut log_std_opt,
                &mut rng,
            );
        }
        TrainedPolicy {
            policy: self.policy,
            value: self.value,
            history,
        }
    }

    /// Runs the full training loop with parallel episode collection, using
    /// [`cocktail_math::parallel::default_workers`] worker threads.
    ///
    /// Unlike [`PpoTrainer::train`], which shares one RNG stream across a
    /// single mutable MDP (and is therefore inherently sequential), this
    /// path builds one fresh MDP and one fresh RNG per episode from
    /// `(seed, episode_index)`, so the training trajectory is a pure
    /// function of the configuration — bit-identical for any worker count.
    ///
    /// # Panics
    ///
    /// Panics if the factory's episodes disagree with the trainer's
    /// state/action dimensions.
    pub fn train_episodes(self, factory: &dyn EpisodeFactory) -> TrainedPolicy {
        self.train_episodes_with_workers(factory, parallel::default_workers())
    }

    /// [`PpoTrainer::train_episodes`] with an explicit worker count
    /// (exposed so determinism across worker counts is testable).
    ///
    /// # Panics
    ///
    /// Panics if the factory's episodes disagree with the trainer's
    /// state/action dimensions.
    pub fn train_episodes_with_workers(
        self,
        factory: &dyn EpisodeFactory,
        workers: usize,
    ) -> TrainedPolicy {
        let mut session = PpoSession::from_trainer(self);
        while !session.is_complete() {
            session.step(factory, workers);
        }
        session.finish()
    }

    /// Rolls out one episode with the current stochastic policy. The RNG
    /// drives the initial-state draw and every action sample, in episode
    /// order — both the sequential and the parallel collection paths funnel
    /// through here, so they differ only in how RNGs are provisioned.
    fn run_episode(&self, mdp: &mut dyn Mdp, rng: &mut rand::rngs::StdRng) -> EpisodeData {
        let bound = mdp.action_bound();
        let mut s = mdp.reset(rng);
        let mut states = Vec::new();
        let mut actions = Vec::new();
        let mut rewards = Vec::new();
        let mut means = Vec::new();
        let mut done = false;
        while !done {
            let mean = self.policy.mean(&s);
            let a = gaussian::sample(rng, &mean, &self.policy.log_std);
            let a_env: Vec<f64> = a.iter().map(|x| x.clamp(-bound, bound)).collect();
            let (next, r, d) = mdp.step(&a_env);
            states.push(s.clone());
            actions.push(a);
            means.push(mean);
            rewards.push(r);
            s = next;
            done = d;
        }
        EpisodeData {
            states,
            actions,
            rewards,
            means,
        }
    }

    /// Turns raw episodes into advantage-standardized training samples plus
    /// iteration statistics. Pure post-processing: independent of worker
    /// count as long as the episode order is fixed.
    fn assemble(&self, episodes: Vec<EpisodeData>) -> (Vec<Sample>, IterationStats) {
        let episode_count = episodes.len();
        let mut samples = Vec::new();
        let mut returns = Vec::new();
        let mut lengths = Vec::new();
        let mut safe_episodes = 0usize;

        for ep in episodes {
            // bootstrap: terminal states get 0; the paper punishes violations
            // with R_pun which already encodes the termination value. A
            // horizon truncation would warrant V(s_T), but our MDPs treat
            // the horizon as the true episode end (finite-horizon objective,
            // Eq. of Section III-A), so 0 is the correct terminal value.
            let truncated_bootstrap = 0.0;
            let value_block = self
                .value
                .forward_batch(&Matrix::from_rows(ep.states.clone()));
            let mut values: Vec<f64> = (0..ep.states.len())
                .map(|i| value_block.row(i)[0])
                .collect();
            values.push(truncated_bootstrap);
            let (advantages, rets) =
                gae(&ep.rewards, &values, self.config.gamma, self.config.lambda);
            let episode_return: f64 = ep.rewards.iter().sum();
            let violated = ep.rewards.last().is_some_and(|&r| r <= -50.0);
            if !violated {
                safe_episodes += 1;
            }
            returns.push(episode_return);
            lengths.push(ep.rewards.len() as f64);
            for i in 0..ep.states.len() {
                let log_prob_old =
                    gaussian::log_prob(&ep.actions[i], &ep.means[i], &self.policy.log_std);
                samples.push(Sample {
                    state: ep.states[i].clone(),
                    action: ep.actions[i].clone(),
                    advantage: advantages[i],
                    ret: rets[i],
                    log_prob_old,
                    mean_old: ep.means[i].clone(),
                });
            }
        }
        // standardize advantages across the whole batch
        let mut advs: Vec<f64> = samples.iter().map(|s| s.advantage).collect();
        stats::standardize(&mut advs);
        for (s, a) in samples.iter_mut().zip(&advs) {
            s.advantage = *a;
        }
        let stats = IterationStats {
            mean_return: stats::mean(&returns),
            mean_length: stats::mean(&lengths),
            safe_fraction: safe_episodes as f64 / episode_count as f64,
        };
        (samples, stats)
    }

    fn collect(
        &self,
        mdp: &mut dyn Mdp,
        rng: &mut rand::rngs::StdRng,
    ) -> (Vec<Sample>, IterationStats) {
        let episodes = (0..self.config.episodes_per_iteration)
            .map(|_| self.run_episode(mdp, rng))
            .collect();
        self.assemble(episodes)
    }

    /// Collects one iteration's episodes in parallel: episode `e` of
    /// iteration `iteration` gets a fresh MDP and a fresh action RNG, both
    /// seeded from the global episode index, so the result is bit-identical
    /// for any `workers` count. `salt = 0` reproduces the historical seed
    /// schedule exactly; a non-zero salt (divergence retries) deterministically
    /// re-derives every episode seed.
    fn collect_parallel(
        &self,
        factory: &dyn EpisodeFactory,
        iteration: usize,
        workers: usize,
        salt: u64,
    ) -> (Vec<Sample>, IterationStats) {
        let base = if salt == 0 {
            self.config.seed.wrapping_add(3)
        } else {
            parallel::task_seed(self.config.seed.wrapping_add(3), salt)
        };
        let episodes =
            parallel::map_range_with_workers(self.config.episodes_per_iteration, workers, |e| {
                let g = (iteration * self.config.episodes_per_iteration + e) as u64;
                let mut mdp = factory.make_episode(parallel::task_seed(base, 2 * g));
                let mut rng = cocktail_math::rng::seeded(parallel::task_seed(base, 2 * g + 1));
                self.run_episode(mdp.as_mut(), &mut rng)
            });
        self.assemble(episodes)
    }

    fn update(
        &mut self,
        samples: &[Sample],
        policy_opt: &mut Adam,
        value_opt: &mut Adam,
        log_std_opt: &mut VecAdam,
        rng: &mut rand::rngs::StdRng,
    ) {
        use rand::seq::SliceRandom;
        if samples.is_empty() {
            return;
        }
        let log_std_old = self.policy.log_std.clone();
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let batch = self.config.minibatch_size.max(1);
        let state_dim = self.policy.mean_net.input_dim();
        let action_dim = self.policy.mean_net.output_dim();
        let mut x = Matrix::zeros(batch.min(samples.len()), state_dim);
        let mut policy_cache = BatchCache::new();
        let mut value_cache = BatchCache::new();

        for _ in 0..self.config.update_epochs {
            order.shuffle(rng);
            for chunk in order.chunks(batch) {
                let scale = 1.0 / chunk.len() as f64;
                let mut policy_grads = GradStore::zeros_like(&self.policy.mean_net);
                let mut log_std_grad = vec![0.0; self.policy.log_std.len()];
                let mut value_grads = GradStore::zeros_like(&self.value);

                // one batched forward per network for the whole minibatch
                if x.shape() != (chunk.len(), state_dim) {
                    x = Matrix::zeros(chunk.len(), state_dim);
                }
                for (r, &i) in chunk.iter().enumerate() {
                    x.row_mut(r).copy_from_slice(&samples[i].state);
                }
                self.policy
                    .mean_net
                    .forward_batch_cached(&x, &mut policy_cache);
                self.value.forward_batch_cached(&x, &mut value_cache);
                let mut policy_g = Matrix::zeros(chunk.len(), action_dim);
                let mut value_g = Matrix::zeros(chunk.len(), 1);

                for (r, &i) in chunk.iter().enumerate() {
                    let s = &samples[i];
                    let mean_new = policy_cache.output().row(r);
                    let log_prob_new =
                        gaussian::log_prob(&s.action, mean_new, &self.policy.log_std);
                    let ratio = (log_prob_new - s.log_prob_old).exp();

                    // clipped-surrogate coefficient: derivative of
                    // min(r·A, clip(r)·A) w.r.t. log π_new is r·A when the
                    // unclipped branch is active, else 0.
                    let clipped_ratio =
                        ratio.clamp(1.0 - self.config.clip_ratio, 1.0 + self.config.clip_ratio);
                    let surrogate_active = ratio * s.advantage <= clipped_ratio * s.advantage;
                    let coeff = if surrogate_active {
                        ratio * s.advantage
                    } else {
                        0.0
                    };

                    // ∂(-L)/∂μ = -coeff·∂logπ/∂μ + β·∂KL/∂μ
                    let glp_mean = gaussian::grad_mean(&s.action, mean_new, &self.policy.log_std);
                    let grow = policy_g.row_mut(r);
                    for (k, (gi, g)) in grow.iter_mut().zip(&glp_mean).enumerate() {
                        *gi = -coeff * g;
                        // KL(old‖new) gradient wrt new mean: (μn−μo)/σn²
                        let gap = mean_new[k] - s.mean_old[k];
                        *gi += self.config.kl_beta * gap / (2.0 * self.policy.log_std[k]).exp();
                    }

                    // log_std gradients: surrogate + KL + entropy bonus
                    let glp_ls = gaussian::grad_log_std(&s.action, mean_new, &self.policy.log_std);
                    for (k, g) in glp_ls.iter().enumerate() {
                        let mut total = -coeff * g;
                        // ∂KL/∂logσn = 1 − (σo² + (μo−μn)²)/σn²
                        let vo = (2.0 * log_std_old[k]).exp();
                        let vn = (2.0 * self.policy.log_std[k]).exp();
                        let gap = s.mean_old[k] - mean_new[k];
                        total += self.config.kl_beta * (1.0 - (vo + gap * gap) / vn);
                        // entropy bonus: maximize H ⇒ subtract ∂H/∂logσ = 1
                        total -= self.config.entropy_bonus;
                        log_std_grad[k] += scale * total;
                    }

                    // value update
                    let vg = loss::mse_gradient(value_cache.output().row(r), &[s.ret]);
                    value_g.row_mut(r).copy_from_slice(&vg);
                }

                self.policy.mean_net.backward_batch(
                    &policy_cache,
                    &policy_g,
                    &mut policy_grads,
                    scale,
                );
                self.value
                    .backward_batch(&value_cache, &value_g, &mut value_grads, scale);

                policy_grads.clip_global_norm(5.0);
                value_grads.clip_global_norm(10.0);
                policy_opt.step(&mut self.policy.mean_net, &policy_grads);
                log_std_opt.step(&mut self.policy.log_std, &log_std_grad);
                // keep exploration noise in a sane range
                for ls in &mut self.policy.log_std {
                    *ls = ls.clamp(-3.0, 1.0);
                }
                value_opt.step(&mut self.value, &value_grads);
            }
        }
    }
}

/// A serializable snapshot of an in-flight PPO training run.
///
/// Captures networks, optimizer moments, the exact update-RNG stream
/// position and the iteration counter, so
/// [`PpoSession::from_checkpoint`] resumes *bit-for-bit*: a run
/// interrupted and resumed mid-training produces the same final policy,
/// value net and history as the uninterrupted run. Construct via
/// [`PpoSession::checkpoint`]; the fields are deliberately opaque.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PpoCheckpoint {
    config: PpoConfig,
    policy: GaussianPolicy,
    value: Mlp,
    policy_opt: Adam,
    value_opt: Adam,
    log_std_opt: VecAdam,
    /// xoshiro256** words of the update RNG (length 4; a `Vec` because the
    /// vendored serde shim does not serialize fixed-size arrays).
    rng_state: Vec<u64>,
    iteration: usize,
    history: Vec<IterationStats>,
    collect_salt: u64,
}

/// Resumable, checkpointable PPO training.
///
/// [`PpoTrainer::train_episodes_with_workers`] is a thin loop over this
/// type, so driving a session manually yields bit-identical numbers:
///
/// ```text
/// let mut session = PpoSession::new(&config, state_dim, action_dim);
/// while !session.is_complete() {
///     session.step(&factory, workers);
///     save(session.checkpoint());      // kill-safe from here
/// }
/// let trained = session.finish();
/// ```
pub struct PpoSession {
    trainer: PpoTrainer,
    policy_opt: Adam,
    value_opt: Adam,
    log_std_opt: VecAdam,
    rng: rand::rngs::StdRng,
    iteration: usize,
    history: Vec<IterationStats>,
    /// Salts the episode-collection seed schedule; 0 is the historical
    /// schedule, a divergence retry bumps it to re-derive fresh episodes.
    collect_salt: u64,
    /// Telemetry sink; never serialized — a restored session starts on the
    /// [`NullSink`] until the caller re-attaches one.
    tel: Arc<dyn Telemetry>,
}

impl PpoSession {
    /// Starts a fresh session with newly-initialized networks.
    pub fn new(config: &PpoConfig, state_dim: usize, action_dim: usize) -> Self {
        Self::from_trainer(PpoTrainer::new(config, state_dim, action_dim))
    }

    /// Wraps an existing trainer (same optimizer/RNG setup as
    /// [`PpoTrainer::train_episodes_with_workers`]).
    pub fn from_trainer(trainer: PpoTrainer) -> Self {
        let rng = cocktail_math::rng::seeded(trainer.config.seed.wrapping_add(2));
        let policy_opt = Adam::new(trainer.config.policy_lr);
        let value_opt = Adam::new(trainer.config.value_lr);
        let log_std_opt = VecAdam::new(trainer.config.policy_lr, trainer.policy.log_std.len());
        Self {
            trainer,
            policy_opt,
            value_opt,
            log_std_opt,
            rng,
            iteration: 0,
            history: Vec::new(),
            collect_salt: 0,
            tel: Arc::new(NullSink),
        }
    }

    /// Attaches a telemetry sink (builder-style). Telemetry never enters
    /// the checkpoint: event payloads are derived from deterministic
    /// iteration statistics, so an instrumented run and a bare run produce
    /// bit-identical training results.
    #[must_use]
    pub fn with_telemetry(mut self, tel: Arc<dyn Telemetry>) -> Self {
        self.tel = tel;
        self
    }

    /// Attaches a telemetry sink to an existing session (e.g. one restored
    /// from a checkpoint).
    pub fn set_telemetry(&mut self, tel: Arc<dyn Telemetry>) {
        self.tel = tel;
    }

    /// Restores a session from a checkpoint, resuming the exact RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's RNG state does not have exactly 4 words
    /// (a corrupted or hand-edited snapshot).
    pub fn from_checkpoint(ckpt: PpoCheckpoint) -> Self {
        assert_eq!(
            ckpt.rng_state.len(),
            4,
            "PPO checkpoint RNG state must have 4 words"
        );
        let words = [
            ckpt.rng_state[0],
            ckpt.rng_state[1],
            ckpt.rng_state[2],
            ckpt.rng_state[3],
        ];
        Self {
            trainer: PpoTrainer {
                config: ckpt.config,
                policy: ckpt.policy,
                value: ckpt.value,
            },
            policy_opt: ckpt.policy_opt,
            value_opt: ckpt.value_opt,
            log_std_opt: ckpt.log_std_opt,
            rng: rand::rngs::StdRng::from_state(words),
            iteration: ckpt.iteration,
            history: ckpt.history,
            collect_salt: ckpt.collect_salt,
            tel: Arc::new(NullSink),
        }
    }

    /// Snapshots the complete training state.
    pub fn checkpoint(&self) -> PpoCheckpoint {
        PpoCheckpoint {
            config: self.trainer.config.clone(),
            policy: self.trainer.policy.clone(),
            value: self.trainer.value.clone(),
            policy_opt: self.policy_opt.clone(),
            value_opt: self.value_opt.clone(),
            log_std_opt: self.log_std_opt.clone(),
            rng_state: self.rng.state().to_vec(),
            iteration: self.iteration,
            history: self.history.clone(),
            collect_salt: self.collect_salt,
        }
    }

    /// Iterations completed so far.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Whether all configured iterations have run.
    pub fn is_complete(&self) -> bool {
        self.iteration >= self.trainer.config.iterations
    }

    /// Per-iteration statistics so far, oldest first.
    pub fn history(&self) -> &[IterationStats] {
        &self.history
    }

    /// Deterministically re-derives the exploration streams for divergence
    /// retry `retry` (≥ 1): both the episode seed schedule and the update
    /// RNG change, so the retried run explores differently while remaining
    /// a pure function of `(config, retry)`.
    pub fn reseed_for_retry(&mut self, retry: u64) {
        self.collect_salt = retry;
        self.rng = cocktail_math::rng::seeded(parallel::task_seed(
            self.trainer.config.seed.wrapping_add(2),
            retry,
        ));
    }

    /// Runs one training iteration (collect + update) and returns its stats.
    ///
    /// # Panics
    ///
    /// Panics if the session [`Self::is_complete`] or the factory's episodes
    /// disagree with the trainer's state/action dimensions.
    pub fn step(&mut self, factory: &dyn EpisodeFactory, workers: usize) -> IterationStats {
        assert!(!self.is_complete(), "PPO session already complete");
        {
            let probe = factory.make_episode(0);
            assert_eq!(
                probe.state_dim(),
                self.trainer.policy.mean_net.input_dim(),
                "state dim mismatch"
            );
            assert_eq!(
                probe.action_dim(),
                self.trainer.policy.mean_net.output_dim(),
                "action dim mismatch"
            );
        }
        let _span = Span::enter_with(
            &*self.tel,
            "ppo-mixing/iteration",
            vec![("iteration".to_string(), self.iteration.into())],
        );
        let (samples, stats) =
            self.trainer
                .collect_parallel(factory, self.iteration, workers, self.collect_salt);
        self.history.push(stats);
        self.trainer.update(
            &samples,
            &mut self.policy_opt,
            &mut self.value_opt,
            &mut self.log_std_opt,
            &mut self.rng,
        );
        self.iteration += 1;
        if self.tel.enabled() {
            // episode collection ran in parallel workers; everything
            // reported here is the deterministic post-join aggregate
            let batch = self.trainer.config.minibatch_size.max(1);
            let minibatches = if samples.is_empty() {
                0
            } else {
                self.trainer.config.update_epochs * samples.len().div_ceil(batch)
            };
            self.tel.counter("ppo.iterations", 1);
            self.tel
                .counter("ppo.minibatch_updates", minibatches as u64);
            self.tel.counter("ppo.samples", samples.len() as u64);
            self.tel.record(
                Event::point("ppo.iteration")
                    .with("iteration", self.iteration - 1)
                    .with("mean_return", stats.mean_return)
                    .with("safe_fraction", stats.safe_fraction)
                    .with("mean_length", stats.mean_length),
            );
            self.tel.observe("ppo.mean_return", stats.mean_return);
        }
        stats
    }

    /// Finalizes the session into the trained policy.
    pub fn finish(self) -> TrainedPolicy {
        TrainedPolicy {
            policy: self.trainer.policy,
            value: self.trainer.value,
            history: self.history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// 1-D point regulation: x' = x + 0.2·a, reward −x² − 0.01 a², 25 steps.
    struct PointMdp {
        x: f64,
        t: usize,
    }

    impl Mdp for PointMdp {
        fn state_dim(&self) -> usize {
            1
        }
        fn action_dim(&self) -> usize {
            1
        }
        fn action_bound(&self) -> f64 {
            1.0
        }
        fn reset(&mut self, rng: &mut dyn rand::RngCore) -> Vec<f64> {
            let mut r = rand::rngs::StdRng::from_rng(rng).expect("rng");
            self.x = r.gen_range(-1.0..=1.0);
            self.t = 0;
            vec![self.x]
        }
        fn step(&mut self, a: &[f64]) -> (Vec<f64>, f64, bool) {
            let act = a[0].clamp(-1.0, 1.0);
            self.x += 0.2 * act;
            self.t += 1;
            let r = -self.x * self.x - 0.01 * act * act;
            (vec![self.x], r, self.t >= 25)
        }
    }

    use rand::SeedableRng;

    #[test]
    fn ppo_improves_point_regulation() {
        let config = PpoConfig {
            iterations: 30,
            episodes_per_iteration: 10,
            hidden: 16,
            seed: 7,
            ..Default::default()
        };
        let mut mdp = PointMdp { x: 0.0, t: 0 };
        let trained = PpoTrainer::new(&config, 1, 1).train(&mut mdp);
        let early: f64 = trained.history[..5]
            .iter()
            .map(|s| s.mean_return)
            .sum::<f64>()
            / 5.0;
        let late: f64 = trained.history[trained.history.len() - 5..]
            .iter()
            .map(|s| s.mean_return)
            .sum::<f64>()
            / 5.0;
        assert!(late > early, "no improvement: early {early} late {late}");
        // the learned deterministic policy should push x towards 0
        let a_pos = trained.policy.deterministic(&[0.8], 1.0)[0];
        let a_neg = trained.policy.deterministic(&[-0.8], 1.0)[0];
        assert!(
            a_pos < 0.0,
            "at x=0.8 action should be negative, got {a_pos}"
        );
        assert!(
            a_neg > 0.0,
            "at x=-0.8 action should be positive, got {a_neg}"
        );
    }

    #[test]
    fn deterministic_action_is_clipped() {
        let p = GaussianPolicy::new(1, 1, 8, 0.0, 0);
        let a = p.deterministic(&[1000.0], 0.5);
        assert!(a[0].abs() <= 0.5);
    }

    #[test]
    fn sample_spread_follows_log_std() {
        let p = GaussianPolicy::new(1, 1, 8, -2.0, 1);
        let mut rng = cocktail_math::rng::seeded(2);
        let m = p.mean(&[0.3])[0];
        let xs: Vec<f64> = (0..2000)
            .map(|_| p.sample(&mut rng, &[0.3])[0] - m)
            .collect();
        let std = cocktail_math::stats::std_dev(&xs);
        assert!((std - (-2.0_f64).exp()).abs() < 0.02, "std {std}");
    }

    #[test]
    fn training_is_seed_deterministic() {
        let config = PpoConfig {
            iterations: 3,
            episodes_per_iteration: 3,
            hidden: 8,
            seed: 11,
            ..Default::default()
        };
        let run = || {
            let mut mdp = PointMdp { x: 0.0, t: 0 };
            PpoTrainer::new(&config, 1, 1).train(&mut mdp)
        };
        let a = run();
        let b = run();
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn parallel_training_is_worker_count_invariant() {
        let config = PpoConfig {
            iterations: 3,
            episodes_per_iteration: 6,
            hidden: 8,
            seed: 5,
            ..Default::default()
        };
        let factory = |_seed: u64| -> Box<dyn Mdp> { Box::new(PointMdp { x: 0.0, t: 0 }) };
        let run = |workers: usize| {
            PpoTrainer::new(&config, 1, 1).train_episodes_with_workers(&factory, workers)
        };
        let reference = run(1);
        for workers in [2usize, 8] {
            let got = run(workers);
            assert_eq!(reference.policy, got.policy, "workers = {workers}");
            assert_eq!(reference.history, got.history, "workers = {workers}");
        }
    }

    #[test]
    fn checkpointed_session_resumes_bit_for_bit() {
        let config = PpoConfig {
            iterations: 4,
            episodes_per_iteration: 4,
            hidden: 8,
            seed: 13,
            ..Default::default()
        };
        let factory = |_seed: u64| -> Box<dyn Mdp> { Box::new(PointMdp { x: 0.0, t: 0 }) };

        let uninterrupted = PpoTrainer::new(&config, 1, 1).train_episodes_with_workers(&factory, 2);

        // interrupt after 2 iterations, round-trip the checkpoint through
        // JSON (the on-disk format), resume in a fresh session
        let mut first = PpoSession::new(&config, 1, 1);
        first.step(&factory, 2);
        first.step(&factory, 2);
        let json = serde_json::to_string(&first.checkpoint()).expect("checkpoint json");
        drop(first);
        let restored: PpoCheckpoint = serde_json::from_str(&json).expect("checkpoint back");
        let mut resumed = PpoSession::from_checkpoint(restored);
        assert_eq!(resumed.iteration(), 2);
        while !resumed.is_complete() {
            resumed.step(&factory, 2);
        }
        let resumed = resumed.finish();

        assert_eq!(resumed.policy, uninterrupted.policy);
        assert_eq!(resumed.value, uninterrupted.value);
        assert_eq!(resumed.history, uninterrupted.history);
    }

    #[test]
    fn telemetry_reports_iterations_without_perturbing_training() {
        let config = PpoConfig {
            iterations: 3,
            episodes_per_iteration: 4,
            hidden: 8,
            seed: 9,
            ..Default::default()
        };
        let factory = |_seed: u64| -> Box<dyn Mdp> { Box::new(PointMdp { x: 0.0, t: 0 }) };

        let bare = {
            let mut s = PpoSession::new(&config, 1, 1);
            while !s.is_complete() {
                s.step(&factory, 2);
            }
            s.finish()
        };

        let sink = Arc::new(cocktail_obs::InMemorySink::new());
        let mut instrumented =
            PpoSession::new(&config, 1, 1).with_telemetry(sink.clone() as Arc<dyn Telemetry>);
        while !instrumented.is_complete() {
            instrumented.step(&factory, 2);
        }
        let instrumented = instrumented.finish();

        assert_eq!(bare.policy, instrumented.policy, "telemetry must be inert");
        assert_eq!(sink.counter_total("ppo.iterations"), 3);
        assert!(sink.counter_total("ppo.minibatch_updates") > 0);
        let spans = sink
            .events()
            .iter()
            .filter(|e| {
                e.kind == cocktail_obs::EventKind::SpanEnd && e.name == "ppo-mixing/iteration"
            })
            .count();
        assert_eq!(spans, 3);
    }

    #[test]
    fn retry_reseed_changes_the_trajectory_deterministically() {
        let config = PpoConfig {
            iterations: 2,
            episodes_per_iteration: 3,
            hidden: 8,
            seed: 21,
            ..Default::default()
        };
        let factory = |_seed: u64| -> Box<dyn Mdp> { Box::new(PointMdp { x: 0.0, t: 0 }) };
        let run = |retry: Option<u64>| {
            let mut session = PpoSession::new(&config, 1, 1);
            if let Some(r) = retry {
                session.reseed_for_retry(r);
            }
            while !session.is_complete() {
                session.step(&factory, 1);
            }
            session.finish()
        };
        let base = run(None);
        let retried = run(Some(1));
        let retried_again = run(Some(1));
        assert_ne!(
            base.policy, retried.policy,
            "retry must explore differently"
        );
        assert_eq!(
            retried.policy, retried_again.policy,
            "retry must be deterministic"
        );
    }

    #[test]
    fn history_has_one_entry_per_iteration() {
        let config = PpoConfig {
            iterations: 4,
            episodes_per_iteration: 2,
            hidden: 8,
            seed: 3,
            ..Default::default()
        };
        let mut mdp = PointMdp { x: 0.0, t: 0 };
        let trained = PpoTrainer::new(&config, 1, 1).train(&mut mdp);
        assert_eq!(trained.history.len(), 4);
        assert!(trained.history.iter().all(|s| s.mean_length > 0.0));
    }
}
