//! MDP abstractions and the three MDPs the Cocktail pipeline trains on.

use crate::reward::RewardConfig;
use cocktail_control::Controller;
use cocktail_env::{DisturbanceModel, Dynamics};
use cocktail_math::vector;
use rand::RngCore;
use std::sync::Arc;

/// A continuous-action episodic MDP with symmetric action bounds.
///
/// Actions are vectors in `[-action_bound, action_bound]^action_dim`;
/// trainers clip before stepping. `reset` starts a fresh episode and
/// returns the initial observation; `step` returns
/// `(next_state, reward, done)`.
pub trait Mdp {
    /// Observation dimension.
    fn state_dim(&self) -> usize;
    /// Action dimension.
    fn action_dim(&self) -> usize;
    /// Symmetric per-component action bound.
    fn action_bound(&self) -> f64;
    /// Starts a new episode.
    fn reset(&mut self, rng: &mut dyn RngCore) -> Vec<f64>;
    /// Applies an action.
    ///
    /// # Panics
    ///
    /// Implementations panic if `action.len() != self.action_dim()`.
    fn step(&mut self, action: &[f64]) -> (Vec<f64>, f64, bool);
}

/// Constructs independent episodes of an MDP family from a seed.
///
/// [`Mdp`] is deliberately stateful (`reset`/`step` take `&mut self`), which
/// makes a single instance unusable for parallel episode collection. A
/// factory instead builds one fresh MDP per episode; the seed fully
/// determines the episode's internal randomness (e.g. the disturbance
/// stream), so collection driven by
/// [`cocktail_math::parallel::task_seed`]-derived seeds is bit-identical for
/// any worker count.
///
/// Any `Fn(u64) -> Box<dyn Mdp>` that is `Sync` is a factory:
///
/// ```
/// use cocktail_rl::mdp::{EpisodeFactory, Mdp, MixingMdp};
/// use cocktail_rl::RewardConfig;
/// use cocktail_control::LinearFeedbackController;
/// use cocktail_env::systems::VanDerPol;
/// use cocktail_math::Matrix;
/// use std::sync::Arc;
///
/// let sys: Arc<dyn cocktail_env::Dynamics> = Arc::new(VanDerPol::new());
/// let experts: Vec<Arc<dyn cocktail_control::Controller>> = vec![Arc::new(
///     LinearFeedbackController::new(Matrix::from_rows(vec![vec![1.0, 1.5]])),
/// )];
/// let factory = move |seed: u64| -> Box<dyn Mdp> {
///     Box::new(MixingMdp::new(
///         sys.clone(),
///         experts.clone(),
///         1.5,
///         RewardConfig::default(),
///         seed,
///     ))
/// };
/// let episode = factory.make_episode(7);
/// assert_eq!(episode.state_dim(), 2);
/// ```
pub trait EpisodeFactory: Sync {
    /// Builds a fresh episode MDP whose internal randomness derives from
    /// `seed`.
    fn make_episode(&self, seed: u64) -> Box<dyn Mdp>;
}

impl<F> EpisodeFactory for F
where
    F: Fn(u64) -> Box<dyn Mdp> + Sync,
{
    fn make_episode(&self, seed: u64) -> Box<dyn Mdp> {
        self(seed)
    }
}

/// Shared plant-episode machinery for the concrete MDPs below.
struct PlantEpisode {
    sys: Arc<dyn Dynamics>,
    disturbance: DisturbanceModel,
    reward: RewardConfig,
    state: Vec<f64>,
    t: usize,
    horizon: usize,
    rng: rand::rngs::StdRng,
}

impl PlantEpisode {
    fn new(sys: Arc<dyn Dynamics>, reward: RewardConfig, seed: u64) -> Self {
        let disturbance = DisturbanceModel::from_amplitude(sys.disturbance_amplitude());
        let horizon = sys.horizon();
        let state = sys.initial_set().center();
        Self {
            sys,
            disturbance,
            reward,
            state,
            t: 0,
            horizon,
            rng: cocktail_math::rng::seeded(seed),
        }
    }

    #[allow(
        clippy::expect_used,
        reason = "StdRng::from_rng is infallible for non-erroring sources"
    )]
    fn reset(&mut self, rng: &mut dyn RngCore) -> Vec<f64> {
        let mut r = rand::rngs::StdRng::from_rng(rng).expect("rng never fails");
        self.state = cocktail_math::rng::uniform_in_box(&mut r, &self.sys.initial_set());
        self.t = 0;
        self.state.clone()
    }

    /// Applies the *plant-level* control `u` (already computed from the
    /// action), advancing the episode.
    fn apply(&mut self, u_raw: &[f64]) -> (Vec<f64>, f64, bool) {
        let u = self.sys.clip_control(u_raw);
        let omega = self.disturbance.sample(&mut self.rng);
        self.state = self.sys.step(&self.state, &u, &omega);
        self.t += 1;
        let safe = self.sys.is_safe(&self.state);
        let reward = self.reward.reward(&u, &self.state, safe);
        let done = !safe || self.t >= self.horizon;
        (self.state.clone(), reward, done)
    }
}

use rand::SeedableRng;

/// MDP where the action *is* the plant input (scaled to the control bound):
/// the expert-training setting of Section IV (DDPG with different
/// hyperparameters).
pub struct DirectControlMdp {
    episode: PlantEpisode,
    u_scale: Vec<f64>,
}

impl DirectControlMdp {
    /// Wraps a plant. Actions in `[-1, 1]^{|u|}` map linearly onto the
    /// control bound.
    pub fn new(sys: Arc<dyn Dynamics>, reward: RewardConfig, seed: u64) -> Self {
        let (lo, hi) = sys.control_bounds();
        let u_scale = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| 0.5 * (h - l).abs().max(l.abs().max(h.abs())))
            .collect();
        Self {
            episode: PlantEpisode::new(sys, reward, seed),
            u_scale,
        }
    }

    /// The wrapped plant.
    pub fn dynamics(&self) -> &Arc<dyn Dynamics> {
        &self.episode.sys
    }

    /// The per-component action-to-control scale.
    pub fn control_scale(&self) -> &[f64] {
        &self.u_scale
    }
}

impl Mdp for DirectControlMdp {
    fn state_dim(&self) -> usize {
        self.episode.sys.state_dim()
    }

    fn action_dim(&self) -> usize {
        self.episode.sys.control_dim()
    }

    fn action_bound(&self) -> f64 {
        1.0
    }

    fn reset(&mut self, rng: &mut dyn RngCore) -> Vec<f64> {
        self.episode.reset(rng)
    }

    fn step(&mut self, action: &[f64]) -> (Vec<f64>, f64, bool) {
        assert_eq!(action.len(), self.action_dim(), "action dimension mismatch");
        let u: Vec<f64> = action
            .iter()
            .zip(&self.u_scale)
            .map(|(&a, &s)| a.clamp(-1.0, 1.0) * s)
            .collect();
        self.episode.apply(&u)
    }
}

/// The paper's adaptive-mixing MDP (Section III-A): the action is the
/// weight vector `a ∈ [-A_B, A_B]ⁿ` and the plant input is
/// `clip(Σ aᵢ κᵢ(s), U)` (Eq. 4).
pub struct MixingMdp {
    episode: PlantEpisode,
    experts: Vec<Arc<dyn Controller>>,
    weight_bound: f64,
}

impl MixingMdp {
    /// Builds the mixing MDP over `experts` with weight bound `A_B ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `experts` is empty or `weight_bound < 1`.
    pub fn new(
        sys: Arc<dyn Dynamics>,
        experts: Vec<Arc<dyn Controller>>,
        weight_bound: f64,
        reward: RewardConfig,
        seed: u64,
    ) -> Self {
        assert!(!experts.is_empty(), "mixing needs at least one expert");
        assert!(weight_bound >= 1.0, "weight bound must be at least 1");
        Self {
            episode: PlantEpisode::new(sys, reward, seed),
            experts,
            weight_bound,
        }
    }

    /// The experts being mixed.
    pub fn experts(&self) -> &[Arc<dyn Controller>] {
        &self.experts
    }

    /// The wrapped plant.
    pub fn dynamics(&self) -> &Arc<dyn Dynamics> {
        &self.episode.sys
    }

    fn mix(&self, s: &[f64], weights: &[f64]) -> Vec<f64> {
        let mut u = vec![0.0; self.episode.sys.control_dim()];
        for (w, e) in weights.iter().zip(&self.experts) {
            let wc = w.clamp(-self.weight_bound, self.weight_bound);
            vector::axpy_inplace(&mut u, wc, &e.control(s));
        }
        u
    }
}

impl Mdp for MixingMdp {
    fn state_dim(&self) -> usize {
        self.episode.sys.state_dim()
    }

    fn action_dim(&self) -> usize {
        self.experts.len()
    }

    fn action_bound(&self) -> f64 {
        self.weight_bound
    }

    fn reset(&mut self, rng: &mut dyn RngCore) -> Vec<f64> {
        self.episode.reset(rng)
    }

    fn step(&mut self, action: &[f64]) -> (Vec<f64>, f64, bool) {
        assert_eq!(action.len(), self.action_dim(), "action dimension mismatch");
        let u = self.mix(&self.episode.state.clone(), action);
        self.episode.apply(&u)
    }
}

/// The discrete switching MDP reproducing the baseline `A_S` \[4\]: the
/// (continuous, one-per-expert) action is interpreted as preference logits
/// and the **argmax expert alone** drives the plant. Training this MDP with
/// the same PPO machinery restricts the search to one-hot weight vectors —
/// exactly the sub-space argument of Proposition 1.
pub struct SwitchingMdp {
    inner: MixingMdp,
}

impl SwitchingMdp {
    /// Builds the switching MDP over `experts`.
    ///
    /// # Panics
    ///
    /// Panics if `experts` is empty.
    pub fn new(
        sys: Arc<dyn Dynamics>,
        experts: Vec<Arc<dyn Controller>>,
        reward: RewardConfig,
        seed: u64,
    ) -> Self {
        Self {
            inner: MixingMdp::new(sys, experts, 1.0, reward, seed),
        }
    }

    /// Index of the expert an action vector activates.
    #[allow(
        clippy::expect_used,
        reason = "action vectors from this MDP are never empty"
    )]
    pub fn chosen_expert(action: &[f64]) -> usize {
        action
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty action")
    }
}

impl Mdp for SwitchingMdp {
    fn state_dim(&self) -> usize {
        self.inner.state_dim()
    }

    fn action_dim(&self) -> usize {
        self.inner.action_dim()
    }

    fn action_bound(&self) -> f64 {
        1.0
    }

    fn reset(&mut self, rng: &mut dyn RngCore) -> Vec<f64> {
        self.inner.reset(rng)
    }

    fn step(&mut self, action: &[f64]) -> (Vec<f64>, f64, bool) {
        assert_eq!(action.len(), self.action_dim(), "action dimension mismatch");
        let mut one_hot = vec![0.0; action.len()];
        one_hot[Self::chosen_expert(action)] = 1.0;
        self.inner.step(&one_hot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_control::LinearFeedbackController;
    use cocktail_env::systems::VanDerPol;
    use cocktail_math::Matrix;

    fn vdp_experts() -> (Arc<dyn Dynamics>, Vec<Arc<dyn Controller>>) {
        let sys: Arc<dyn Dynamics> = Arc::new(VanDerPol::new());
        let experts: Vec<Arc<dyn Controller>> = vec![
            Arc::new(LinearFeedbackController::new(Matrix::from_rows(vec![
                vec![1.0, 1.5],
            ]))),
            Arc::new(LinearFeedbackController::new(Matrix::from_rows(vec![
                vec![4.0, 4.0],
            ]))),
        ];
        (sys, experts)
    }

    #[test]
    fn direct_mdp_dimensions_and_episode() {
        let (sys, _) = vdp_experts();
        let mut mdp = DirectControlMdp::new(sys, RewardConfig::default(), 0);
        let mut rng = cocktail_math::rng::seeded(1);
        let s0 = mdp.reset(&mut rng);
        assert_eq!(s0.len(), 2);
        assert_eq!(mdp.action_dim(), 1);
        let (s1, r, done) = mdp.step(&[0.5]);
        assert_eq!(s1.len(), 2);
        assert!(r <= 1.0);
        assert!(!done || !VanDerPol::new().is_safe(&s1));
    }

    #[test]
    fn direct_mdp_scales_action_to_control_bound() {
        let (sys, _) = vdp_experts();
        let mdp = DirectControlMdp::new(sys, RewardConfig::default(), 0);
        assert_eq!(mdp.control_scale(), &[20.0]);
    }

    #[test]
    fn mixing_mdp_weighted_sum_matches_manual() {
        let (sys, experts) = vdp_experts();
        let mdp = MixingMdp::new(sys, experts.clone(), 2.0, RewardConfig::default(), 0);
        let s = [0.5, 0.5];
        let u = mdp.mix(&s, &[1.0, -0.5]);
        let manual = 1.0 * experts[0].control(&s)[0] - 0.5 * experts[1].control(&s)[0];
        assert!((u[0] - manual).abs() < 1e-12);
    }

    #[test]
    fn mixing_mdp_clamps_weights() {
        let (sys, experts) = vdp_experts();
        let mdp = MixingMdp::new(sys, experts.clone(), 2.0, RewardConfig::default(), 0);
        let s = [1.0, 0.0];
        let u_clamped = mdp.mix(&s, &[100.0, 0.0]);
        let u_limit = mdp.mix(&s, &[2.0, 0.0]);
        assert_eq!(u_clamped, u_limit);
    }

    #[test]
    fn episode_terminates_at_horizon() {
        let (sys, experts) = vdp_experts();
        let mut mdp = MixingMdp::new(sys, experts, 1.5, RewardConfig::default(), 3);
        let mut rng = cocktail_math::rng::seeded(4);
        // start near the origin so the strong expert keeps it safe
        let mut s = mdp.reset(&mut rng);
        while cocktail_math::vector::norm_2(&s) > 0.3 {
            s = mdp.reset(&mut rng);
        }
        let mut steps = 0;
        loop {
            let (_, _, done) = mdp.step(&[0.0, 1.0]);
            steps += 1;
            if done {
                break;
            }
        }
        assert_eq!(steps, 100, "safe episode runs the full horizon");
    }

    #[test]
    fn unsafe_step_is_punished_and_terminal() {
        let (sys, experts) = vdp_experts();
        let mut mdp = MixingMdp::new(sys, experts, 1.0, RewardConfig::default(), 5);
        // drive straight out of the safe set from a boundary state
        let mut rng = cocktail_math::rng::seeded(6);
        mdp.reset(&mut rng);
        mdp.episode.state = vec![1.99, 1.99];
        let (_, r, done) = mdp.step(&[0.0, 0.0]);
        assert_eq!(r, RewardConfig::default().punish);
        assert!(done);
    }

    #[test]
    fn switching_mdp_activates_argmax_expert() {
        assert_eq!(SwitchingMdp::chosen_expert(&[0.2, 0.9]), 1);
        assert_eq!(SwitchingMdp::chosen_expert(&[0.2, -0.9]), 0);
        let (sys, experts) = vdp_experts();
        let mut sw = SwitchingMdp::new(sys.clone(), experts.clone(), RewardConfig::default(), 7);
        let mut mx = MixingMdp::new(sys, experts, 1.0, RewardConfig::default(), 7);
        let mut rng1 = cocktail_math::rng::seeded(8);
        let mut rng2 = cocktail_math::rng::seeded(8);
        let s1 = sw.reset(&mut rng1);
        let s2 = mx.reset(&mut rng2);
        assert_eq!(s1, s2);
        let (n1, r1, _) = sw.step(&[0.3, 0.7]);
        let (n2, r2, _) = mx.step(&[0.0, 1.0]);
        assert_eq!(n1, n2);
        assert_eq!(r1, r2);
    }
}
