//! The paper's reward function (Section III-A).
//!
//! ```text
//! r(s, a) = R_pun                 if s ∉ X
//!           h(‖u‖)                otherwise
//! ```
//!
//! with `R_pun` a large negative punishment and `h` monotonically
//! decreasing in the applied control's magnitude. We use the affine form
//! `h(x) = alive_bonus − energy_scale · x` with `x = ‖u‖₁`, which is
//! monotone decreasing and keeps per-step rewards O(1) for clipped inputs.

use serde::{Deserialize, Serialize};

/// Parameters of the safety/energy reward.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// `R_pun`: reward when the state leaves the safe region.
    pub punish: f64,
    /// Per-step constant granted while safe (keeps safe trajectories
    /// strictly preferable to early termination).
    pub alive_bonus: f64,
    /// Slope of the energy penalty on `‖u‖₁`.
    pub energy_scale: f64,
    /// Slope of the state-magnitude penalty on `‖s'‖₁` (steer-away term).
    pub state_scale: f64,
}

impl Default for RewardConfig {
    fn default() -> Self {
        Self {
            punish: -100.0,
            alive_bonus: 1.0,
            energy_scale: 0.05,
            state_scale: 0.25,
        }
    }
}

impl RewardConfig {
    /// Reward for a step that applied control `u` and landed on state
    /// `next` with the given safety flag.
    ///
    /// # Examples
    ///
    /// ```
    /// use cocktail_rl::RewardConfig;
    ///
    /// let r = RewardConfig::default();
    /// assert_eq!(r.reward(&[0.0], &[0.0], false), -100.0);
    /// assert!(r.reward(&[1.0], &[0.0], true) < r.reward(&[0.0], &[0.0], true));
    /// assert!(r.reward(&[0.0], &[1.0], true) < r.reward(&[0.0], &[0.0], true));
    /// ```
    pub fn reward(&self, u: &[f64], next: &[f64], safe: bool) -> f64 {
        if !safe {
            self.punish
        } else {
            self.alive_bonus
                - self.energy_scale * cocktail_math::vector::norm_1(u)
                - self.state_scale * cocktail_math::vector::norm_1(next)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsafe_always_punished() {
        let r = RewardConfig::default();
        assert_eq!(r.reward(&[0.0], &[0.0], false), r.punish);
        assert_eq!(r.reward(&[100.0], &[0.0], false), r.punish);
    }

    #[test]
    fn h_is_monotone_decreasing_in_energy() {
        let r = RewardConfig::default();
        let mut prev = f64::INFINITY;
        for e in [0.0, 0.5, 1.0, 5.0, 20.0] {
            let now = r.reward(&[e], &[0.0], true);
            assert!(now < prev);
            prev = now;
        }
    }

    #[test]
    fn steer_away_term_prefers_small_states() {
        let r = RewardConfig::default();
        assert!(r.reward(&[1.0], &[0.1, 0.1], true) > r.reward(&[1.0], &[1.0, 1.0], true));
    }

    #[test]
    fn punishment_dominates_any_safe_reward() {
        let r = RewardConfig::default();
        assert!(r.reward(&[0.0], &[0.0], false) < r.reward(&[40.0], &[4.0], true));
    }
}
