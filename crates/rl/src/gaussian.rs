//! Diagonal-Gaussian policy head.
//!
//! PPO's stochastic policy is `a ~ N(μ(s), diag(σ²))` with the mean from an
//! MLP and a state-independent learnable `log σ` vector. This module keeps
//! the density/gradient math in one tested place:
//!
//! * `log π(a|s) = Σᵢ [ −(aᵢ−μᵢ)²/(2σᵢ²) − log σᵢ − ½ log 2π ]`
//! * `∂ log π/∂μᵢ = (aᵢ−μᵢ)/σᵢ²`
//! * `∂ log π/∂ log σᵢ = (aᵢ−μᵢ)²/σᵢ² − 1`
//! * `KL(old‖new) = Σᵢ [ log(σₙ/σₒ) + (σₒ² + (μₒ−μₙ)²)/(2σₙ²) − ½ ]`

use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Log-density of `a` under `N(mean, diag(exp(log_std)²))`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn log_prob(action: &[f64], mean: &[f64], log_std: &[f64]) -> f64 {
    assert_eq!(action.len(), mean.len(), "length mismatch");
    assert_eq!(action.len(), log_std.len(), "length mismatch");
    const HALF_LOG_2PI: f64 = 0.918_938_533_204_672_7;
    action
        .iter()
        .zip(mean)
        .zip(log_std)
        .map(|((&a, &m), &ls)| {
            let s = ls.exp();
            let z = (a - m) / s;
            -0.5 * z * z - ls - HALF_LOG_2PI
        })
        .sum()
}

/// Gradient of [`log_prob`] with respect to the mean.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn grad_mean(action: &[f64], mean: &[f64], log_std: &[f64]) -> Vec<f64> {
    assert_eq!(action.len(), mean.len(), "length mismatch");
    assert_eq!(action.len(), log_std.len(), "length mismatch");
    action
        .iter()
        .zip(mean)
        .zip(log_std)
        .map(|((&a, &m), &ls)| {
            let var = (2.0 * ls).exp();
            (a - m) / var
        })
        .collect()
}

/// Gradient of [`log_prob`] with respect to `log_std`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn grad_log_std(action: &[f64], mean: &[f64], log_std: &[f64]) -> Vec<f64> {
    assert_eq!(action.len(), mean.len(), "length mismatch");
    assert_eq!(action.len(), log_std.len(), "length mismatch");
    action
        .iter()
        .zip(mean)
        .zip(log_std)
        .map(|((&a, &m), &ls)| {
            let var = (2.0 * ls).exp();
            (a - m) * (a - m) / var - 1.0
        })
        .collect()
}

/// Samples an action from the policy.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[allow(
    clippy::expect_used,
    reason = "exp(log_std) is always a valid positive standard deviation"
)]
pub fn sample<R: Rng + ?Sized>(rng: &mut R, mean: &[f64], log_std: &[f64]) -> Vec<f64> {
    assert_eq!(mean.len(), log_std.len(), "length mismatch");
    mean.iter()
        .zip(log_std)
        .map(|(&m, &ls)| {
            let normal = Normal::new(m, ls.exp()).expect("std is positive by construction");
            normal.sample(rng)
        })
        .collect()
}

/// KL divergence `KL(old ‖ new)` between two diagonal Gaussians.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn kl_divergence(
    mean_old: &[f64],
    log_std_old: &[f64],
    mean_new: &[f64],
    log_std_new: &[f64],
) -> f64 {
    assert_eq!(mean_old.len(), log_std_old.len(), "length mismatch");
    assert_eq!(mean_old.len(), mean_new.len(), "length mismatch");
    assert_eq!(mean_old.len(), log_std_new.len(), "length mismatch");
    mean_old
        .iter()
        .zip(log_std_old)
        .zip(mean_new.iter().zip(log_std_new))
        .map(|((&mo, &lso), (&mn, &lsn))| {
            let (vo, vn) = ((2.0 * lso).exp(), (2.0 * lsn).exp());
            lsn - lso + (vo + (mo - mn) * (mo - mn)) / (2.0 * vn) - 0.5
        })
        .sum()
}

/// Entropy of the diagonal Gaussian: `Σᵢ (log σᵢ + ½ log 2πe)`.
pub fn entropy(log_std: &[f64]) -> f64 {
    const HALF_LOG_2PIE: f64 = 1.418_938_533_204_672_7;
    log_std.iter().map(|ls| ls + HALF_LOG_2PIE).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_prob_peaks_at_mean() {
        let mean = [0.5, -1.0];
        let ls = [0.0, 0.0];
        let at_mean = log_prob(&mean, &mean, &ls);
        let off = log_prob(&[0.6, -1.0], &mean, &ls);
        assert!(at_mean > off);
    }

    #[test]
    fn log_prob_matches_univariate_formula() {
        // N(0,1) density at 0 is 1/sqrt(2π)
        let lp = log_prob(&[0.0], &[0.0], &[0.0]);
        assert!((lp - (-0.918_938_533_204_672_7)).abs() < 1e-12);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let a = [0.3, -0.7];
        let m = [0.1, 0.2];
        let ls = [-0.5, 0.3];
        let gm = grad_mean(&a, &m, &ls);
        let gs = grad_log_std(&a, &m, &ls);
        let h = 1e-6;
        for i in 0..2 {
            let mut mp = m;
            mp[i] += h;
            let mut mm = m;
            mm[i] -= h;
            let fd = (log_prob(&a, &mp, &ls) - log_prob(&a, &mm, &ls)) / (2.0 * h);
            assert!((fd - gm[i]).abs() < 1e-6, "mean grad {i}");
            let mut lsp = ls;
            lsp[i] += h;
            let mut lsm = ls;
            lsm[i] -= h;
            let fd = (log_prob(&a, &m, &lsp) - log_prob(&a, &m, &lsm)) / (2.0 * h);
            assert!((fd - gs[i]).abs() < 1e-6, "log_std grad {i}");
        }
    }

    #[test]
    fn kl_zero_for_identical_distributions() {
        let m = [1.0, -2.0];
        let ls = [0.2, -0.1];
        assert!(kl_divergence(&m, &ls, &m, &ls).abs() < 1e-12);
    }

    #[test]
    fn kl_positive_and_grows_with_mean_gap() {
        let ls = [0.0];
        let small = kl_divergence(&[0.0], &ls, &[0.1], &ls);
        let large = kl_divergence(&[0.0], &ls, &[1.0], &ls);
        assert!(small > 0.0);
        assert!(large > small);
    }

    #[test]
    fn sample_statistics_match_parameters() {
        let mut rng = cocktail_math::rng::seeded(0);
        let mut xs = Vec::new();
        for _ in 0..20_000 {
            xs.push(sample(&mut rng, &[2.0], &[(0.5_f64).ln()])[0]);
        }
        let mean = cocktail_math::stats::mean(&xs);
        let std = cocktail_math::stats::std_dev(&xs);
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((std - 0.5).abs() < 0.02, "std {std}");
    }

    #[test]
    fn entropy_increases_with_std() {
        assert!(entropy(&[0.0]) < entropy(&[1.0]));
    }
}
