//! Deep deterministic policy gradient (Lillicrap et al.), used to train the
//! paper's neural experts "obtained by DDPG with different hyperparameters"
//! (Section IV) and as the alternative mixing learner of Remark 1.

use crate::buffer::{ReplayBuffer, Transition};
use crate::mdp::Mdp;
use crate::noise::{ExplorationNoise, NoiseKind};
use cocktail_nn::{loss, Activation, Adam, GradStore, Mlp, MlpBuilder, Optimizer};
use serde::{Deserialize, Serialize};

/// DDPG hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DdpgConfig {
    /// Total environment episodes.
    pub episodes: usize,
    /// Replay capacity.
    pub buffer_capacity: usize,
    /// Steps collected before learning starts.
    pub warmup_steps: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Discount factor γ.
    pub gamma: f64,
    /// Soft target-update rate τ.
    pub soft_tau: f64,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Initial exploration noise amplitude (in normalized action units).
    pub exploration_noise: f64,
    /// Exploration-noise process (Gaussian or Ornstein–Uhlenbeck).
    pub noise_kind: NoiseKind,
    /// Multiplicative per-episode decay of the exploration noise.
    pub noise_decay: f64,
    /// Hidden width of the two-hidden-layer networks.
    pub hidden: usize,
    /// Gradient updates per environment step.
    pub updates_per_step: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        Self {
            episodes: 80,
            buffer_capacity: 50_000,
            warmup_steps: 500,
            batch_size: 64,
            gamma: 0.99,
            soft_tau: 0.01,
            actor_lr: 1e-3,
            critic_lr: 2e-3,
            exploration_noise: 0.3,
            noise_kind: NoiseKind::Gaussian,
            noise_decay: 0.97,
            hidden: 32,
            updates_per_step: 1,
            seed: 0,
        }
    }
}

/// Per-episode statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeStats {
    /// Undiscounted episode return.
    pub episode_return: f64,
    /// Episode length in steps.
    pub length: usize,
}

/// The result of DDPG training.
#[derive(Debug, Clone)]
pub struct TrainedActor {
    /// The deterministic actor `a = tanh-net(s)` (outputs in `[-1, 1]`,
    /// scaled by the MDP's action bound at deployment).
    pub actor: Mlp,
    /// The learned critic `Q(s, a)`.
    pub critic: Mlp,
    /// Per-episode statistics, oldest first.
    pub history: Vec<EpisodeStats>,
}

/// Soft-updates `target ← τ·source + (1−τ)·target`.
fn soft_update(target: &mut Mlp, source: &Mlp, tau: f64) {
    for (tl, sl) in target.layers_mut().iter_mut().zip(source.layers()) {
        let tw = tl.weights_mut().as_mut_slice();
        for (t, s) in tw.iter_mut().zip(sl.weights().as_slice()) {
            *t = tau * s + (1.0 - tau) * *t;
        }
        for (t, s) in tl.biases_mut().iter_mut().zip(sl.biases()) {
            *t = tau * s + (1.0 - tau) * *t;
        }
    }
}

/// DDPG trainer. Construct with [`DdpgTrainer::new`], then call
/// [`DdpgTrainer::train`] on any [`Mdp`].
pub struct DdpgTrainer {
    config: DdpgConfig,
    actor: Mlp,
    critic: Mlp,
}

impl DdpgTrainer {
    /// Creates a trainer with freshly-initialized actor and critic.
    pub fn new(config: &DdpgConfig, state_dim: usize, action_dim: usize) -> Self {
        let actor = MlpBuilder::new(state_dim)
            .hidden(config.hidden, Activation::Relu)
            .hidden(config.hidden, Activation::Relu)
            .output(action_dim, Activation::Tanh)
            .seed(config.seed)
            .build();
        let critic = MlpBuilder::new(state_dim + action_dim)
            .hidden(config.hidden, Activation::Relu)
            .hidden(config.hidden, Activation::Relu)
            .output(1, Activation::Identity)
            .seed(config.seed.wrapping_add(1))
            .build();
        Self {
            config: config.clone(),
            actor,
            critic,
        }
    }

    /// Runs the training loop, consuming the trainer.
    pub fn train(mut self, mdp: &mut dyn Mdp) -> TrainedActor {
        assert_eq!(
            mdp.state_dim(),
            self.actor.input_dim(),
            "state dim mismatch"
        );
        assert_eq!(
            mdp.action_dim(),
            self.actor.output_dim(),
            "action dim mismatch"
        );
        let bound = mdp.action_bound();
        let mut rng = cocktail_math::rng::seeded(self.config.seed.wrapping_add(2));
        let mut buffer = ReplayBuffer::new(self.config.buffer_capacity);
        let mut actor_target = self.actor.clone();
        let mut critic_target = self.critic.clone();
        let mut actor_opt = Adam::new(self.config.actor_lr);
        let mut critic_opt = Adam::new(self.config.critic_lr);
        let mut history = Vec::with_capacity(self.config.episodes);
        let mut noise = self.config.exploration_noise;
        let mut noise_process = ExplorationNoise::new(self.config.noise_kind, mdp.action_dim());
        let mut total_steps = 0usize;

        for _ in 0..self.config.episodes {
            let mut s = mdp.reset(&mut rng);
            noise_process.reset();
            let mut episode_return = 0.0;
            let mut length = 0usize;
            loop {
                // normalized action in [-1, 1] + exploration noise
                let mut a = self.actor.forward(&s);
                let eps = noise_process.sample(&mut rng, noise);
                for (ai, e) in a.iter_mut().zip(&eps) {
                    *ai = (*ai + e).clamp(-1.0, 1.0);
                }
                let a_env: Vec<f64> = a.iter().map(|x| x * bound).collect();
                let (next, r, done) = mdp.step(&a_env);
                buffer.push(Transition {
                    state: s.clone(),
                    action: a.clone(),
                    reward: r,
                    next_state: next.clone(),
                    done,
                });
                episode_return += r;
                length += 1;
                total_steps += 1;
                s = next;

                if total_steps >= self.config.warmup_steps {
                    for _ in 0..self.config.updates_per_step {
                        self.learn(
                            &buffer,
                            &mut actor_target,
                            &mut critic_target,
                            &mut actor_opt,
                            &mut critic_opt,
                            &mut rng,
                        );
                    }
                }
                if done {
                    break;
                }
            }
            noise *= self.config.noise_decay;
            history.push(EpisodeStats {
                episode_return,
                length,
            });
        }
        TrainedActor {
            actor: self.actor,
            critic: self.critic,
            history,
        }
    }

    fn learn(
        &mut self,
        buffer: &ReplayBuffer,
        actor_target: &mut Mlp,
        critic_target: &mut Mlp,
        actor_opt: &mut Adam,
        critic_opt: &mut Adam,
        rng: &mut rand::rngs::StdRng,
    ) {
        let batch = buffer.sample(rng, self.config.batch_size);
        let scale = 1.0 / batch.len() as f64;
        let state_dim = self.actor.input_dim();

        // ---- critic update: y = r + γ(1−done)·Q'(s', μ'(s'))
        let mut critic_grads = GradStore::zeros_like(&self.critic);
        for t in &batch {
            let mut target_q = t.reward;
            if !t.done {
                let a_next = actor_target.forward(&t.next_state);
                let mut q_in = t.next_state.clone();
                q_in.extend_from_slice(&a_next);
                target_q += self.config.gamma * critic_target.forward(&q_in)[0];
            }
            let mut q_in = t.state.clone();
            q_in.extend_from_slice(&t.action);
            let cache = self.critic.forward_cached(&q_in);
            let g = loss::mse_gradient(cache.output(), &[target_q]);
            self.critic.backward(&cache, &g, &mut critic_grads, scale);
        }
        critic_grads.clip_global_norm(10.0);
        critic_opt.step(&mut self.critic, &critic_grads);

        // ---- actor update: maximize Q(s, μ(s)) ⇒ dLoss/da = −dQ/da
        let mut actor_grads = GradStore::zeros_like(&self.actor);
        for t in &batch {
            let acache = self.actor.forward_cached(&t.state);
            let a = acache.output().to_vec();
            let mut q_in = t.state.clone();
            q_in.extend_from_slice(&a);
            let dq_dinput = self.critic.input_gradient(&q_in, &[1.0]);
            let dloss_da: Vec<f64> = dq_dinput[state_dim..].iter().map(|g| -g).collect();
            self.actor
                .backward(&acache, &dloss_da, &mut actor_grads, scale);
        }
        actor_grads.clip_global_norm(5.0);
        actor_opt.step(&mut self.actor, &actor_grads);

        soft_update(actor_target, &self.actor, self.config.soft_tau);
        soft_update(critic_target, &self.critic, self.config.soft_tau);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// 1-D point regulation identical to the PPO test MDP.
    struct PointMdp {
        x: f64,
        t: usize,
    }

    impl Mdp for PointMdp {
        fn state_dim(&self) -> usize {
            1
        }
        fn action_dim(&self) -> usize {
            1
        }
        fn action_bound(&self) -> f64 {
            1.0
        }
        fn reset(&mut self, rng: &mut dyn rand::RngCore) -> Vec<f64> {
            let mut r = rand::rngs::StdRng::from_rng(rng).expect("rng");
            self.x = r.gen_range(-1.0..=1.0);
            self.t = 0;
            vec![self.x]
        }
        fn step(&mut self, a: &[f64]) -> (Vec<f64>, f64, bool) {
            let act = a[0].clamp(-1.0, 1.0);
            self.x += 0.2 * act;
            self.t += 1;
            (
                vec![self.x],
                -self.x * self.x - 0.01 * act * act,
                self.t >= 25,
            )
        }
    }

    #[test]
    fn ddpg_improves_point_regulation() {
        let config = DdpgConfig {
            episodes: 40,
            warmup_steps: 200,
            hidden: 16,
            seed: 5,
            ..Default::default()
        };
        let mut mdp = PointMdp { x: 0.0, t: 0 };
        let trained = DdpgTrainer::new(&config, 1, 1).train(&mut mdp);
        let early: f64 = trained.history[..8]
            .iter()
            .map(|s| s.episode_return)
            .sum::<f64>()
            / 8.0;
        let late: f64 = trained.history[trained.history.len() - 8..]
            .iter()
            .map(|s| s.episode_return)
            .sum::<f64>()
            / 8.0;
        assert!(late > early, "no improvement: early {early} late {late}");
        // learned policy must push toward the origin
        let a_pos = trained.actor.forward(&[0.8])[0];
        let a_neg = trained.actor.forward(&[-0.8])[0];
        assert!(a_pos < 0.0, "at x=0.8 got {a_pos}");
        assert!(a_neg > 0.0, "at x=-0.8 got {a_neg}");
    }

    #[test]
    fn soft_update_interpolates() {
        let a = MlpBuilder::new(1)
            .output(1, Activation::Identity)
            .seed(1)
            .build();
        let b = MlpBuilder::new(1)
            .output(1, Activation::Identity)
            .seed(2)
            .build();
        let mut t = a.clone();
        soft_update(&mut t, &b, 1.0);
        assert_eq!(t, b, "τ=1 copies the source");
        let mut t2 = a.clone();
        soft_update(&mut t2, &b, 0.0);
        assert_eq!(t2, a, "τ=0 keeps the target");
        let mut t3 = a.clone();
        soft_update(&mut t3, &b, 0.5);
        let expect = 0.5 * a.layers()[0].weights()[(0, 0)] + 0.5 * b.layers()[0].weights()[(0, 0)];
        assert!((t3.layers()[0].weights()[(0, 0)] - expect).abs() < 1e-12);
    }

    #[test]
    fn actor_outputs_are_bounded() {
        let trainer = DdpgTrainer::new(
            &DdpgConfig {
                hidden: 8,
                ..Default::default()
            },
            2,
            1,
        );
        for s in [[0.0, 0.0], [100.0, -100.0]] {
            let a = trainer.actor.forward(&s);
            assert!(a[0].abs() <= 1.0);
        }
    }

    #[test]
    fn ou_noise_variant_also_learns() {
        let config = DdpgConfig {
            episodes: 40,
            warmup_steps: 200,
            hidden: 16,
            seed: 6,
            noise_kind: NoiseKind::OrnsteinUhlenbeck { theta: 0.15 },
            ..Default::default()
        };
        let mut mdp = PointMdp { x: 0.0, t: 0 };
        let trained = DdpgTrainer::new(&config, 1, 1).train(&mut mdp);
        let a_pos = trained.actor.forward(&[0.8])[0];
        assert!(
            a_pos < 0.0,
            "OU-trained policy should push x=0.8 down, got {a_pos}"
        );
    }

    #[test]
    fn training_is_seed_deterministic() {
        let config = DdpgConfig {
            episodes: 3,
            warmup_steps: 20,
            hidden: 8,
            seed: 9,
            ..Default::default()
        };
        let run = || {
            let mut mdp = PointMdp { x: 0.0, t: 0 };
            DdpgTrainer::new(&config, 1, 1).train(&mut mdp)
        };
        let a = run();
        let b = run();
        assert_eq!(a.actor, b.actor);
    }
}
