//! Generalized advantage estimation (the `Â` of Algorithm 1 line 9).

/// Computes GAE(λ) advantages and discounted returns for one episode.
///
/// `values` must hold one entry per state *including* the bootstrap value of
/// the final state (`rewards.len() + 1` entries). For terminal episodes pass
/// a bootstrap of 0.
///
/// Returns `(advantages, returns)` where `returns[t] = advantages[t] + values[t]`.
///
/// # Panics
///
/// Panics if `values.len() != rewards.len() + 1`, the episode is empty, or
/// `gamma`/`lambda` are outside `(0, 1]`.
///
/// # Examples
///
/// ```
/// use cocktail_rl::gae::gae;
///
/// // single-step episode: A = r + γ·V(s') − V(s)
/// let (adv, ret) = gae(&[1.0], &[0.5, 2.0], 0.9, 1.0);
/// assert!((adv[0] - (1.0 + 0.9 * 2.0 - 0.5)).abs() < 1e-12);
/// assert!((ret[0] - (adv[0] + 0.5)).abs() < 1e-12);
/// ```
pub fn gae(rewards: &[f64], values: &[f64], gamma: f64, lambda: f64) -> (Vec<f64>, Vec<f64>) {
    assert!(!rewards.is_empty(), "empty episode");
    assert_eq!(
        values.len(),
        rewards.len() + 1,
        "values must include the bootstrap entry"
    );
    assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
    assert!(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0, 1]");
    let n = rewards.len();
    let mut advantages = vec![0.0; n];
    let mut acc = 0.0;
    for t in (0..n).rev() {
        let delta = rewards[t] + gamma * values[t + 1] - values[t];
        acc = delta + gamma * lambda * acc;
        advantages[t] = acc;
    }
    let returns = advantages.iter().zip(values).map(|(a, v)| a + v).collect();
    (advantages, returns)
}

/// Plain discounted returns `G_t = Σ_k γ^k r_{t+k}` (no bootstrap) —
/// equivalent to [`gae`] with `λ = 1` and zero values, kept as an
/// independently-tested reference.
///
/// # Panics
///
/// Panics if the episode is empty or `gamma` is outside `(0, 1]`.
pub fn discounted_returns(rewards: &[f64], gamma: f64) -> Vec<f64> {
    assert!(!rewards.is_empty(), "empty episode");
    assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
    let mut out = vec![0.0; rewards.len()];
    let mut acc = 0.0;
    for t in (0..rewards.len()).rev() {
        acc = rewards[t] + gamma * acc;
        out[t] = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discounted_returns_geometric() {
        let r = discounted_returns(&[1.0, 1.0, 1.0], 0.5);
        assert_eq!(r, vec![1.75, 1.5, 1.0]);
    }

    #[test]
    fn gae_with_lambda_one_and_zero_values_is_discounted_return() {
        let rewards = [1.0, -2.0, 3.0];
        let values = [0.0; 4];
        let (adv, ret) = gae(&rewards, &values, 0.9, 1.0);
        let reference = discounted_returns(&rewards, 0.9);
        for (a, r) in adv.iter().zip(&reference) {
            assert!((a - r).abs() < 1e-12);
        }
        assert_eq!(adv, ret);
    }

    #[test]
    fn gae_lambda_zero_limit_is_td_error() {
        // λ → 0 reduces to one-step TD errors; use a tiny λ and compare
        let rewards = [1.0, 2.0];
        let values = [0.5, 1.0, 0.0];
        let (adv, _) = gae(&rewards, &values, 0.9, 1e-12);
        let td0 = 1.0 + 0.9 * 1.0 - 0.5;
        let td1 = 2.0 + 0.9 * 0.0 - 1.0;
        assert!((adv[0] - td0).abs() < 1e-9);
        assert!((adv[1] - td1).abs() < 1e-9);
    }

    #[test]
    fn perfect_value_function_gives_zero_advantage() {
        // rewards all 1, γ=1, V(s_t) = remaining reward
        let rewards = [1.0, 1.0, 1.0];
        let values = [3.0, 2.0, 1.0, 0.0];
        let (adv, ret) = gae(&rewards, &values, 1.0, 0.95);
        assert!(adv.iter().all(|a| a.abs() < 1e-12));
        for (r, v) in ret.iter().zip(&values) {
            assert!((r - v).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "bootstrap")]
    fn wrong_value_length_panics() {
        gae(&[1.0], &[0.0], 0.9, 0.9);
    }
}
