//! Reinforcement-learning substrate: PPO and DDPG.
//!
//! The Cocktail pipeline uses RL in three places, all served by this crate:
//!
//! 1. **Adaptive mixing** (the paper's core step) — [`ppo::PpoTrainer`]
//!    learns a Gaussian policy over the continuous weight vector
//!    `a ∈ [-A_B, A_B]ⁿ` of the mixing MDP ([`mdp::MixingMdp`]), maximizing
//!    the safety-punishment / energy reward of Section III-A;
//! 2. **The switching baseline `A_S`** — [`ppo::PpoTrainer`] in categorical
//!    mode ([`mdp::SwitchingMdp`]) learns which single expert to activate,
//!    reproducing the discrete-adaptation method of \[4\] that the paper
//!    compares against;
//! 3. **Expert training** (Remark 1 / Section IV) — [`ddpg::DdpgTrainer`]
//!    trains neural experts directly on the plant
//!    ([`mdp::DirectControlMdp`]), mirroring the paper's DDPG-with-
//!    different-hyperparameters expert construction.
//!
//! Everything is seeded and CPU-sized: the networks have a few thousand
//! parameters and the plants a handful of dimensions, so full training runs
//! take seconds to minutes.
//!
//! # Examples
//!
//! Train a PPO mixing policy on a toy double-integrator MDP:
//!
//! ```
//! use cocktail_rl::mdp::Mdp;
//! use cocktail_rl::ppo::{PpoConfig, PpoTrainer};
//!
//! // a tiny MDP: state x ∈ R, action a ∈ [-1,1], reward -x², x' = x + 0.1 a
//! struct Toy { x: f64, t: usize }
//! impl Mdp for Toy {
//!     fn state_dim(&self) -> usize { 1 }
//!     fn action_dim(&self) -> usize { 1 }
//!     fn action_bound(&self) -> f64 { 1.0 }
//!     fn reset(&mut self, rng: &mut dyn rand::RngCore) -> Vec<f64> {
//!         use rand::Rng;
//!         self.x = rng.gen_range(-1.0..=1.0); self.t = 0; vec![self.x]
//!     }
//!     fn step(&mut self, a: &[f64]) -> (Vec<f64>, f64, bool) {
//!         self.x += 0.1 * a[0].clamp(-1.0, 1.0);
//!         self.t += 1;
//!         (vec![self.x], -self.x * self.x, self.t >= 20)
//!     }
//! }
//! let mut mdp = Toy { x: 0.0, t: 0 };
//! let config = PpoConfig { iterations: 3, episodes_per_iteration: 4, ..PpoConfig::default() };
//! let trained = PpoTrainer::new(&config, 1, 1).train(&mut mdp);
//! assert_eq!(trained.policy.mean_net().input_dim(), 1);
//! ```

pub mod buffer;
pub mod ddpg;
pub mod gae;
pub mod gaussian;
pub mod mdp;
pub mod noise;
pub mod ppo;
pub mod reward;

pub use ddpg::{DdpgConfig, DdpgTrainer};
pub use mdp::{DirectControlMdp, EpisodeFactory, Mdp, MixingMdp, SwitchingMdp};
pub use ppo::{PpoCheckpoint, PpoConfig, PpoSession, PpoTrainer, TrainedPolicy};
pub use reward::RewardConfig;
