//! Property-based tests of the RL substrate: GAE identities, Gaussian
//! policy-head calculus and replay-buffer behaviour.

use cocktail_rl::buffer::{ReplayBuffer, Transition};
use cocktail_rl::gae::{discounted_returns, gae};
use cocktail_rl::gaussian;
use proptest::prelude::*;

fn reward_vec() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0..10.0f64, 1..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gae_returns_equal_adv_plus_value(rewards in reward_vec(), gamma in 0.5..1.0f64, lambda in 0.5..1.0f64) {
        let values: Vec<f64> = (0..=rewards.len()).map(|i| (i as f64 * 0.37).sin()).collect();
        let (adv, ret) = gae(&rewards, &values, gamma, lambda);
        for i in 0..rewards.len() {
            prop_assert!((ret[i] - (adv[i] + values[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn gae_lambda_one_zero_values_is_discounted_return(rewards in reward_vec(), gamma in 0.5..1.0f64) {
        let values = vec![0.0; rewards.len() + 1];
        let (adv, _) = gae(&rewards, &values, gamma, 1.0);
        let reference = discounted_returns(&rewards, gamma);
        for (a, r) in adv.iter().zip(&reference) {
            prop_assert!((a - r).abs() < 1e-9 * (1.0 + r.abs()));
        }
    }

    #[test]
    fn perfect_values_zero_advantage(rewards in reward_vec(), lambda in 0.5..1.0f64) {
        // V(s_t) = exact remaining undiscounted reward ⇒ every TD error is 0
        let mut values = vec![0.0; rewards.len() + 1];
        for t in (0..rewards.len()).rev() {
            values[t] = rewards[t] + values[t + 1];
        }
        let (adv, _) = gae(&rewards, &values, 1.0, lambda);
        for a in &adv {
            prop_assert!(a.abs() < 1e-9);
        }
    }

    #[test]
    fn log_prob_maximized_at_mean(a0 in -3.0..3.0f64, a1 in -3.0..3.0f64,
                                  ls0 in -1.0..0.5f64, ls1 in -1.0..0.5f64,
                                  off in 0.01..2.0f64) {
        let mean = [a0, a1];
        let ls = [ls0, ls1];
        let at_mean = gaussian::log_prob(&mean, &mean, &ls);
        let shifted = [a0 + off, a1];
        prop_assert!(at_mean > gaussian::log_prob(&shifted, &mean, &ls));
    }

    #[test]
    fn kl_is_nonnegative_and_zero_iff_equal(
        m0 in -2.0..2.0f64, m1 in -2.0..2.0f64,
        ls0 in -1.0..0.5f64, ls1 in -1.0..0.5f64,
        dm in -1.0..1.0f64, dls in -0.5..0.5f64,
    ) {
        let mean_old = [m0, m1];
        let ls_old = [ls0, ls1];
        let mean_new = [m0 + dm, m1];
        let ls_new = [ls0 + dls, ls1];
        let kl = gaussian::kl_divergence(&mean_old, &ls_old, &mean_new, &ls_new);
        prop_assert!(kl >= -1e-12);
        if dm.abs() < 1e-12 && dls.abs() < 1e-12 {
            prop_assert!(kl.abs() < 1e-9);
        }
    }

    #[test]
    fn gaussian_gradients_match_finite_differences(
        a in -2.0..2.0f64, m in -2.0..2.0f64, ls in -1.0..0.5f64,
    ) {
        let action = [a];
        let mean = [m];
        let log_std = [ls];
        let gm = gaussian::grad_mean(&action, &mean, &log_std)[0];
        let gs = gaussian::grad_log_std(&action, &mean, &log_std)[0];
        let h = 1e-6;
        let fd_m = (gaussian::log_prob(&action, &[m + h], &log_std)
            - gaussian::log_prob(&action, &[m - h], &log_std))
            / (2.0 * h);
        let fd_s = (gaussian::log_prob(&action, &mean, &[ls + h])
            - gaussian::log_prob(&action, &mean, &[ls - h]))
            / (2.0 * h);
        prop_assert!((gm - fd_m).abs() < 1e-5);
        prop_assert!((gs - fd_s).abs() < 1e-5);
    }

    #[test]
    fn replay_buffer_never_exceeds_capacity(cap in 1usize..64, pushes in 0usize..200) {
        let mut buf = ReplayBuffer::new(cap);
        for i in 0..pushes {
            buf.push(Transition {
                state: vec![i as f64],
                action: vec![0.0],
                reward: i as f64,
                next_state: vec![0.0],
                done: false,
            });
        }
        prop_assert!(buf.len() <= cap);
        prop_assert_eq!(buf.len(), pushes.min(cap));
        if !buf.is_empty() {
            // the surviving transitions are the newest ones
            let mut r = cocktail_math::rng::seeded(0);
            let newest_cutoff = pushes.saturating_sub(cap) as f64;
            for t in buf.sample(&mut r, 32) {
                prop_assert!(t.reward >= newest_cutoff);
            }
        }
    }
}
