//! The tracked performance baseline behind `BENCH_pr10.json`.
//!
//! Four measurements, chosen to cover the layers the batched/parallel
//! kernels rewrote plus the telemetry layer:
//!
//! 1. **Forward throughput** — per-sample [`cocktail_nn::Mlp::forward`]
//!    versus [`cocktail_nn::Mlp::forward_batch_cached`] at batch 64 on the
//!    Table-1 student shape (2-24-24-1), in samples/second, plus the two
//!    certified fast serving tiers (Padé fast-tanh and the `f32`
//!    quantized kernel) measured over the same batch;
//! 2. **Rollout throughput** — Monte-Carlo evaluation of a stabilizing
//!    controller on the Van der Pol oscillator with 1 worker versus the
//!    machine's full worker count, in episodes/second;
//! 3. **End-to-end wall time** — one smoke-preset Cocktail pipeline run
//!    (PPO mixing + dataset + both distillations) on the oscillator;
//! 4. **Telemetry overhead** — robust-distillation epoch throughput under
//!    the zero-cost [`cocktail_obs::NullSink`] versus a recording
//!    [`cocktail_obs::InMemorySink`];
//! 5. **Serving** — bundle admission wall time, single-request p50
//!    latency through the micro-batching engine, loaded tail latency
//!    (p99/p999) under 32 concurrent submitters, sustained in-process
//!    throughput with 1, 8 and 32 concurrent submitters, and aggregate
//!    throughput across 1 versus 4 engine shards;
//! 6. **Verification** — wall time of one full safety certification
//!    (Bernstein certificate with partition refinement, closed-loop
//!    reachability, control-invariant fixpoint) of a student controller,
//!    the paper's Property-3 metric, with the resulting partition size
//!    and verdict recorded for trend-watching.
//!
//! Every timed section runs once untimed (warm-up) and then
//! [`PerfConfig::repeats`] times, each repeat keeping the best of a few
//! back-to-back trials (preemption on shared hosts only ever slows a
//! trial down, never speeds it up); the report carries the **median**
//! throughput and the relative **spread** `(max - min) / median` so noisy
//! hosts are visible in the artifact instead of silently skewing a single
//! sample. [`check_spread`] is the CI gate on that noise.
//!
//! The `perf` binary writes the report as JSON; re-reading it through
//! [`PerfReport`] is the schema check CI runs.

use cocktail_control::LinearFeedbackController;
use cocktail_core::experiment::Preset;
use cocktail_core::metrics::{evaluate_with_workers, EvalConfig};
use cocktail_core::pipeline::Cocktail;
use cocktail_core::SystemId;
use cocktail_distill::{DistillConfig, RobustDistillSession, TeacherDataset};
use cocktail_math::{parallel, Matrix};
use cocktail_nn::{Activation, BatchCache, MlpBuilder};
use cocktail_obs::{InMemorySink, Telemetry};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Schema version of [`PerfReport`]; bump on any shape change.
///
/// v2: scalar throughputs became [`Measurement`] (median + spread over
/// warm-started repeats) and the `telemetry` section was added.
/// v3: the `serve` section (admission time, serving latency/throughput)
/// was added.
/// v4: the `serve` section grew `cores`, loaded tail latencies
/// (p99/p999), and the 1-versus-4 shard aggregate throughputs with
/// `shard_speedup`; serving throughput moved to the zero-deadline
/// batching policy.
/// v5: the `forward` section grew the certified fast-tier arms
/// (`fast_tanh_samples_per_sec`, `f32_samples_per_sec`) with their
/// speedups over the per-sample exact path.
/// v6: the `verify` section (full safety-certification wall time with
/// partition size and verdict) was added.
pub const SCHEMA_VERSION: u32 = 6;

/// One repeated timing: the median across repeats and the relative
/// spread `(max - min) / median`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Measurement {
    /// Median of the per-repeat values.
    pub median: f64,
    /// `(max - min) / median` across the repeats; 0 for a single repeat.
    pub spread: f64,
}

impl Measurement {
    /// Aggregates raw per-repeat values.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains a non-finite value.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "measurement needs at least one repeat");
        assert!(
            samples.iter().all(|v| v.is_finite()),
            "measurement repeats must be finite"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = sorted.len();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        let spread = if median == 0.0 {
            0.0
        } else {
            (sorted[n - 1] - sorted[0]) / median
        };
        Self { median, spread }
    }
}

/// Back-to-back trials folded into one recorded repeat. On shared
/// hosts, scheduler preemption and steal time only ever make a trial
/// *slower*, so keeping the best of a few trials per repeat estimates
/// the machine's unloaded speed and keeps the spread gate (< 30%)
/// about the harness rather than about neighbor tenants.
const TRIALS_PER_REPEAT: usize = 3;

/// Long-running sections (the rollout loops take hundreds of
/// milliseconds per trial) integrate over more scheduler interference
/// per trial, so they need more chances at an unloaded run: the PR-5
/// baseline's `rollout.serial` spread hit 0.27 with best-of-3, a hair
/// under the 0.30 gate. Best-of-5 keeps those sections comfortably
/// inside it.
const SLOW_TRIALS_PER_REPEAT: usize = 5;

/// Runs `once` a single untimed warm-up pass, then `repeats` timed
/// repeats, each recording the best (highest) of `trials` back-to-back
/// trials. `once` must return a throughput — for time-valued samples use
/// [`measure_time_with`].
fn measure_with(repeats: usize, trials: usize, mut once: impl FnMut() -> f64) -> Measurement {
    let _warmup = once();
    let samples: Vec<f64> = (0..repeats.max(1))
        .map(|_| (0..trials.max(1)).map(|_| once()).fold(f64::MIN, f64::max))
        .collect();
    Measurement::from_samples(&samples)
}

/// [`measure_with`] at the default [`TRIALS_PER_REPEAT`].
fn measure(repeats: usize, once: impl FnMut() -> f64) -> Measurement {
    measure_with(repeats, TRIALS_PER_REPEAT, once)
}

/// [`measure_with`] for time-valued samples (wall milliseconds,
/// latencies): the best of `trials` is the *minimum*.
fn measure_time_with(repeats: usize, trials: usize, mut once: impl FnMut() -> f64) -> Measurement {
    let _warmup = once();
    let samples: Vec<f64> = (0..repeats.max(1))
        .map(|_| (0..trials.max(1)).map(|_| once()).fold(f64::MAX, f64::min))
        .collect();
    Measurement::from_samples(&samples)
}

/// [`measure_time_with`] at the default [`TRIALS_PER_REPEAT`].
fn measure_time(repeats: usize, once: impl FnMut() -> f64) -> Measurement {
    measure_time_with(repeats, TRIALS_PER_REPEAT, once)
}

/// Batched-versus-per-sample forward throughput.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForwardBench {
    /// Network shape, e.g. `"2-24-24-1"`.
    pub shape: String,
    /// Rows per batched call.
    pub batch: usize,
    /// Per-sample `forward` throughput in samples/second.
    pub per_sample_samples_per_sec: Measurement,
    /// `forward_batch_cached` throughput in samples/second.
    pub batched_samples_per_sec: Measurement,
    /// Batched throughput with the certified Padé fast-tanh kernel
    /// (`ForwardKernel::FastTanh`), in samples/second.
    pub fast_tanh_samples_per_sec: Measurement,
    /// Batched throughput of the `f32`-quantized tier (`MlpF32`), in
    /// samples/second.
    pub f32_samples_per_sec: Measurement,
    /// Batched over per-sample median throughput (both exact).
    pub speedup: f64,
    /// Fast-tanh batched over per-sample exact median throughput.
    pub fast_tanh_speedup: f64,
    /// `f32` batched over per-sample exact median throughput.
    pub f32_speedup: f64,
}

/// Batched-versus-per-sample training-step (forward + backward) throughput.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainStepBench {
    /// Network shape, e.g. `"2-24-24-1"`.
    pub shape: String,
    /// Rows per batched step.
    pub batch: usize,
    /// Per-sample `forward_cached` + `backward` throughput in samples/second.
    pub per_sample_samples_per_sec: Measurement,
    /// `forward_batch_cached` + `backward_batch` throughput in samples/second.
    pub batched_samples_per_sec: Measurement,
    /// Batched over per-sample median throughput.
    pub speedup: f64,
}

/// Serial-versus-parallel Monte-Carlo rollout throughput.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RolloutBench {
    /// Evaluated episodes per configuration.
    pub episodes: usize,
    /// Worker count of the parallel configuration.
    pub workers: usize,
    /// Single-worker throughput in episodes/second.
    pub serial_episodes_per_sec: Measurement,
    /// Full-worker throughput in episodes/second.
    pub parallel_episodes_per_sec: Measurement,
    /// Parallel over serial median throughput.
    pub speedup: f64,
}

/// Wall time of one full pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EndToEndBench {
    /// Benchmark system.
    pub system: String,
    /// Pipeline preset.
    pub preset: String,
    /// Wall-clock milliseconds.
    pub wall_ms: Measurement,
}

/// Robust-distillation epoch throughput under the zero-cost
/// [`cocktail_obs::NullSink`] versus a recording sink.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetryBench {
    /// Epochs per timed repeat.
    pub epochs: usize,
    /// Epoch throughput with the default `NullSink`.
    pub null_epochs_per_sec: Measurement,
    /// Epoch throughput with an `InMemorySink` recording every event.
    pub recording_epochs_per_sec: Measurement,
    /// Null-sink over recording-sink median throughput (≥ 1 means the
    /// disabled path is at least as fast, i.e. instrumentation is free
    /// when nobody listens).
    pub overhead_ratio: f64,
}

/// Serving-runtime measurements: how long admission takes, what one
/// request costs, what the micro-batcher sustains under concurrency, and
/// how aggregate throughput scales across engine shards.
///
/// Shard scaling is only expected to show on multi-core hosts — each
/// shard is one worker thread, so on a single hardware core the 4-shard
/// configuration measures context-switch overhead, not parallelism.
/// `cores` records what the benchmark machine offered so the artifact is
/// interpretable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBench {
    /// Requests per throughput repeat.
    pub requests: usize,
    /// Hardware threads available to the benchmark process.
    pub cores: usize,
    /// Wall time of one full admission (validation + fresh lint run +
    /// certificate recomputation + empirical sweep + safety-cert
    /// re-derivation at the bundle's own budget tier), in milliseconds.
    pub admission_ms: Measurement,
    /// p50 latency of sequential single requests through the engine
    /// (`max_batch` 1, zero deadline), in microseconds.
    pub single_p50_latency_us: Measurement,
    /// p99 per-request latency under 32 concurrent in-process
    /// connections, in microseconds.
    pub loaded_p99_latency_us: Measurement,
    /// p999 per-request latency under the same loaded drill.
    pub loaded_p999_latency_us: Measurement,
    /// Throughput with 1 blocking submitter, requests/second.
    pub batch1_requests_per_sec: Measurement,
    /// Throughput with 8 concurrent blocking submitters.
    pub batch8_requests_per_sec: Measurement,
    /// Throughput with 32 concurrent blocking submitters.
    pub batch32_requests_per_sec: Measurement,
    /// 32-submitter over 1-submitter median throughput.
    pub batch_speedup: f64,
    /// Aggregate throughput of 32 submitters over 1 engine shard.
    pub shard1_requests_per_sec: Measurement,
    /// Aggregate throughput of the same 32 submitters over 4 shards.
    pub shard4_requests_per_sec: Measurement,
    /// 4-shard over 1-shard median throughput.
    pub shard_speedup: f64,
}

/// Wall time of one full safety certification — Bernstein certificate
/// with partition refinement, closed-loop reachability, and the
/// control-invariant fixpoint — of a student controller on the Van der
/// Pol oscillator (the paper's Property-3 measurement). The certificate
/// is asserted bit-identical across repeats: certification is
/// deterministic, so the bench doubles as a re-derivation drill.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerifyBench {
    /// Student shape, e.g. `"2-12-1"`.
    pub shape: String,
    /// Bernstein partition pieces of the resulting certificate — the
    /// paper's verification-cost driver.
    pub pieces: usize,
    /// Largest per-piece Bernstein approximation error of the result.
    pub epsilon: f64,
    /// Verdict label of the result (`"safe"` / `"not-proven"`).
    pub verdict: String,
    /// Wall-clock milliseconds of one full certification.
    pub certify_ms: Measurement,
}

/// The full machine-readable perf baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfReport {
    /// Must equal [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Forward-kernel measurement.
    pub forward: ForwardBench,
    /// Training-step measurement.
    pub train_step: TrainStepBench,
    /// Rollout-throughput measurement.
    pub rollout: RolloutBench,
    /// End-to-end pipeline measurement.
    pub end_to_end: EndToEndBench,
    /// Telemetry-sink overhead measurement.
    pub telemetry: TelemetryBench,
    /// Serving-runtime measurement.
    pub serve: ServeBench,
    /// Safety-certification measurement.
    pub verify: VerifyBench,
}

/// Knobs for a perf run; `fast` shrinks everything for CI smoke runs.
#[derive(Debug, Clone, Copy)]
pub struct PerfConfig {
    /// Repetitions of the forward measurement loops (per timed repeat).
    pub forward_reps: usize,
    /// Episodes per rollout configuration.
    pub rollout_episodes: usize,
    /// Distillation epochs per telemetry repeat.
    pub distill_epochs: usize,
    /// Requests per serving-throughput repeat.
    pub serve_requests: usize,
    /// Timed repeats per section (after one untimed warm-up).
    pub repeats: usize,
}

impl PerfConfig {
    /// Full-fidelity settings for the committed baseline.
    pub fn full() -> Self {
        Self {
            forward_reps: 20_000,
            rollout_episodes: 400,
            distill_epochs: 30,
            serve_requests: 4_000,
            repeats: 5,
        }
    }

    /// Reduced settings for CI smoke runs (seconds, not minutes).
    pub fn fast() -> Self {
        Self {
            forward_reps: 2_000,
            rollout_episodes: 60,
            distill_epochs: 10,
            serve_requests: 800,
            repeats: 3,
        }
    }
}

/// Measures per-sample versus batched forward throughput at batch 64 on
/// the Table-1 student shape.
pub fn bench_forward(config: &PerfConfig) -> ForwardBench {
    let net = MlpBuilder::new(2)
        .hidden(24, Activation::Tanh)
        .hidden(24, Activation::Tanh)
        .output(1, Activation::Identity)
        .seed(2)
        .build();
    let batch = 64;
    let xs: Vec<Vec<f64>> = (0..batch)
        .map(|i| {
            (0..2)
                .map(|d| ((i * 7 + d * 13) % 23) as f64 / 11.5 - 1.0)
                .collect()
        })
        .collect();
    let x = Matrix::from_rows(xs.clone());
    let reps = config.forward_reps.max(1);
    let samples = (reps * batch) as f64;
    let mut sink = 0.0;

    let per_sample = measure(config.repeats, || {
        let t = Instant::now();
        for _ in 0..reps {
            for row in &xs {
                sink += net.forward(row)[0];
            }
        }
        samples / t.elapsed().as_secs_f64()
    });

    let mut cache = BatchCache::new();
    let batched = measure(config.repeats, || {
        let t = Instant::now();
        for _ in 0..reps {
            net.forward_batch_cached(&x, &mut cache);
            sink += cache.output().row(0)[0];
        }
        samples / t.elapsed().as_secs_f64()
    });

    // fast tiers: same batched loop, reduced-precision kernels. Their
    // outputs carry a certified error bound rather than bit-identity, so
    // the bench only keeps them finite; the equivalence tests live in
    // cocktail-nn / cocktail-serve.
    let fast_tanh = measure(config.repeats, || {
        let t = Instant::now();
        for _ in 0..reps {
            net.forward_batch_cached_kernel(&x, &mut cache, cocktail_nn::ForwardKernel::FastTanh);
            sink += cache.output().row(0)[0];
        }
        samples / t.elapsed().as_secs_f64()
    });

    let net32 = cocktail_nn::MlpF32::quantize(&net).expect("tanh net quantizes");
    let mut out32 = Matrix::zeros(batch, 1);
    let mut cache32 = cocktail_nn::BatchCacheF32::new();
    let f32_tier = measure(config.repeats, || {
        let t = Instant::now();
        for _ in 0..reps {
            net32.forward_batch_into(&x, &mut out32, &mut cache32);
            sink += out32.row(0)[0];
        }
        samples / t.elapsed().as_secs_f64()
    });
    assert!(sink.is_finite(), "benchmark outputs must stay finite");

    ForwardBench {
        shape: "2-24-24-1".to_string(),
        batch,
        speedup: batched.median / per_sample.median,
        fast_tanh_speedup: fast_tanh.median / per_sample.median,
        f32_speedup: f32_tier.median / per_sample.median,
        per_sample_samples_per_sec: per_sample,
        batched_samples_per_sec: batched,
        fast_tanh_samples_per_sec: fast_tanh,
        f32_samples_per_sec: f32_tier,
    }
}

/// Measures per-sample versus batched training-step throughput (forward
/// plus backward with gradient accumulation) at batch 64 on the Table-1
/// student shape.
pub fn bench_train_step(config: &PerfConfig) -> TrainStepBench {
    use cocktail_nn::{loss, GradStore};
    let net = MlpBuilder::new(2)
        .hidden(24, Activation::Tanh)
        .hidden(24, Activation::Tanh)
        .output(1, Activation::Identity)
        .seed(3)
        .build();
    let batch = 64;
    let xs: Vec<Vec<f64>> = (0..batch)
        .map(|i| {
            (0..2)
                .map(|d| ((i * 5 + d * 11) % 19) as f64 / 9.5 - 1.0)
                .collect()
        })
        .collect();
    let x = Matrix::from_rows(xs.clone());
    let reps = (config.forward_reps / 4).max(1);
    let samples = (reps * batch) as f64;
    let scale = 1.0 / batch as f64;
    let mut grads = GradStore::zeros_like(&net);

    let per_sample = measure(config.repeats, || {
        let t = Instant::now();
        for _ in 0..reps {
            grads.reset();
            for row in &xs {
                let cache = net.forward_cached(row);
                let g = loss::mse_gradient(cache.output(), &[0.5]);
                net.backward(&cache, &g, &mut grads, scale);
            }
        }
        samples / t.elapsed().as_secs_f64()
    });

    let mut cache = BatchCache::new();
    let batched = measure(config.repeats, || {
        let t = Instant::now();
        for _ in 0..reps {
            grads.reset();
            net.forward_batch_cached(&x, &mut cache);
            let mut g = Matrix::zeros(batch, 1);
            for r in 0..batch {
                g.row_mut(r)
                    .copy_from_slice(&loss::mse_gradient(cache.output().row(r), &[0.5]));
            }
            net.backward_batch(&cache, &g, &mut grads, scale);
        }
        samples / t.elapsed().as_secs_f64()
    });

    TrainStepBench {
        shape: "2-24-24-1".to_string(),
        batch,
        speedup: batched.median / per_sample.median,
        per_sample_samples_per_sec: per_sample,
        batched_samples_per_sec: batched,
    }
}

/// Measures Monte-Carlo rollout throughput with 1 worker versus the full
/// worker count on the Van der Pol oscillator.
pub fn bench_rollout(config: &PerfConfig) -> RolloutBench {
    let sys = cocktail_env::systems::VanDerPol::new();
    let controller = LinearFeedbackController::new(Matrix::from_rows(vec![vec![3.0, 4.0]]));
    let episodes = config.rollout_episodes.max(1);
    let eval_cfg = EvalConfig {
        samples: episodes,
        seed: 7,
        ..Default::default()
    };
    let workers = parallel::default_workers();

    let mut serial_eval = None;
    let serial = measure_with(config.repeats, SLOW_TRIALS_PER_REPEAT, || {
        let t = Instant::now();
        serial_eval = Some(evaluate_with_workers(&sys, &controller, &eval_cfg, 1));
        episodes as f64 / t.elapsed().as_secs_f64()
    });

    let mut par_eval = None;
    let par = measure_with(config.repeats, SLOW_TRIALS_PER_REPEAT, || {
        let t = Instant::now();
        par_eval = Some(evaluate_with_workers(&sys, &controller, &eval_cfg, workers));
        episodes as f64 / t.elapsed().as_secs_f64()
    });

    assert_eq!(
        serial_eval, par_eval,
        "parallel evaluation must be bit-identical"
    );
    RolloutBench {
        episodes,
        workers,
        speedup: par.median / serial.median,
        serial_episodes_per_sec: serial,
        parallel_episodes_per_sec: par,
    }
}

/// Times one smoke-preset pipeline run on the oscillator, per repeat.
pub fn bench_end_to_end(config: &PerfConfig) -> EndToEndBench {
    let sys = SystemId::Oscillator;
    let experts = cocktail_core::experts::cloned_experts(sys, 0);
    let wall_ms = measure_time(config.repeats, || {
        let t = Instant::now();
        let result = Cocktail::new(sys, experts.clone())
            .with_config(Preset::Smoke.config())
            .run();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(result.kappa_star.lipschitz_constant().is_finite());
        ms
    });
    EndToEndBench {
        system: "oscillator".to_string(),
        preset: "smoke".to_string(),
        wall_ms,
    }
}

/// Measures robust-distillation epoch throughput with the default
/// `NullSink` against an `InMemorySink` recording every event. The
/// trained students are asserted bit-identical: telemetry observes, it
/// never perturbs.
pub fn bench_telemetry(config: &PerfConfig) -> TelemetryBench {
    let sys = SystemId::Oscillator.dynamics();
    let teacher = LinearFeedbackController::new(Matrix::from_rows(vec![vec![3.0, 4.0]]));
    let data = TeacherDataset::sample_uniform(&teacher, &sys.verification_domain(), 512, 9);
    let distill = DistillConfig {
        epochs: config.distill_epochs.max(1),
        hidden: 16,
        ..Default::default()
    };
    let epochs = distill.epochs;

    let run_with = |tel: Option<Arc<dyn Telemetry>>| -> (f64, Vec<u8>) {
        let mut session = RobustDistillSession::new(&data, &distill);
        if let Some(tel) = tel {
            session.set_telemetry(tel);
        }
        let t = Instant::now();
        while !session.is_complete() {
            session.step_epoch(&data);
        }
        let rate = epochs as f64 / t.elapsed().as_secs_f64();
        let fingerprint = serde_json::to_string(&session.finish().network())
            .expect("network serializes")
            .into_bytes();
        (rate, fingerprint)
    };

    let mut null_print = None;
    let null = measure(config.repeats, || {
        let (rate, print) = run_with(None);
        null_print = Some(print);
        rate
    });
    let mut rec_print = None;
    let recording = measure(config.repeats, || {
        let (rate, print) = run_with(Some(Arc::new(InMemorySink::new())));
        rec_print = Some(print);
        rate
    });
    assert_eq!(
        null_print, rec_print,
        "telemetry must not perturb the trained student"
    );

    TelemetryBench {
        epochs,
        overhead_ratio: null.median / recording.median,
        null_epochs_per_sec: null,
        recording_epochs_per_sec: recording,
    }
}

/// Measures the serving runtime: admission wall time, single-request p50
/// latency, loaded tail latency (p99/p999) under 32 in-process
/// connections, sustained throughput with 1, 8 and 32 blocking
/// submitters feeding the micro-batcher, and the aggregate throughput of
/// 32 submitters over 1 versus 4 engine shards.
///
/// # Panics
///
/// Panics if the benchmark student fails packaging or admission, or if
/// any served request errors or mismatches the per-sample reference —
/// the bench doubles as a smoke test.
#[allow(
    clippy::too_many_lines,
    reason = "one measurement block per ServeBench field; splitting would scatter the shared engine setup"
)]
pub fn bench_serve(config: &PerfConfig) -> ServeBench {
    use cocktail_obs::NullSink;
    use cocktail_serve::bundle::{fnv1a_64, ControllerBundle, Provenance};
    use cocktail_serve::loadgen::LoadGenConfig;
    use cocktail_serve::{admit, loadgen, Engine, EngineConfig};
    use std::time::Duration;

    let net = MlpBuilder::new(2)
        .hidden(24, Activation::Tanh)
        .hidden(24, Activation::Tanh)
        .output(1, Activation::Tanh)
        .seed(4)
        .build();
    // the bundle ships the coarse `fast_params` safety certificate:
    // admission re-derives whatever tier the bundle carries, and since
    // v3 that re-derivation dominates admission wall time — the
    // *certification* cost at a fixed tier is bench_verify's
    // measurement, while admission_ms tracks the gate overhead around
    // it (export-quality budgets would also make the debug-mode bench
    // tests take minutes per admission)
    let safety_params = cocktail_verify::fast_params(SystemId::Oscillator.dynamics().as_ref());
    let bundle = ControllerBundle::package_with(
        SystemId::Oscillator,
        net,
        vec![20.0],
        Provenance {
            seed: 4,
            config_hash: fnv1a_64(b"bench-serve"),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
        },
        Some(&safety_params),
        &NullSink,
    )
    .expect("benchmark student packages");
    let requests = config.serve_requests.max(32);
    let states = loadgen::generate_states(&bundle, requests, 0xBE7C);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let admission_ms = measure_time(config.repeats, || {
        let t = Instant::now();
        admit(bundle.clone()).expect("benchmark bundle admits");
        t.elapsed().as_secs_f64() * 1e3
    });
    let admitted = admit(bundle.clone()).expect("benchmark bundle admits");

    // single-request p50: no batching, sequential submits
    let single = Engine::start_with(
        &admitted,
        EngineConfig {
            max_batch: 1,
            batch_deadline: Duration::ZERO,
            ..EngineConfig::default()
        },
        None,
        Arc::new(NullSink),
    )
    .expect("engine starts");
    let handle = single.handle();
    let single_p50_latency_us = measure_time(config.repeats, || {
        let mut latencies: Vec<f64> = states
            .iter()
            .map(|s| {
                let t = Instant::now();
                handle.submit(s).expect("request serves");
                t.elapsed().as_secs_f64() * 1e6
            })
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        latencies[latencies.len() / 2]
    });
    drop(single);

    // sustained throughput: zero-deadline serve-what-is-queued batching,
    // submitters shard-pinned the way TCP connections are
    let throughput_with = |submitters: usize, shards: usize| -> Measurement {
        let engine = Engine::start_with(
            &admitted,
            EngineConfig {
                max_batch: submitters.max(1),
                batch_deadline: Duration::ZERO,
                queue_capacity: 4 * submitters.max(1),
                shards,
                ..EngineConfig::default()
            },
            None,
            Arc::new(NullSink),
        )
        .expect("engine starts");
        let handle = engine.handle();
        measure(config.repeats, || {
            let t = Instant::now();
            std::thread::scope(|scope| {
                for w in 0..submitters {
                    let pinned = handle.pinned(w as u64);
                    let states = &states;
                    scope.spawn(move || {
                        for s in states.iter().skip(w).step_by(submitters) {
                            pinned.submit(s).expect("request serves");
                        }
                    });
                }
            });
            #[allow(
                clippy::cast_precision_loss,
                reason = "request counts are far below 2^52"
            )]
            {
                states.len() as f64 / t.elapsed().as_secs_f64()
            }
        })
    };
    let batch1 = throughput_with(1, 1);
    let batch8 = throughput_with(8, 1);
    let batch32 = throughput_with(32, 1);
    // the 1-shard arm of the shard comparison IS the 32-submitter run:
    // same submitters, same engine config, shards is the only variable
    let shard1 = batch32;
    let shard4 = throughput_with(32, 4);

    // loaded tails: the loadgen drill doubles as a correctness oracle, so
    // a mismatch or fallback here fails the bench outright
    let loaded = Engine::start_with(
        &admitted,
        EngineConfig {
            queue_capacity: 4 * 32,
            ..EngineConfig::default()
        },
        None,
        Arc::new(NullSink),
    )
    .expect("engine starts");
    let loaded_handle = loaded.handle();
    let drill_cfg = LoadGenConfig {
        requests,
        connections: 32,
        seed: 0xBE7C,
        ..LoadGenConfig::default()
    };
    let drill = || {
        let report = loadgen::run_in_process(&bundle, &loaded_handle, &drill_cfg)
            .expect("mlp bundle drills");
        assert!(report.is_clean(), "loaded drill must be clean: {report:?}");
        (report.p99_latency_us, report.p999_latency_us)
    };
    let _warmup = drill();
    let mut p99s = Vec::with_capacity(config.repeats.max(1));
    let mut p999s = Vec::with_capacity(config.repeats.max(1));
    for _ in 0..config.repeats.max(1) {
        let (mut best99, mut best999) = (f64::MAX, f64::MAX);
        for _ in 0..TRIALS_PER_REPEAT {
            let (p99, p999) = drill();
            best99 = best99.min(p99);
            best999 = best999.min(p999);
        }
        p99s.push(best99);
        p999s.push(best999);
    }
    drop(loaded);

    ServeBench {
        requests,
        cores,
        admission_ms,
        single_p50_latency_us,
        loaded_p99_latency_us: Measurement::from_samples(&p99s),
        loaded_p999_latency_us: Measurement::from_samples(&p999s),
        batch_speedup: batch32.median / batch1.median,
        shard_speedup: shard4.median / shard1.median,
        batch1_requests_per_sec: batch1,
        batch8_requests_per_sec: batch8,
        batch32_requests_per_sec: batch32,
        shard1_requests_per_sec: shard1,
        shard4_requests_per_sec: shard4,
    }
}

/// Measures the wall time of one full safety certification on a small
/// student over the Van der Pol oscillator, using the coarse `fast_params`
/// verification budgets (the default budgets answer a different question —
/// export quality — and would dominate the whole perf run). Every repeat
/// must produce the identical certificate.
///
/// # Panics
///
/// Panics if certification fails its budget or produces a different
/// certificate across repeats.
pub fn bench_verify(config: &PerfConfig) -> VerifyBench {
    use cocktail_obs::NullSink;
    use cocktail_verify::{certify_controller, fast_params, SafetyCert};

    let sys = SystemId::Oscillator.dynamics();
    let net = MlpBuilder::new(2)
        .hidden(12, Activation::Tanh)
        .output(1, Activation::Tanh)
        .seed(4)
        .build();
    let scale = vec![20.0];
    let params = fast_params(sys.as_ref());
    let workers = parallel::default_workers();
    let mut last: Option<SafetyCert> = None;
    let certify_ms = measure_time(config.repeats, || {
        let t = Instant::now();
        let cert = certify_controller(sys.as_ref(), &net, &scale, &params, workers, &NullSink)
            .expect("bench budgets certify");
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if let Some(prev) = &last {
            assert!(
                prev.matches(&cert, 0.0),
                "certification must be deterministic across repeats"
            );
        }
        last = Some(cert);
        ms
    });
    let cert = last.expect("at least one certification ran");
    VerifyBench {
        shape: "2-12-1".to_string(),
        pieces: cert.pieces,
        epsilon: cert.epsilon,
        verdict: cert.verdict.label().to_string(),
        certify_ms,
    }
}

/// Runs all measurements.
pub fn run(config: &PerfConfig) -> PerfReport {
    PerfReport {
        schema_version: SCHEMA_VERSION,
        forward: bench_forward(config),
        train_step: bench_train_step(config),
        rollout: bench_rollout(config),
        end_to_end: bench_end_to_end(config),
        telemetry: bench_telemetry(config),
        serve: bench_serve(config),
        verify: bench_verify(config),
    }
}

/// The named measurements of a report, for validation and spread checks.
fn measurements(report: &PerfReport) -> Vec<(&'static str, Measurement)> {
    vec![
        (
            "forward.per_sample",
            report.forward.per_sample_samples_per_sec,
        ),
        ("forward.batched", report.forward.batched_samples_per_sec),
        (
            "forward.fast_tanh",
            report.forward.fast_tanh_samples_per_sec,
        ),
        ("forward.f32", report.forward.f32_samples_per_sec),
        (
            "train_step.per_sample",
            report.train_step.per_sample_samples_per_sec,
        ),
        (
            "train_step.batched",
            report.train_step.batched_samples_per_sec,
        ),
        ("rollout.serial", report.rollout.serial_episodes_per_sec),
        ("rollout.parallel", report.rollout.parallel_episodes_per_sec),
        ("end_to_end.wall_ms", report.end_to_end.wall_ms),
        ("telemetry.null", report.telemetry.null_epochs_per_sec),
        (
            "telemetry.recording",
            report.telemetry.recording_epochs_per_sec,
        ),
        ("serve.admission_ms", report.serve.admission_ms),
        ("serve.single_p50", report.serve.single_p50_latency_us),
        ("serve.loaded_p99", report.serve.loaded_p99_latency_us),
        ("serve.loaded_p999", report.serve.loaded_p999_latency_us),
        ("serve.batch1", report.serve.batch1_requests_per_sec),
        ("serve.batch8", report.serve.batch8_requests_per_sec),
        ("serve.batch32", report.serve.batch32_requests_per_sec),
        ("serve.shard1", report.serve.shard1_requests_per_sec),
        ("serve.shard4", report.serve.shard4_requests_per_sec),
        ("verify.certify_ms", report.verify.certify_ms),
    ]
}

/// Measurements [`check_spread`] does not gate: tail percentiles are
/// extreme order statistics of a deliberately loaded drill, so their
/// run-to-run spread reflects scheduler jitter by construction, not
/// harness instability. They stay in the artifact (and in [`validate`])
/// for trend-watching; gating them would make every CI run a coin flip.
const SPREAD_EXEMPT: &[&str] = &["serve.loaded_p99", "serve.loaded_p999"];

/// Structural validity of a (re-)parsed report: right schema version,
/// finite positive medians, finite non-negative spreads, positive ratios.
pub fn validate(report: &PerfReport) -> Result<(), String> {
    if report.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {} != expected {SCHEMA_VERSION}",
            report.schema_version
        ));
    }
    for (name, m) in measurements(report) {
        if !(m.median.is_finite() && m.median > 0.0) {
            return Err(format!(
                "{name}.median must be finite and positive, got {}",
                m.median
            ));
        }
        if !(m.spread.is_finite() && m.spread >= 0.0) {
            return Err(format!(
                "{name}.spread must be finite and non-negative, got {}",
                m.spread
            ));
        }
    }
    for (name, v) in [
        ("forward.speedup", report.forward.speedup),
        (
            "forward.fast_tanh_speedup",
            report.forward.fast_tanh_speedup,
        ),
        ("forward.f32_speedup", report.forward.f32_speedup),
        ("train_step.speedup", report.train_step.speedup),
        ("rollout.speedup", report.rollout.speedup),
        ("telemetry.overhead_ratio", report.telemetry.overhead_ratio),
        ("serve.batch_speedup", report.serve.batch_speedup),
        ("serve.shard_speedup", report.serve.shard_speedup),
    ] {
        if !(v.is_finite() && v > 0.0) {
            return Err(format!("{name} must be finite and positive, got {v}"));
        }
    }
    if report.forward.batch == 0
        || report.rollout.episodes == 0
        || report.telemetry.epochs == 0
        || report.serve.requests == 0
        || report.serve.cores == 0
        || report.verify.pieces == 0
    {
        return Err(
            "batch, episode, epoch, request, core and piece counts must be positive".to_string(),
        );
    }
    if !(report.verify.epsilon.is_finite() && report.verify.epsilon >= 0.0) {
        return Err(format!(
            "verify.epsilon must be finite and non-negative, got {}",
            report.verify.epsilon
        ));
    }
    Ok(())
}

/// The timing-stability gate: every measurement's spread must stay below
/// `max_spread` (CI uses 0.30), except the [`SPREAD_EXEMPT`] tail
/// percentiles. Kept separate from [`validate`] so tiny in-test configs
/// can check structure without flaking on timer noise.
pub fn check_spread(report: &PerfReport, max_spread: f64) -> Result<(), String> {
    let noisy: Vec<String> = measurements(report)
        .into_iter()
        .filter(|(name, m)| !SPREAD_EXEMPT.contains(name) && m.spread >= max_spread)
        .map(|(name, m)| format!("{name} spread {:.3}", m.spread))
        .collect();
    if noisy.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "measurement spread exceeds {max_spread}: {}",
            noisy.join(", ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> PerfConfig {
        PerfConfig {
            forward_reps: 20,
            rollout_episodes: 8,
            distill_epochs: 4,
            serve_requests: 32,
            repeats: 3,
        }
    }

    #[test]
    fn fast_perf_run_produces_a_valid_report() {
        let report = run(&tiny_config());
        validate(&report).expect("fresh report validates");
        assert_eq!(report.forward.batch, 64);
    }

    #[test]
    fn committed_baseline_parses_validates_and_is_stable() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr10.json");
        let json = std::fs::read_to_string(path).expect("committed BENCH_pr10.json exists");
        let report: PerfReport = serde_json::from_str(&json).expect("baseline deserializes");
        validate(&report).expect("baseline validates");
        // the committed baseline must come from a quiet machine: CI's
        // spread gate applies to it verbatim
        check_spread(&report, 0.30).expect("baseline timings are stable");
    }

    #[test]
    fn validate_rejects_wrong_schema_version() {
        let mut report = run(&tiny_config());
        report.schema_version = 99;
        assert!(validate(&report).is_err());
    }

    #[test]
    fn median_and_spread_aggregate_repeats() {
        let m = Measurement::from_samples(&[10.0, 12.0, 11.0]);
        assert!((m.median - 11.0).abs() < 1e-12);
        assert!((m.spread - 2.0 / 11.0).abs() < 1e-12);
        let even = Measurement::from_samples(&[1.0, 3.0]);
        assert!((even.median - 2.0).abs() < 1e-12);
        let single = Measurement::from_samples(&[5.0]);
        assert_eq!(single.spread, 0.0);
    }

    #[test]
    fn spread_gate_flags_noisy_measurements() {
        let mut report = run(&tiny_config());
        report.rollout.serial_episodes_per_sec.spread = 0.9;
        let err = check_spread(&report, 0.30).expect_err("noisy spread rejected");
        assert!(err.contains("rollout.serial"), "{err}");
    }

    #[test]
    fn spread_gate_exempts_loaded_tail_percentiles() {
        let mut report = run(&tiny_config());
        // force every gated measurement quiet, then make only the tails
        // noisy: the gate must still pass
        report.rollout.serial_episodes_per_sec.spread = 0.0;
        report.serve.loaded_p99_latency_us.spread = 5.0;
        report.serve.loaded_p999_latency_us.spread = 5.0;
        if let Err(err) = check_spread(&report, 0.30) {
            assert!(
                !err.contains("loaded_p99"),
                "tails must not be gated: {err}"
            );
        }
        let mut quiet = report.clone();
        for m in [
            &mut quiet.forward.per_sample_samples_per_sec,
            &mut quiet.forward.batched_samples_per_sec,
            &mut quiet.forward.fast_tanh_samples_per_sec,
            &mut quiet.forward.f32_samples_per_sec,
            &mut quiet.train_step.per_sample_samples_per_sec,
            &mut quiet.train_step.batched_samples_per_sec,
            &mut quiet.rollout.serial_episodes_per_sec,
            &mut quiet.rollout.parallel_episodes_per_sec,
            &mut quiet.end_to_end.wall_ms,
            &mut quiet.telemetry.null_epochs_per_sec,
            &mut quiet.telemetry.recording_epochs_per_sec,
            &mut quiet.serve.admission_ms,
            &mut quiet.serve.single_p50_latency_us,
            &mut quiet.serve.batch1_requests_per_sec,
            &mut quiet.serve.batch8_requests_per_sec,
            &mut quiet.serve.batch32_requests_per_sec,
            &mut quiet.serve.shard1_requests_per_sec,
            &mut quiet.serve.shard4_requests_per_sec,
        ] {
            m.spread = 0.0;
        }
        check_spread(&quiet, 0.30).expect("only-exempt-noisy report passes the gate");
    }

    #[test]
    fn null_sink_keeps_distillation_fast_and_unperturbed() {
        // the bit-identity assertion lives inside bench_telemetry; here we
        // additionally pin the zero-cost claim: a disabled sink must not be
        // meaningfully slower than a recording one (it skips all event
        // construction, so anything below ~parity means the enabled() gate
        // broke)
        let bench = bench_telemetry(&PerfConfig {
            distill_epochs: 6,
            repeats: 3,
            ..tiny_config()
        });
        assert!(
            bench.overhead_ratio > 0.7,
            "NullSink path slower than recording path: ratio {}",
            bench.overhead_ratio
        );
    }
}
