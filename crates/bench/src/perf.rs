//! The tracked performance baseline behind `BENCH_pr2.json`.
//!
//! Three measurements, chosen to cover the layers the batched/parallel
//! kernels rewrote:
//!
//! 1. **Forward throughput** — per-sample [`cocktail_nn::Mlp::forward`]
//!    versus [`cocktail_nn::Mlp::forward_batch_cached`] at batch 64 on the
//!    Table-1 student shape (2-24-24-1), in samples/second;
//! 2. **Rollout throughput** — Monte-Carlo evaluation of a stabilizing
//!    controller on the Van der Pol oscillator with 1 worker versus the
//!    machine's full worker count, in episodes/second;
//! 3. **End-to-end wall time** — one smoke-preset Cocktail pipeline run
//!    (PPO mixing + dataset + both distillations) on the oscillator.
//!
//! The `perf` binary writes the report as JSON; re-reading it through
//! [`PerfReport`] is the schema check CI runs.

use cocktail_control::LinearFeedbackController;
use cocktail_core::experiment::Preset;
use cocktail_core::metrics::{evaluate_with_workers, EvalConfig};
use cocktail_core::pipeline::Cocktail;
use cocktail_core::SystemId;
use cocktail_math::{parallel, Matrix};
use cocktail_nn::{Activation, BatchCache, MlpBuilder};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema version of [`PerfReport`]; bump on any shape change.
pub const SCHEMA_VERSION: u32 = 1;

/// Batched-versus-per-sample forward throughput.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForwardBench {
    /// Network shape, e.g. `"2-24-24-1"`.
    pub shape: String,
    /// Rows per batched call.
    pub batch: usize,
    /// Per-sample `forward` throughput in samples/second.
    pub per_sample_samples_per_sec: f64,
    /// `forward_batch_cached` throughput in samples/second.
    pub batched_samples_per_sec: f64,
    /// Batched over per-sample throughput.
    pub speedup: f64,
}

/// Batched-versus-per-sample training-step (forward + backward) throughput.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainStepBench {
    /// Network shape, e.g. `"2-24-24-1"`.
    pub shape: String,
    /// Rows per batched step.
    pub batch: usize,
    /// Per-sample `forward_cached` + `backward` throughput in samples/second.
    pub per_sample_samples_per_sec: f64,
    /// `forward_batch_cached` + `backward_batch` throughput in samples/second.
    pub batched_samples_per_sec: f64,
    /// Batched over per-sample throughput.
    pub speedup: f64,
}

/// Serial-versus-parallel Monte-Carlo rollout throughput.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RolloutBench {
    /// Evaluated episodes per configuration.
    pub episodes: usize,
    /// Worker count of the parallel configuration.
    pub workers: usize,
    /// Single-worker throughput in episodes/second.
    pub serial_episodes_per_sec: f64,
    /// Full-worker throughput in episodes/second.
    pub parallel_episodes_per_sec: f64,
    /// Parallel over serial throughput.
    pub speedup: f64,
}

/// Wall time of one full pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EndToEndBench {
    /// Benchmark system.
    pub system: String,
    /// Pipeline preset.
    pub preset: String,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
}

/// The full machine-readable perf baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfReport {
    /// Must equal [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Forward-kernel measurement.
    pub forward: ForwardBench,
    /// Training-step measurement.
    pub train_step: TrainStepBench,
    /// Rollout-throughput measurement.
    pub rollout: RolloutBench,
    /// End-to-end pipeline measurement.
    pub end_to_end: EndToEndBench,
}

/// Knobs for a perf run; `fast` shrinks everything for CI smoke runs.
#[derive(Debug, Clone, Copy)]
pub struct PerfConfig {
    /// Repetitions of the forward measurement loops.
    pub forward_reps: usize,
    /// Episodes per rollout configuration.
    pub rollout_episodes: usize,
}

impl PerfConfig {
    /// Full-fidelity settings for the committed baseline.
    pub fn full() -> Self {
        Self {
            forward_reps: 20_000,
            rollout_episodes: 400,
        }
    }

    /// Reduced settings for CI smoke runs (seconds, not minutes).
    pub fn fast() -> Self {
        Self {
            forward_reps: 500,
            rollout_episodes: 40,
        }
    }
}

/// Measures per-sample versus batched forward throughput at batch 64 on
/// the Table-1 student shape.
pub fn bench_forward(config: &PerfConfig) -> ForwardBench {
    let net = MlpBuilder::new(2)
        .hidden(24, Activation::Tanh)
        .hidden(24, Activation::Tanh)
        .output(1, Activation::Identity)
        .seed(2)
        .build();
    let batch = 64;
    let xs: Vec<Vec<f64>> = (0..batch)
        .map(|i| {
            (0..2)
                .map(|d| ((i * 7 + d * 13) % 23) as f64 / 11.5 - 1.0)
                .collect()
        })
        .collect();
    let x = Matrix::from_rows(xs.clone());
    let reps = config.forward_reps.max(1);
    let samples = (reps * batch) as f64;

    // warm-up so neither path pays first-touch costs inside the timing
    let mut cache = BatchCache::new();
    net.forward_batch_cached(&x, &mut cache);
    let mut sink = 0.0;
    for row in &xs {
        sink += net.forward(row)[0];
    }

    let t = Instant::now();
    for _ in 0..reps {
        for row in &xs {
            sink += net.forward(row)[0];
        }
    }
    let per_sample = samples / t.elapsed().as_secs_f64();

    let t = Instant::now();
    for _ in 0..reps {
        net.forward_batch_cached(&x, &mut cache);
        sink += cache.output().row(0)[0];
    }
    let batched = samples / t.elapsed().as_secs_f64();
    assert!(sink.is_finite(), "benchmark outputs must stay finite");

    ForwardBench {
        shape: "2-24-24-1".to_string(),
        batch,
        per_sample_samples_per_sec: per_sample,
        batched_samples_per_sec: batched,
        speedup: batched / per_sample,
    }
}

/// Measures per-sample versus batched training-step throughput (forward
/// plus backward with gradient accumulation) at batch 64 on the Table-1
/// student shape.
pub fn bench_train_step(config: &PerfConfig) -> TrainStepBench {
    use cocktail_nn::{loss, GradStore};
    let net = MlpBuilder::new(2)
        .hidden(24, Activation::Tanh)
        .hidden(24, Activation::Tanh)
        .output(1, Activation::Identity)
        .seed(3)
        .build();
    let batch = 64;
    let xs: Vec<Vec<f64>> = (0..batch)
        .map(|i| {
            (0..2)
                .map(|d| ((i * 5 + d * 11) % 19) as f64 / 9.5 - 1.0)
                .collect()
        })
        .collect();
    let x = Matrix::from_rows(xs.clone());
    let reps = (config.forward_reps / 4).max(1);
    let samples = (reps * batch) as f64;
    let scale = 1.0 / batch as f64;
    let mut grads = GradStore::zeros_like(&net);

    let t = Instant::now();
    for _ in 0..reps {
        grads.reset();
        for row in &xs {
            let cache = net.forward_cached(row);
            let g = loss::mse_gradient(cache.output(), &[0.5]);
            net.backward(&cache, &g, &mut grads, scale);
        }
    }
    let per_sample = samples / t.elapsed().as_secs_f64();

    let mut cache = BatchCache::new();
    let t = Instant::now();
    for _ in 0..reps {
        grads.reset();
        net.forward_batch_cached(&x, &mut cache);
        let mut g = Matrix::zeros(batch, 1);
        for r in 0..batch {
            g.row_mut(r)
                .copy_from_slice(&loss::mse_gradient(cache.output().row(r), &[0.5]));
        }
        net.backward_batch(&cache, &g, &mut grads, scale);
    }
    let batched = samples / t.elapsed().as_secs_f64();

    TrainStepBench {
        shape: "2-24-24-1".to_string(),
        batch,
        per_sample_samples_per_sec: per_sample,
        batched_samples_per_sec: batched,
        speedup: batched / per_sample,
    }
}

/// Measures Monte-Carlo rollout throughput with 1 worker versus the full
/// worker count on the Van der Pol oscillator.
pub fn bench_rollout(config: &PerfConfig) -> RolloutBench {
    let sys = cocktail_env::systems::VanDerPol::new();
    let controller = LinearFeedbackController::new(Matrix::from_rows(vec![vec![3.0, 4.0]]));
    let episodes = config.rollout_episodes.max(1);
    let eval_cfg = EvalConfig {
        samples: episodes,
        seed: 7,
        ..Default::default()
    };
    let workers = parallel::default_workers();

    let t = Instant::now();
    let serial = evaluate_with_workers(&sys, &controller, &eval_cfg, 1);
    let serial_rate = episodes as f64 / t.elapsed().as_secs_f64();

    let t = Instant::now();
    let par = evaluate_with_workers(&sys, &controller, &eval_cfg, workers);
    let parallel_rate = episodes as f64 / t.elapsed().as_secs_f64();

    assert_eq!(serial, par, "parallel evaluation must be bit-identical");
    RolloutBench {
        episodes,
        workers,
        serial_episodes_per_sec: serial_rate,
        parallel_episodes_per_sec: parallel_rate,
        speedup: parallel_rate / serial_rate,
    }
}

/// Times one smoke-preset pipeline run on the oscillator.
pub fn bench_end_to_end() -> EndToEndBench {
    let sys = SystemId::Oscillator;
    let experts = cocktail_core::experts::cloned_experts(sys, 0);
    let t = Instant::now();
    let result = Cocktail::new(sys, experts)
        .with_config(Preset::Smoke.config())
        .run();
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(result.kappa_star.lipschitz_constant().is_finite());
    EndToEndBench {
        system: "oscillator".to_string(),
        preset: "smoke".to_string(),
        wall_ms,
    }
}

/// Runs all three measurements.
pub fn run(config: &PerfConfig) -> PerfReport {
    PerfReport {
        schema_version: SCHEMA_VERSION,
        forward: bench_forward(config),
        train_step: bench_train_step(config),
        rollout: bench_rollout(config),
        end_to_end: bench_end_to_end(),
    }
}

/// Structural validity of a (re-)parsed report: right schema version,
/// finite positive throughputs.
pub fn validate(report: &PerfReport) -> Result<(), String> {
    if report.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {} != expected {SCHEMA_VERSION}",
            report.schema_version
        ));
    }
    let positive = [
        (
            "forward.per_sample",
            report.forward.per_sample_samples_per_sec,
        ),
        ("forward.batched", report.forward.batched_samples_per_sec),
        ("forward.speedup", report.forward.speedup),
        (
            "train_step.per_sample",
            report.train_step.per_sample_samples_per_sec,
        ),
        (
            "train_step.batched",
            report.train_step.batched_samples_per_sec,
        ),
        ("train_step.speedup", report.train_step.speedup),
        ("rollout.serial", report.rollout.serial_episodes_per_sec),
        ("rollout.parallel", report.rollout.parallel_episodes_per_sec),
        ("rollout.speedup", report.rollout.speedup),
        ("end_to_end.wall_ms", report.end_to_end.wall_ms),
    ];
    for (name, v) in positive {
        if !(v.is_finite() && v > 0.0) {
            return Err(format!("{name} must be finite and positive, got {v}"));
        }
    }
    if report.forward.batch == 0 || report.rollout.episodes == 0 {
        return Err("batch and episode counts must be positive".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_perf_run_produces_a_valid_report() {
        let report = run(&PerfConfig {
            forward_reps: 20,
            rollout_episodes: 8,
        });
        validate(&report).expect("fresh report validates");
        assert_eq!(report.forward.batch, 64);
    }

    #[test]
    fn committed_baseline_parses_and_validates() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr2.json");
        let json = std::fs::read_to_string(path).expect("committed BENCH_pr2.json exists");
        let report: PerfReport = serde_json::from_str(&json).expect("baseline deserializes");
        validate(&report).expect("baseline validates");
    }

    #[test]
    fn validate_rejects_wrong_schema_version() {
        let mut report = run(&PerfConfig {
            forward_reps: 5,
            rollout_episodes: 4,
        });
        report.schema_version = 99;
        assert!(validate(&report).is_err());
    }
}
