//! Shared machinery for the experiment-regeneration binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! prints the corresponding rows/series and writes a JSON artifact under
//! `target/cocktail-artifacts/`:
//!
//! | binary   | paper artifact |
//! |----------|----------------|
//! | `table1` | Table I (`S_r` / e / L for the six controllers, three systems) |
//! | `table2` | Table II (`κ_D` vs κ* under FGSM attacks and measurement noise) |
//! | `fig2`   | Fig. 2 (normalized control signal under attack) |
//! | `fig3`   | Fig. 3 (oscillator invariant set + verification time) |
//! | `fig4`   | Fig. 4 (3D-system reachable set; `κ_D` budget blow-up) |
//!
//! Set `COCKTAIL_FAST=1` to downgrade the preset for smoke runs, and
//! `COCKTAIL_SYSTEMS=oscillator,3d,cartpole` to restrict the system list.

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "experiment harness code aborts on failure by design"
)]

pub mod perf;

use cocktail_core::SystemId;
use serde::Serialize;
use std::path::PathBuf;

/// Where JSON artifacts land.
pub fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from("target/cocktail-artifacts");
    std::fs::create_dir_all(&dir).expect("artifact dir must be creatable");
    dir
}

/// Writes a serializable artifact and reports the path.
pub fn save_artifact<T: Serialize>(name: &str, value: &T) {
    let path = artifact_dir().join(name);
    let json = serde_json::to_string_pretty(value).expect("artifact serializes");
    std::fs::write(&path, json).expect("artifact must be writable");
    println!("[artifact] {}", path.display());
}

/// The systems selected by `COCKTAIL_SYSTEMS` (default: all three).
pub fn selected_systems() -> Vec<SystemId> {
    match std::env::var("COCKTAIL_SYSTEMS") {
        Err(_) => SystemId::all().to_vec(),
        Ok(spec) => spec
            .split(',')
            .filter_map(|s| match s.trim().to_ascii_lowercase().as_str() {
                "oscillator" | "vdp" => Some(SystemId::Oscillator),
                "3d" | "poly3d" => Some(SystemId::Poly3d),
                "cartpole" => Some(SystemId::CartPole),
                "" => None,
                other => panic!("unknown system '{other}' in COCKTAIL_SYSTEMS"),
            })
            .collect(),
    }
}

pub use cocktail_core::report::{fmt_energy, fmt_lipschitz};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_matches_paper_conventions() {
        assert_eq!(fmt_lipschitz(None), "-");
        assert_eq!(fmt_lipschitz(Some(7.61)), "7.6");
        assert_eq!(fmt_energy(f64::NAN), "n/a");
        assert_eq!(fmt_energy(86.23), "86.2");
    }

    #[test]
    fn default_system_selection_is_all() {
        std::env::remove_var("COCKTAIL_SYSTEMS");
        assert_eq!(selected_systems().len(), 3);
    }
}
