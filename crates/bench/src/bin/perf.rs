//! Perf harness: measures the batched/parallel kernels and writes the
//! machine-readable baseline (`BENCH_pr2.json`).
//!
//! ```text
//! cargo run --release -p cocktail-bench --bin perf [-- <output-path>]
//! ```
//!
//! Set `COCKTAIL_FAST=1` for a reduced smoke run (CI). The written file is
//! read back and schema-validated before the process exits.

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "perf harness aborts on failure by design"
)]

use cocktail_bench::perf::{run, validate, PerfConfig, PerfReport};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr2.json".to_string());
    let fast = std::env::var("COCKTAIL_FAST").is_ok_and(|v| v == "1");
    let config = if fast {
        PerfConfig::fast()
    } else {
        PerfConfig::full()
    };
    eprintln!(
        "perf: forward_reps={} rollout_episodes={} (fast={fast})",
        config.forward_reps, config.rollout_episodes
    );

    let report = run(&config);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).expect("baseline must be writable");

    // round-trip the file on disk: the schema check CI relies on
    let parsed: PerfReport =
        serde_json::from_str(&std::fs::read_to_string(&out).expect("baseline readable"))
            .expect("baseline deserializes");
    validate(&parsed).expect("baseline validates");

    println!(
        "forward  {:>12.0} samples/s per-sample | {:>12.0} samples/s batched ({:.2}x)",
        report.forward.per_sample_samples_per_sec,
        report.forward.batched_samples_per_sec,
        report.forward.speedup
    );
    println!(
        "train    {:>12.0} samples/s per-sample | {:>12.0} samples/s batched ({:.2}x)",
        report.train_step.per_sample_samples_per_sec,
        report.train_step.batched_samples_per_sec,
        report.train_step.speedup
    );
    println!(
        "rollout  {:>12.1} ep/s serial      | {:>12.1} ep/s x{} workers ({:.2}x)",
        report.rollout.serial_episodes_per_sec,
        report.rollout.parallel_episodes_per_sec,
        report.rollout.workers,
        report.rollout.speedup
    );
    println!(
        "pipeline {:>12.0} ms smoke end-to-end",
        report.end_to_end.wall_ms
    );
    println!("[artifact] {out}");
}
