//! Perf harness: measures the batched/parallel kernels plus the serving
//! runtime and writes the machine-readable baseline (`BENCH_pr10.json`).
//!
//! ```text
//! cargo run --release -p cocktail-bench --bin perf [-- <output-path>]
//! ```
//!
//! Set `COCKTAIL_FAST=1` for a reduced smoke run (CI). The written file is
//! read back, schema-validated and gated on timing spread (< 30% across
//! repeats) before the process exits.

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "perf harness aborts on failure by design"
)]

use cocktail_bench::perf::{check_spread, run, validate, Measurement, PerfConfig, PerfReport};

fn fmt(m: Measurement) -> String {
    format!("{:.0} ±{:.1}%", m.median, 100.0 * m.spread)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr10.json".to_string());
    let fast = std::env::var("COCKTAIL_FAST").is_ok_and(|v| v == "1");
    let config = if fast {
        PerfConfig::fast()
    } else {
        PerfConfig::full()
    };
    eprintln!(
        "perf: forward_reps={} rollout_episodes={} distill_epochs={} repeats={} (fast={fast})",
        config.forward_reps, config.rollout_episodes, config.distill_epochs, config.repeats
    );

    let report = run(&config);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).expect("baseline must be writable");

    // round-trip the file on disk: the schema check CI relies on
    let parsed: PerfReport =
        serde_json::from_str(&std::fs::read_to_string(&out).expect("baseline readable"))
            .expect("baseline deserializes");
    validate(&parsed).expect("baseline validates");
    check_spread(&parsed, 0.30).expect("timing spread stays under 30%");

    println!(
        "forward  {:>18} samples/s per-sample | {:>18} samples/s batched ({:.2}x)",
        fmt(report.forward.per_sample_samples_per_sec),
        fmt(report.forward.batched_samples_per_sec),
        report.forward.speedup
    );
    println!(
        "forward  {:>18} samples/s fast-tanh ({:.2}x) | {:>18} samples/s f32 ({:.2}x)",
        fmt(report.forward.fast_tanh_samples_per_sec),
        report.forward.fast_tanh_speedup,
        fmt(report.forward.f32_samples_per_sec),
        report.forward.f32_speedup
    );
    println!(
        "train    {:>18} samples/s per-sample | {:>18} samples/s batched ({:.2}x)",
        fmt(report.train_step.per_sample_samples_per_sec),
        fmt(report.train_step.batched_samples_per_sec),
        report.train_step.speedup
    );
    println!(
        "rollout  {:>18} ep/s serial      | {:>18} ep/s x{} workers ({:.2}x)",
        fmt(report.rollout.serial_episodes_per_sec),
        fmt(report.rollout.parallel_episodes_per_sec),
        report.rollout.workers,
        report.rollout.speedup
    );
    println!(
        "pipeline {:>18} ms smoke end-to-end",
        fmt(report.end_to_end.wall_ms)
    );
    println!(
        "telemetry {:>17} ep/s null sink   | {:>18} ep/s recording ({:.2}x)",
        fmt(report.telemetry.null_epochs_per_sec),
        fmt(report.telemetry.recording_epochs_per_sec),
        report.telemetry.overhead_ratio
    );
    println!(
        "serve    {:>18} ms admission    | p50 {:.1} us single-request",
        fmt(report.serve.admission_ms),
        report.serve.single_p50_latency_us.median
    );
    println!(
        "serve    loaded tails p99 {:.1} us | p999 {:.1} us (32 connections)",
        report.serve.loaded_p99_latency_us.median, report.serve.loaded_p999_latency_us.median
    );
    println!(
        "serve    {:>18} req/s x1        | {:>18} req/s x8 | {:>18} req/s x32 ({:.2}x)",
        fmt(report.serve.batch1_requests_per_sec),
        fmt(report.serve.batch8_requests_per_sec),
        fmt(report.serve.batch32_requests_per_sec),
        report.serve.batch_speedup
    );
    println!(
        "serve    {:>18} req/s 1 shard   | {:>18} req/s 4 shards ({:.2}x on {} cores)",
        fmt(report.serve.shard1_requests_per_sec),
        fmt(report.serve.shard4_requests_per_sec),
        report.serve.shard_speedup,
        report.serve.cores
    );
    println!(
        "verify   {:>18} ms certification | {} pieces (eps {:.3}), verdict {}",
        fmt(report.verify.certify_ms),
        report.verify.pieces,
        report.verify.epsilon,
        report.verify.verdict
    );
    println!("[artifact] {out}");
}
