//! Regenerates **Fig. 3**: the control invariant set of the Van der Pol
//! oscillator under `κ*` and under `κ_D`, with the verification wall-clock
//! gap and the 1500-trajectory simulation check.
//!
//! The paper reports ≈32 minutes for `κ*` vs ≈11 hours for `κ_D` with the
//! tool of Xue & Zhan \[22\]; our grid-fixpoint substrate is far faster in
//! absolute terms but preserves the *direction*: the higher-Lipschitz
//! student needs a finer Bernstein partition, which makes its certificate
//! construction and fixpoint more expensive (or exhausts the budget).
//!
//! ```text
//! cargo run --release -p cocktail-bench --bin fig3
//! ```

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "experiment harness code aborts on failure by design"
)]

use cocktail_bench::save_artifact;
use cocktail_control::{Controller, NnController};
use cocktail_core::experiment::{build_controller_set, Preset};
use cocktail_core::SystemId;
use cocktail_env::{rollout, RolloutConfig};
use cocktail_verify::{
    invariant_set, BernsteinCertificate, CertificateConfig, InvariantConfig, VerifyError,
};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Fig3Side {
    controller: String,
    lipschitz: f64,
    bernstein_pieces: Option<usize>,
    epsilon: Option<f64>,
    invariant_fraction: Option<f64>,
    verification_seconds: f64,
    failure: Option<String>,
    /// Surviving cells as `[lo, hi]` pairs per dimension (for plotting).
    cells: Vec<Vec<(f64, f64)>>,
}

#[derive(Serialize)]
struct Fig3Artifact {
    grid: usize,
    simulations: usize,
    simulations_safe: usize,
    sides: Vec<Fig3Side>,
}

fn analyze(
    label: &str,
    student: &NnController,
    sys: &dyn cocktail_env::Dynamics,
    cert_cfg: &CertificateConfig,
    inv_cfg: &InvariantConfig,
) -> (Fig3Side, Option<cocktail_verify::InvariantResult>) {
    let start = Instant::now();
    let lipschitz = student.lipschitz_constant();
    let cert = BernsteinCertificate::build(
        student.network(),
        student.scale(),
        &sys.verification_domain(),
        cert_cfg,
    );
    match cert {
        Err(e) => (
            Fig3Side {
                controller: label.to_owned(),
                lipschitz,
                bernstein_pieces: None,
                epsilon: None,
                invariant_fraction: None,
                verification_seconds: start.elapsed().as_secs_f64(),
                failure: Some(e.to_string()),
                cells: Vec::new(),
            },
            None,
        ),
        Ok(cert) => {
            let result: Result<cocktail_verify::InvariantResult, VerifyError> =
                invariant_set(sys, &cert, inv_cfg);
            let elapsed = start.elapsed().as_secs_f64();
            match result {
                Ok(inv) => {
                    let cells = inv
                        .cells()
                        .iter()
                        .map(|c| {
                            c.intervals()
                                .iter()
                                .map(|iv| (iv.lo(), iv.hi()))
                                .collect::<Vec<_>>()
                        })
                        .collect();
                    (
                        Fig3Side {
                            controller: label.to_owned(),
                            lipschitz,
                            bernstein_pieces: Some(cert.piece_count()),
                            epsilon: Some(cert.epsilon()),
                            invariant_fraction: Some(inv.alive_fraction()),
                            verification_seconds: elapsed,
                            failure: None,
                            cells,
                        },
                        Some(inv),
                    )
                }
                Err(e) => (
                    Fig3Side {
                        controller: label.to_owned(),
                        lipschitz,
                        bernstein_pieces: Some(cert.piece_count()),
                        epsilon: Some(cert.epsilon()),
                        invariant_fraction: None,
                        verification_seconds: elapsed,
                        failure: Some(e.to_string()),
                        cells: Vec::new(),
                    },
                    None,
                ),
            }
        }
    }
}

fn main() {
    let preset = Preset::from_env(Preset::Full);
    let sys_id = SystemId::Oscillator;
    let sys = sys_id.dynamics();
    println!("== Fig. 3: oscillator invariant sets (preset {preset:?}) ==");
    let set = build_controller_set(sys_id, preset, 0);

    let cert_cfg = CertificateConfig {
        degree: 4,
        tolerance: 0.15,
        max_pieces: 1 << 18,
        error_samples_per_dim: 9,
    };
    let inv_cfg = InvariantConfig {
        grid: 60,
        max_iterations: 1000,
    };

    let kappa_star = set.kappa_star.as_ref();
    let kappa_d = set.kappa_d.as_ref();

    let (side_star, inv_star) =
        analyze("kappa_star", kappa_star, sys.as_ref(), &cert_cfg, &inv_cfg);
    let (side_d, _) = analyze("kappa_D", kappa_d, sys.as_ref(), &cert_cfg, &inv_cfg);

    for side in [&side_star, &side_d] {
        println!(
            "{:<12} L {:7.1}  pieces {:>6}  eps {:>8}  invariant {:>7}  time {:>8.2}s  {}",
            side.controller,
            side.lipschitz,
            side.bernstein_pieces.map_or("-".into(), |p| p.to_string()),
            side.epsilon.map_or("-".into(), |e| format!("{e:.3}")),
            side.invariant_fraction
                .map_or("-".into(), |f| format!("{:.1}%", 100.0 * f)),
            side.verification_seconds,
            side.failure.as_deref().unwrap_or("ok"),
        );
    }

    // the paper's 1500-simulation sanity check: trajectories started inside
    // X_I(κ*) must stay safe
    let (simulations, simulations_safe) = match &inv_star {
        None => (0, 0),
        Some(inv) if inv.alive_fraction() > 0.0 => {
            let mut rng = cocktail_math::rng::seeded(7);
            let cells = inv.cells();
            let mut safe = 0usize;
            let total = 1500usize;
            for i in 0..total {
                let cell = &cells[i % cells.len()];
                let s0 = cocktail_math::rng::uniform_in_box(&mut rng, cell);
                let mut control = |s: &[f64]| kappa_star.control(s);
                let mut no_attack = |_t: usize, s: &[f64]| vec![0.0; s.len()];
                let traj = rollout(
                    sys.as_ref(),
                    &mut control,
                    &mut no_attack,
                    &s0,
                    &RolloutConfig {
                        horizon: Some(300),
                        seed: i as u64,
                        ..Default::default()
                    },
                );
                if traj.is_safe() {
                    safe += 1;
                }
            }
            println!(
                "simulation check: {safe}/{total} trajectories from X_I(kappa_star) stayed safe"
            );
            (total, safe)
        }
        Some(_) => (0, 0),
    };

    save_artifact(
        "fig3.json",
        &Fig3Artifact {
            grid: inv_cfg.grid,
            simulations,
            simulations_safe,
            sides: vec![side_star, side_d],
        },
    );
}
