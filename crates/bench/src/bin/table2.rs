//! Regenerates **Table II**: `κ_D` vs `κ*` under optimized (FGSM)
//! adversarial attacks and uniform measurement noise at 10–15 % of the
//! state bound.
//!
//! ```text
//! cargo run --release -p cocktail-bench --bin table2
//! ```

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "experiment harness code aborts on failure by design"
)]

use cocktail_bench::{save_artifact, selected_systems};
use cocktail_core::experiment::{build_controller_set, table2_entries, Preset, Table2Entry};
use cocktail_core::report::render_table2_text;
use serde::Serialize;

/// The paper evaluates at 10–15 % of the state bound; we report the middle.
const ATTACK_FRACTION: f64 = 0.12;

#[derive(Serialize)]
struct Table2Artifact {
    system: String,
    preset: String,
    attack_fraction: f64,
    entries: Vec<Table2Entry>,
}

fn main() {
    let preset = Preset::from_env(Preset::Full);
    let mut artifacts = Vec::new();
    for sys_id in selected_systems() {
        println!(
            "== {} (preset {preset:?}, δ fraction = {ATTACK_FRACTION} of state bound) ==",
            sys_id.label()
        );
        let set = build_controller_set(sys_id, preset, 0);
        let entries = table2_entries(&set, ATTACK_FRACTION, preset.eval_samples(), 42);
        print!("{}", render_table2_text(&entries));
        println!();
        artifacts.push(Table2Artifact {
            system: sys_id.label().to_owned(),
            preset: format!("{preset:?}"),
            attack_fraction: ATTACK_FRACTION,
            entries,
        });
    }
    save_artifact("table2.json", &artifacts);
}
