//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! 1. **PPO vs DDPG mixing** (the paper's Remark 1) — same experts, same
//!    reward, different mixing learner;
//! 2. **Robust-distillation λ sweep** — how the L2 weight trades the
//!    student's Lipschitz constant against safety and energy;
//! 3. **FGSM probability `p` sweep** — the probabilistic adversarial
//!    training knob of Algorithm 1 line 12;
//! 4. **Bernstein vs IBP enclosures** — certification cost and invariant
//!    fraction of the two controller-enclosure back-ends.
//!
//! ```text
//! cargo run --release -p cocktail-bench --bin ablation
//! ```

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "experiment harness code aborts on failure by design"
)]

use cocktail_bench::save_artifact;
use cocktail_core::experiment::pipeline_config;
use cocktail_core::experts::cloned_experts;
use cocktail_core::metrics::{evaluate, EvalConfig};
use cocktail_core::pipeline::{Cocktail, CocktailConfig, MixingAlgorithm};
use cocktail_core::{Preset, SystemId};
use cocktail_distill::{robust_distill, DistillConfig, TeacherDataset};
use cocktail_rl::DdpgConfig;
use cocktail_verify::enclosure::IbpEnclosure;
use cocktail_verify::{invariant_set, BernsteinCertificate, CertificateConfig, InvariantConfig};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct AblationArtifact {
    mixing: Vec<MixingRow>,
    lambda_sweep: Vec<SweepRow>,
    fgsm_prob_sweep: Vec<SweepRow>,
    enclosures: Vec<EnclosureRow>,
}

#[derive(Serialize)]
struct MixingRow {
    algorithm: String,
    safe_rate_percent: f64,
    energy: f64,
}

#[derive(Serialize)]
struct SweepRow {
    value: f64,
    lipschitz: f64,
    safe_rate_percent: f64,
    energy: f64,
}

#[derive(Serialize)]
struct EnclosureRow {
    enclosure: String,
    invariant_fraction: f64,
    seconds: f64,
}

fn main() {
    let preset = Preset::from_env(Preset::Fast);
    let sys_id = SystemId::Oscillator;
    let sys = sys_id.dynamics();
    let experts = cloned_experts(sys_id, 0);
    let eval_cfg = EvalConfig {
        samples: preset.eval_samples(),
        ..Default::default()
    };

    // ---- 1. PPO vs DDPG mixing (Remark 1)
    println!("== ablation 1: mixing algorithm (Remark 1) ==");
    let mut mixing_rows = Vec::new();
    for (name, algo) in [
        ("PPO", MixingAlgorithm::Ppo),
        (
            "DDPG",
            MixingAlgorithm::Ddpg(DdpgConfig {
                episodes: preset.config().ppo.iterations * 10,
                warmup_steps: 2000,
                exploration_noise: 0.2,
                noise_decay: 0.995,
                hidden: 32,
                seed: 0,
                ..Default::default()
            }),
        ),
    ] {
        let result = Cocktail::new(sys_id, experts.clone())
            .with_config(CocktailConfig {
                mixing: algo,
                ..pipeline_config(sys_id, preset, 0)
            })
            .run();
        let eval = evaluate(sys.as_ref(), result.mixed.as_ref(), &eval_cfg);
        println!(
            "  {name:<5} A_W: S_r {:5.1}%  e {:6.1}",
            eval.safe_rate_percent(),
            eval.mean_energy
        );
        mixing_rows.push(MixingRow {
            algorithm: name.to_owned(),
            safe_rate_percent: eval.safe_rate_percent(),
            energy: eval.mean_energy,
        });
    }

    // a single teacher for the distillation sweeps
    let teacher = Cocktail::new(sys_id, experts.clone())
        .with_config(pipeline_config(sys_id, preset, 0))
        .run()
        .mixed;
    let data =
        TeacherDataset::sample_uniform(teacher.as_ref(), &sys.verification_domain(), 1024, 11)
            .merge(TeacherDataset::sample_on_policy(
                teacher.as_ref(),
                sys.as_ref(),
                8,
                13,
            ));
    let base = DistillConfig {
        epochs: 120,
        hidden: 24,
        fgsm_prob: 0.6,
        ..Default::default()
    };

    // ---- 2. λ sweep
    println!("\n== ablation 2: robust-distillation λ ==");
    let mut lambda_rows = Vec::new();
    for lambda in [0.0, 1e-3, 1e-2, 5e-2, 1e-1] {
        let student = robust_distill(
            &data,
            &DistillConfig {
                lambda,
                ..base.clone()
            },
        );
        let eval = evaluate(sys.as_ref(), &student, &eval_cfg);
        println!(
            "  λ {lambda:7.4}: L {:6.1}  S_r {:5.1}%  e {:6.1}",
            student.lipschitz_constant(),
            eval.safe_rate_percent(),
            eval.mean_energy
        );
        lambda_rows.push(SweepRow {
            value: lambda,
            lipschitz: student.lipschitz_constant(),
            safe_rate_percent: eval.safe_rate_percent(),
            energy: eval.mean_energy,
        });
    }

    // ---- 3. FGSM probability sweep
    println!("\n== ablation 3: FGSM probability p ==");
    let mut prob_rows = Vec::new();
    for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let student = robust_distill(
            &data,
            &DistillConfig {
                fgsm_prob: p,
                lambda: 5e-2,
                ..base.clone()
            },
        );
        let eval = evaluate(sys.as_ref(), &student, &eval_cfg);
        println!(
            "  p {p:4.2}: L {:6.1}  S_r {:5.1}%  e {:6.1}",
            student.lipschitz_constant(),
            eval.safe_rate_percent(),
            eval.mean_energy
        );
        prob_rows.push(SweepRow {
            value: p,
            lipschitz: student.lipschitz_constant(),
            safe_rate_percent: eval.safe_rate_percent(),
            energy: eval.mean_energy,
        });
    }

    // ---- 4. Bernstein certificate vs IBP enclosure
    println!("\n== ablation 4: controller enclosure back-end ==");
    let student = robust_distill(
        &data,
        &DistillConfig {
            lambda: 5e-2,
            ..base
        },
    );
    let inv_cfg = InvariantConfig {
        grid: 60,
        max_iterations: 1000,
    };
    let mut enclosure_rows = Vec::new();

    let t0 = Instant::now();
    let cert = BernsteinCertificate::build(
        student.network(),
        student.scale(),
        &sys.verification_domain(),
        &CertificateConfig {
            degree: 4,
            tolerance: 0.15,
            max_pieces: 1 << 18,
            error_samples_per_dim: 9,
        },
    )
    .expect("budget suffices");
    let inv = invariant_set(sys.as_ref(), &cert, &inv_cfg).expect("dims agree");
    let bern_secs = t0.elapsed().as_secs_f64();
    println!(
        "  bernstein: invariant {:5.1}%  ({} pieces, {:.2}s)",
        100.0 * inv.alive_fraction(),
        cert.piece_count(),
        bern_secs
    );
    enclosure_rows.push(EnclosureRow {
        enclosure: "bernstein".into(),
        invariant_fraction: inv.alive_fraction(),
        seconds: bern_secs,
    });

    let t0 = Instant::now();
    let ibp = IbpEnclosure::new(student.network().clone(), student.scale().to_vec());
    let inv = invariant_set(sys.as_ref(), &ibp, &inv_cfg).expect("dims agree");
    let ibp_secs = t0.elapsed().as_secs_f64();
    println!(
        "  ibp:       invariant {:5.1}%  (no certificate, {:.2}s)",
        100.0 * inv.alive_fraction(),
        ibp_secs
    );
    enclosure_rows.push(EnclosureRow {
        enclosure: "ibp".into(),
        invariant_fraction: inv.alive_fraction(),
        seconds: ibp_secs,
    });

    save_artifact(
        "ablation.json",
        &AblationArtifact {
            mixing: mixing_rows,
            lambda_sweep: lambda_rows,
            fgsm_prob_sweep: prob_rows,
            enclosures: enclosure_rows,
        },
    );
}
