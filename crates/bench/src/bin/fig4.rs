//! Regenerates **Fig. 4**: the reachable set of the 3D system over the
//! first 15 control steps from
//! `s ∈ [-0.11, -0.105] × [0.205, 0.21] × [0.1, 0.11]`.
//!
//! The paper's observation: `κ_D` "cannot be verified because of a memory
//! segmentation fault after 12 reachable set computations, caused by its
//! large Lipschitz constant", while `κ*` verifies within minutes. Here the
//! blow-up surfaces as a `ResourceExhausted` error when the Bernstein
//! certificate or the reachable-cell paving exceeds its budget.
//!
//! ```text
//! cargo run --release -p cocktail-bench --bin fig4
//! ```

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "experiment harness code aborts on failure by design"
)]

use cocktail_bench::save_artifact;
use cocktail_control::NnController;
use cocktail_core::experiment::{build_controller_set, Preset};
use cocktail_core::SystemId;
use cocktail_math::BoxRegion;
use cocktail_verify::reach::ReachMode;
use cocktail_verify::{reach_analysis, BernsteinCertificate, CertificateConfig, ReachConfig};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Fig4Side {
    controller: String,
    lipschitz: f64,
    bernstein_pieces: Option<usize>,
    verified_safe: Option<bool>,
    peak_cells: Option<usize>,
    verification_seconds: f64,
    failure: Option<String>,
    /// Per-step `(x, y)` hull of the reachable set (the paper plots x–y).
    xy_hulls: Vec<((f64, f64), (f64, f64))>,
}

fn analyze(
    label: &str,
    student: &NnController,
    sys: &dyn cocktail_env::Dynamics,
    x0: &BoxRegion,
    cert_cfg: &CertificateConfig,
    reach_cfg: &ReachConfig,
) -> Fig4Side {
    let start = Instant::now();
    let lipschitz = student.lipschitz_constant();
    let cert = match BernsteinCertificate::build(
        student.network(),
        student.scale(),
        &sys.verification_domain(),
        cert_cfg,
    ) {
        Err(e) => {
            return Fig4Side {
                controller: label.to_owned(),
                lipschitz,
                bernstein_pieces: None,
                verified_safe: None,
                peak_cells: None,
                verification_seconds: start.elapsed().as_secs_f64(),
                failure: Some(e.to_string()),
                xy_hulls: Vec::new(),
            }
        }
        Ok(c) => c,
    };
    match reach_analysis(sys, &cert, x0, reach_cfg) {
        Ok(result) => {
            let xy_hulls = result
                .frames
                .iter()
                .map(|frame| {
                    let mut hull = frame[0].clone();
                    for b in &frame[1..] {
                        hull = hull.hull(b);
                    }
                    (
                        (hull.interval(0).lo(), hull.interval(0).hi()),
                        (hull.interval(1).lo(), hull.interval(1).hi()),
                    )
                })
                .collect();
            Fig4Side {
                controller: label.to_owned(),
                lipschitz,
                bernstein_pieces: Some(cert.piece_count()),
                verified_safe: Some(result.verified_safe),
                peak_cells: Some(result.peak_boxes),
                verification_seconds: start.elapsed().as_secs_f64(),
                failure: None,
                xy_hulls,
            }
        }
        Err(e) => Fig4Side {
            controller: label.to_owned(),
            lipschitz,
            bernstein_pieces: Some(cert.piece_count()),
            verified_safe: None,
            peak_cells: None,
            verification_seconds: start.elapsed().as_secs_f64(),
            failure: Some(e.to_string()),
            xy_hulls: Vec::new(),
        },
    }
}

fn main() {
    let preset = Preset::from_env(Preset::Full);
    let sys_id = SystemId::Poly3d;
    let sys = sys_id.dynamics();
    println!("== Fig. 4: 3D-system reachable set, 15 steps (preset {preset:?}) ==");
    let set = build_controller_set(sys_id, preset, 0);

    // the paper's initial box
    let x0 = BoxRegion::from_bounds(&[-0.11, 0.205, 0.1], &[-0.105, 0.21, 0.11]);
    // the budget separates the two students: κ*'s low Lipschitz constant
    // fits comfortably, κ_D's does not
    let cert_cfg = CertificateConfig {
        degree: 3,
        tolerance: 0.06,
        max_pieces: 60_000,
        error_samples_per_dim: 7,
    };
    let reach_cfg = ReachConfig {
        steps: 15,
        split_width: 0.01,
        max_boxes: 100_000,
        fail_on_unsafe: false,
        mode: ReachMode::Subdivision,
    };

    let side_star = analyze(
        "kappa_star",
        set.kappa_star.as_ref(),
        sys.as_ref(),
        &x0,
        &cert_cfg,
        &reach_cfg,
    );
    let side_d = analyze(
        "kappa_D",
        set.kappa_d.as_ref(),
        sys.as_ref(),
        &x0,
        &cert_cfg,
        &reach_cfg,
    );

    for side in [&side_star, &side_d] {
        println!(
            "{:<12} L {:7.1}  pieces {:>6}  safe {:>5}  peak cells {:>7}  time {:>7.2}s  {}",
            side.controller,
            side.lipschitz,
            side.bernstein_pieces.map_or("-".into(), |p| p.to_string()),
            side.verified_safe.map_or("-".into(), |s| s.to_string()),
            side.peak_cells.map_or("-".into(), |c| c.to_string()),
            side.verification_seconds,
            side.failure.as_deref().unwrap_or("ok"),
        );
    }
    if !side_star.xy_hulls.is_empty() {
        println!("\nkappa_star reachable x-y hull per step:");
        for (t, ((xlo, xhi), (ylo, yhi))) in side_star.xy_hulls.iter().enumerate() {
            println!("  t={t:<2} x [{xlo:+.3}, {xhi:+.3}]  y [{ylo:+.3}, {yhi:+.3}]");
        }
    }

    save_artifact("fig4.json", &vec![side_star, side_d]);
}
