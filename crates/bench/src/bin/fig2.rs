//! Regenerates **Fig. 2**: the normalized control signal `u(t)/U_sup`
//! of `κ_D` vs `κ*` while the system is under FGSM adversarial attack.
//!
//! Prints an ASCII sparkline per controller and writes the full series to
//! the JSON artifact.
//!
//! ```text
//! cargo run --release -p cocktail-bench --bin fig2
//! ```

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "experiment harness code aborts on failure by design"
)]

use cocktail_bench::{save_artifact, selected_systems};
use cocktail_core::experiment::{build_controller_set, fig2_trace, Fig2Trace, Preset};
use cocktail_core::report::sparkline;

const ATTACK_FRACTION: f64 = 0.12;

fn mean_abs(series: &[f64]) -> f64 {
    series.iter().map(|v| v.abs()).sum::<f64>() / series.len().max(1) as f64
}

fn main() {
    let preset = Preset::from_env(Preset::Full);
    let mut artifacts: Vec<Fig2Trace> = Vec::new();
    for sys_id in selected_systems() {
        println!(
            "== {} (preset {preset:?}, FGSM δ fraction = {ATTACK_FRACTION}) ==",
            sys_id.label()
        );
        let set = build_controller_set(sys_id, preset, 0);
        let trace = fig2_trace(&set, ATTACK_FRACTION, 42);
        println!(
            "kappa_D    |u|/U mean {:.3}\n{}",
            mean_abs(&trace.kappa_d),
            sparkline(&trace.kappa_d)
        );
        println!(
            "kappa_star |u|/U mean {:.3}\n{}",
            mean_abs(&trace.kappa_star),
            sparkline(&trace.kappa_star)
        );
        println!();
        artifacts.push(trace);
    }
    save_artifact("fig2.json", &artifacts);
}
