//! Regenerates **Table I**: safe control rate `S_r`, control energy `e`
//! and Lipschitz constant `L` for `κ₁, κ₂, A_S, A_W, κ_D, κ*` on the
//! three benchmark systems.
//!
//! ```text
//! cargo run --release -p cocktail-bench --bin table1
//! COCKTAIL_FAST=1 COCKTAIL_SYSTEMS=oscillator cargo run -p cocktail-bench --bin table1
//! ```

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "experiment harness code aborts on failure by design"
)]

use cocktail_bench::{save_artifact, selected_systems};
use cocktail_core::experiment::{build_controller_set, table1_rows, Preset, Table1Row};
use cocktail_core::report::render_table1_text;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Table1Artifact {
    system: String,
    preset: String,
    rows: Vec<Table1Row>,
}

fn main() {
    let preset = Preset::from_env(Preset::Full);
    let mut artifacts = Vec::new();
    for sys_id in selected_systems() {
        let started = Instant::now();
        println!("== {} (preset {preset:?}) ==", sys_id.label());
        let set = build_controller_set(sys_id, preset, 0);
        let rows = table1_rows(&set, preset.eval_samples(), 42);
        print!("{}", render_table1_text(&rows));
        println!(
            "[{}] pipeline+eval in {:.1?}\n",
            sys_id.label(),
            started.elapsed()
        );
        artifacts.push(Table1Artifact {
            system: sys_id.label().to_owned(),
            preset: format!("{preset:?}"),
            rows,
        });
    }
    save_artifact("table1.json", &artifacts);
}
