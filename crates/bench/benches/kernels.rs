//! Micro-benchmarks of the computational kernels every experiment rests
//! on: linear algebra, network inference/backprop, interval dynamics and
//! Bernstein evaluation.

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "experiment harness code aborts on failure by design"
)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cocktail_env::systems::{CartPole, Poly3d, VanDerPol};
use cocktail_env::Dynamics;
use cocktail_math::{BoxRegion, Interval, Matrix};
use cocktail_nn::{loss, Activation, BatchCache, GradStore, MlpBuilder};
use cocktail_verify::bernstein::BernsteinApprox;

fn bench_matrix(c: &mut Criterion) {
    let a = Matrix::from_fn(32, 32, |r, cc| {
        ((r * 31 + cc * 17) % 13) as f64 / 13.0 - 0.5
    });
    let x: Vec<f64> = (0..32).map(|i| (i as f64 / 32.0) - 0.5).collect();
    c.bench_function("matrix/matvec_32x32", |b| {
        b.iter(|| black_box(&a).matvec(black_box(&x)));
    });
    c.bench_function("matrix/spectral_norm_32x32", |b| {
        b.iter(|| black_box(&a).spectral_norm());
    });
    c.bench_function("matrix/matmul_32x32", |b| {
        b.iter(|| black_box(&a).matmul(black_box(&a)));
    });
}

fn bench_network(c: &mut Criterion) {
    let net = MlpBuilder::new(4)
        .hidden(32, Activation::Tanh)
        .hidden(32, Activation::Tanh)
        .output(1, Activation::Identity)
        .seed(0)
        .build();
    let x = [0.1, -0.2, 0.05, 0.3];
    c.bench_function("nn/forward_4-32-32-1", |b| {
        b.iter(|| black_box(&net).forward(black_box(&x)));
    });
    c.bench_function("nn/backward_4-32-32-1", |b| {
        let mut grads = GradStore::zeros_like(&net);
        b.iter(|| {
            grads.reset();
            let cache = net.forward_cached(black_box(&x));
            let g = loss::mse_gradient(cache.output(), &[0.5]);
            net.backward(&cache, &g, &mut grads, 1.0)
        });
    });
    c.bench_function("nn/input_gradient", |b| {
        b.iter(|| black_box(&net).input_gradient(black_box(&x), &[1.0]));
    });
    c.bench_function("nn/lipschitz_constant", |b| {
        b.iter(|| black_box(&net).lipschitz_constant());
    });
    let region = BoxRegion::cube(4, -0.5, 0.5);
    c.bench_function("nn/ibp_bounds", |b| {
        b.iter(|| black_box(&net).bounds(black_box(&region)));
    });
}

fn bench_batched(c: &mut Criterion) {
    // the Table-1 student shape (2-24-24-1): batched forward at batch 64
    // versus 64 per-sample calls — the kernel the distillation loop and
    // the Lipschitz/IBP sweeps run on
    let net = MlpBuilder::new(2)
        .hidden(24, Activation::Tanh)
        .hidden(24, Activation::Tanh)
        .output(1, Activation::Identity)
        .seed(2)
        .build();
    let xs: Vec<Vec<f64>> = (0..64)
        .map(|i| {
            (0..2)
                .map(|d| ((i * 7 + d * 13) % 23) as f64 / 11.5 - 1.0)
                .collect()
        })
        .collect();
    let x = Matrix::from_rows(xs.clone());
    c.bench_function("nn/forward_per_sample_64x_2-24-24-1", |b| {
        b.iter(|| {
            for row in &xs {
                black_box(net.forward(black_box(row)));
            }
        });
    });
    let mut cache = BatchCache::new();
    c.bench_function("nn/forward_batch_64_2-24-24-1", |b| {
        b.iter(|| net.forward_batch_cached(black_box(&x), &mut cache));
    });
    let mut grads = GradStore::zeros_like(&net);
    c.bench_function("nn/backward_batch_64_2-24-24-1", |b| {
        b.iter(|| {
            grads.reset();
            net.forward_batch_cached(black_box(&x), &mut cache);
            let mut g = Matrix::zeros(64, 1);
            for r in 0..64 {
                g.row_mut(r)
                    .copy_from_slice(&loss::mse_gradient(cache.output().row(r), &[0.5]));
            }
            net.backward_batch(&cache, &g, &mut grads, 1.0 / 64.0)
        });
    });
}

fn bench_dynamics(c: &mut Criterion) {
    let vdp = VanDerPol::new();
    let p3d = Poly3d::new();
    let cp = CartPole::new();
    c.bench_function("env/vdp_step", |b| {
        b.iter(|| {
            vdp.step(
                black_box(&[1.0, -0.5]),
                black_box(&[2.0]),
                black_box(&[0.01]),
            )
        });
    });
    c.bench_function("env/poly3d_step", |b| {
        b.iter(|| {
            p3d.step(
                black_box(&[0.1, 0.2, 0.3]),
                black_box(&[-1.0]),
                black_box(&[]),
            )
        });
    });
    c.bench_function("env/cartpole_step", |b| {
        b.iter(|| {
            cp.step(
                black_box(&[0.0, 0.1, 0.05, -0.1]),
                black_box(&[1.0]),
                black_box(&[]),
            )
        });
    });
    let s = [Interval::new(-0.1, 0.1), Interval::new(-0.1, 0.1)];
    let u = [Interval::new(-1.0, 1.0)];
    let w = [Interval::symmetric(0.05)];
    c.bench_function("env/vdp_step_interval", |b| {
        b.iter(|| vdp.step_interval(black_box(&s), black_box(&u), black_box(&w)));
    });
}

fn bench_bernstein(c: &mut Criterion) {
    let net = MlpBuilder::new(2)
        .hidden(16, Activation::Tanh)
        .output(1, Activation::Tanh)
        .seed(1)
        .build();
    let domain = BoxRegion::cube(2, -1.0, 1.0);
    let f = |x: &[f64]| net.forward(x)[0];
    c.bench_function("bernstein/build_deg4_2d", |b| {
        b.iter(|| BernsteinApprox::build(&f, black_box(&domain), 4));
    });
    let poly = BernsteinApprox::build(&f, &domain, 4);
    let q = BoxRegion::cube(2, -0.1, 0.1);
    c.bench_function("bernstein/eval", |b| {
        b.iter(|| poly.eval(black_box(&[0.3, -0.4])));
    });
    c.bench_function("bernstein/enclose_subbox", |b| {
        b.iter(|| poly.enclose(black_box(&q)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_matrix, bench_network, bench_batched, bench_dynamics, bench_bernstein
}
criterion_main!(benches);
