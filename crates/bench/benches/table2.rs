//! Criterion benchmarks for the computations behind **Table II**: FGSM
//! direction generation and attacked closed-loop evaluation.

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "experiment harness code aborts on failure by design"
)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cocktail_core::experts::reference_laws;
use cocktail_core::metrics::{evaluate, EvalConfig};
use cocktail_core::SystemId;
use cocktail_distill::{fgsm_direction, AttackModel};

fn bench_fgsm(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/fgsm_direction");
    for sys_id in SystemId::all() {
        let sys = sys_id.dynamics();
        let (law1, _) = reference_laws(sys_id);
        let controller = law1.controller("bench");
        let s = sys.initial_set().center();
        group.bench_function(sys_id.label(), |b| {
            b.iter(|| fgsm_direction(black_box(&controller), black_box(&s)));
        });
    }
    group.finish();
}

fn bench_attacked_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/attacked_evaluate");
    group.sample_size(10);
    for sys_id in SystemId::all() {
        let sys = sys_id.dynamics();
        let (law1, _) = reference_laws(sys_id);
        let controller = law1.controller("bench");
        for (name, adversarial) in [("fgsm", true), ("noise", false)] {
            let attack = AttackModel::scaled_to(&sys.verification_domain(), 0.12, adversarial);
            group.bench_function(format!("{}/{}", sys_id.label(), name), |b| {
                b.iter(|| {
                    evaluate(
                        sys.as_ref(),
                        black_box(&controller),
                        &EvalConfig {
                            samples: 25,
                            attack: attack.clone(),
                            ..Default::default()
                        },
                    )
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fgsm, bench_attacked_evaluation
}
criterion_main!(benches);
