//! Criterion benchmarks for the verification machinery behind **Fig. 2**
//! (attacked signal traces), **Fig. 3** (invariant sets) and **Fig. 4**
//! (reachable sets): Bernstein certification, grid-fixpoint invariance and
//! both reachability modes, at reduced sizes.

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "experiment harness code aborts on failure by design"
)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cocktail_core::experts::reference_laws;
use cocktail_core::metrics::signal_trace;
use cocktail_core::SystemId;
use cocktail_distill::AttackModel;
use cocktail_math::{BoxRegion, Matrix};
use cocktail_nn::{Activation, MlpBuilder};
use cocktail_verify::enclosure::LinearEnclosure;
use cocktail_verify::reach::ReachMode;
use cocktail_verify::{
    invariant_set, reach_analysis, BernsteinCertificate, CertificateConfig, InvariantConfig,
    ReachConfig,
};

fn bench_fig2_trace(c: &mut Criterion) {
    let sys_id = SystemId::Oscillator;
    let sys = sys_id.dynamics();
    let (law1, _) = reference_laws(sys_id);
    let controller = law1.controller("bench");
    let attack = AttackModel::scaled_to(&sys.verification_domain(), 0.12, true);
    c.bench_function("fig2/attacked_signal_trace", |b| {
        b.iter(|| {
            signal_trace(
                sys.as_ref(),
                black_box(&controller),
                &[1.5, 1.5],
                &attack,
                42,
            )
        });
    });
}

fn bench_fig3_machinery(c: &mut Criterion) {
    let net = MlpBuilder::new(2)
        .hidden(16, Activation::Tanh)
        .output(1, Activation::Tanh)
        .seed(3)
        .build();
    let sys = SystemId::Oscillator.dynamics();
    let domain = sys.verification_domain();
    let cert_cfg = CertificateConfig {
        degree: 4,
        tolerance: 0.5,
        max_pieces: 1 << 14,
        error_samples_per_dim: 7,
    };
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("bernstein_certificate_build", |b| {
        b.iter(|| {
            BernsteinCertificate::build(black_box(&net), &[20.0], &domain, &cert_cfg)
                .expect("fits budget")
        });
    });
    let enc = LinearEnclosure::new(Matrix::from_rows(vec![vec![3.0, 4.0]]));
    group.bench_function("invariant_grid24_linear", |b| {
        b.iter(|| {
            invariant_set(
                sys.as_ref(),
                black_box(&enc),
                &InvariantConfig {
                    grid: 24,
                    max_iterations: 200,
                },
            )
            .expect("dimensions agree")
        });
    });
    group.finish();
}

fn bench_fig4_machinery(c: &mut Criterion) {
    let sys = SystemId::Poly3d.dynamics();
    let enc = LinearEnclosure::new(Matrix::from_rows(vec![vec![2.0, 3.0, 3.0]]));
    let x0 = BoxRegion::from_bounds(&[-0.11, 0.205, 0.1], &[-0.105, 0.21, 0.11]);
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for (name, mode) in [
        ("reach_paving_10", ReachMode::GridPaving),
        ("reach_subdivision_10", ReachMode::Subdivision),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                reach_analysis(
                    sys.as_ref(),
                    black_box(&enc),
                    &x0,
                    &ReachConfig {
                        steps: 10,
                        split_width: 0.02,
                        mode,
                        ..Default::default()
                    },
                )
                .expect("verifies")
            });
        });
    }
    group.finish();
}

/// The paper's verifiability thesis as a benchmark: certification cost
/// versus the network's Lipschitz constant. The same architecture is
/// certified with its weights scaled by {0.75, 1.0, 1.5}, tripling the
/// product Lipschitz bound across the sweep — the measured time should
/// grow with the scale.
fn bench_verification_scaling(c: &mut Criterion) {
    let base = MlpBuilder::new(2)
        .hidden(12, Activation::Tanh)
        .output(1, Activation::Tanh)
        .seed(9)
        .build();
    let domain = SystemId::Oscillator.dynamics().verification_domain();
    let cfg = CertificateConfig {
        degree: 4,
        tolerance: 0.4,
        max_pieces: 1 << 16,
        error_samples_per_dim: 7,
    };
    let mut group = c.benchmark_group("verification_vs_lipschitz");
    group.sample_size(10);
    for scale in [0.75_f64, 1.0, 1.5] {
        let mut net = base.clone();
        for layer in net.layers_mut() {
            layer.weights_mut().scale_inplace(scale);
        }
        let label = format!("weight_scale_{scale}");
        group.bench_function(&label, |b| {
            b.iter(|| {
                BernsteinCertificate::build(black_box(&net), &[20.0], &domain, &cfg)
                    .expect("budget suffices")
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig2_trace, bench_fig3_machinery, bench_fig4_machinery,
              bench_verification_scaling
}
criterion_main!(benches);
