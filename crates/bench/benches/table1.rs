//! Criterion benchmarks for the computations behind **Table I**: the
//! safe-control-rate / energy evaluation loop and the two pipeline stages
//! (PPO mixing, distillation) at reduced-but-representative sizes.
//!
//! The `table1` *binary* regenerates the paper's numbers; this bench
//! measures how fast the underlying machinery runs.

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "experiment harness code aborts on failure by design"
)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cocktail_core::experts::{cloned_experts, reference_laws};
use cocktail_core::metrics::{evaluate, EvalConfig};
use cocktail_core::pipeline::Cocktail;
use cocktail_core::{Preset, SystemId};
use cocktail_distill::{direct_distill, DistillConfig, TeacherDataset};

fn bench_evaluation(c: &mut Criterion) {
    // the Table I evaluation kernel: closed-loop S_r / e estimation
    let mut group = c.benchmark_group("table1/evaluate");
    for sys_id in SystemId::all() {
        let sys = sys_id.dynamics();
        let (law1, _) = reference_laws(sys_id);
        let controller = law1.controller("bench");
        group.bench_function(sys_id.label(), |b| {
            b.iter(|| {
                evaluate(
                    sys.as_ref(),
                    black_box(&controller),
                    &EvalConfig {
                        samples: 50,
                        ..Default::default()
                    },
                )
            });
        });
    }
    group.finish();
}

fn bench_pipeline_stages(c: &mut Criterion) {
    let sys_id = SystemId::Oscillator;
    let experts = cloned_experts(sys_id, 0);

    let mut group = c.benchmark_group("table1/pipeline");
    group.sample_size(10);
    group.bench_function("smoke_mixing_and_distillation", |b| {
        b.iter(|| {
            Cocktail::new(sys_id, experts.clone())
                .with_config(Preset::Smoke.config())
                .run()
        });
    });
    group.finish();

    // distillation alone, over a fixed teacher dataset
    let sys = sys_id.dynamics();
    let (law1, _) = reference_laws(sys_id);
    let teacher = law1.controller("teacher");
    let data = TeacherDataset::sample_uniform(&teacher, &sys.verification_domain(), 512, 0);
    let mut group = c.benchmark_group("table1/distill");
    group.sample_size(10);
    group.bench_function("direct_512x50", |b| {
        b.iter(|| {
            direct_distill(
                black_box(&data),
                &DistillConfig {
                    epochs: 50,
                    hidden: 16,
                    ..Default::default()
                },
            )
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_evaluation, bench_pipeline_stages
}
criterion_main!(benches);
