//! Formal analysis of neural-network controlled systems (Section III-C).
//!
//! The paper verifies the distilled student by (1) over-approximating the
//! network with a Bernstein polynomial under a bounded error `ε`, with
//! state-space partitioning when `ε` is too large \[21\], (2) treating the
//! closed loop as a polynomial hybrid system with the approximation error
//! absorbed into the disturbance (`Ω ⊕ ε`), and (3) computing control
//! invariant sets \[22\] and reachable sets \[23\] on it. This crate implements
//! that pipeline on our own substrate:
//!
//! * [`bernstein`] — tensor-product Bernstein approximation of an MLP over
//!   a box with a *rigorous* error bound derived from the network's
//!   Lipschitz constant, plus adaptive partition refinement
//!   ([`bernstein::BernsteinCertificate`]). The refinement budget is capped:
//!   a high-Lipschitz student exhausts it, reproducing the paper's Fig. 4
//!   observation that `κ_D` could not be verified (memory fault) while
//!   `κ*` verifies in minutes;
//! * [`enclosure`] — the object-safe [`enclosure::ControlEnclosure`]
//!   abstraction (Bernstein certificate, interval bound propagation, and
//!   exact linear enclosure) that the analyses consume;
//! * [`reach`] — finite-horizon box reachability with subdivision
//!   ([`reach::reach_analysis`]), the Fig. 4 experiment;
//! * [`invariant`] — grid-fixpoint control-invariant-set computation
//!   ([`invariant::invariant_set`]), the Fig. 3 experiment;
//! * [`cert`] — the full loop condensed into a serializable, deterministically
//!   re-derivable [`cert::SafetyCert`] ([`cert::certify_controller`]): the
//!   artifact the serving layer embeds in controller bundles and re-derives
//!   at admission time.
//!
//! Everything is deterministic and wall-clock metered, so "verifiability =
//! verification time" (the paper's Property 3) is directly measurable.
//!
//! # Examples
//!
//! Certify a small network over a box and check the enclosure is sound:
//!
//! ```
//! use cocktail_math::BoxRegion;
//! use cocktail_nn::{Activation, MlpBuilder};
//! use cocktail_verify::bernstein::{BernsteinCertificate, CertificateConfig};
//! use cocktail_verify::enclosure::ControlEnclosure;
//!
//! let net = MlpBuilder::new(2).hidden(4, Activation::Tanh)
//!     .output(1, Activation::Tanh).seed(0).build();
//! let domain = BoxRegion::cube(2, -1.0, 1.0);
//! let cert = BernsteinCertificate::build(&net, &[1.0], &domain,
//!     &CertificateConfig::default())?;
//! let cell = BoxRegion::cube(2, -0.1, 0.1);
//! let bounds = cert.enclose(&cell);
//! let y = net.forward(&[0.0, 0.0]);
//! assert!(bounds[0].contains(y[0]));
//! # Ok::<(), cocktail_verify::VerifyError>(())
//! ```

pub mod bernstein;
pub mod cert;
pub mod enclosure;
pub mod error;
pub mod invariant;
pub mod lyapunov;
pub mod reach;
pub mod report;

pub use bernstein::{BernsteinApprox, BernsteinCertificate, CertificateConfig, RefineStats};
pub use cert::{certify_controller, default_params, fast_params, SafetyCert, SafetyParams};
pub use enclosure::ControlEnclosure;
pub use error::VerifyError;
pub use invariant::{invariant_set, invariant_set_with_workers, InvariantConfig, InvariantResult};
pub use lyapunov::{
    solve_discrete_lyapunov, verify_ellipsoid_invariant, EllipsoidCheck, QuadraticForm,
};
pub use reach::{reach_analysis, ReachConfig, ReachMode, ReachResult};
pub use report::{certify_safety, SafetyReport, SafetyVerdict};
