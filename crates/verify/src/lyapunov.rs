//! Quadratic Lyapunov certificates.
//!
//! A complement to the grid-fixpoint invariant sets of [`crate::invariant`]:
//! solve the discrete Lyapunov equation `AᵀPA − P = −Q` for the linearized
//! closed loop, then *soundly verify* that a sublevel set
//! `E_c = {x : xᵀPx ≤ c}` of the quadratic form is control-invariant for
//! the **full nonlinear** system under a certified controller enclosure —
//! every cell of a grid covering `E_c` must map (by the interval dynamics,
//! under the full disturbance) back inside `E_c`.
//!
//! Ellipsoidal certificates describe contraction-aligned invariant sets
//! far more compactly than grid masks, which is why classical control uses
//! them; the grid fixpoint remains the tool for *maximal* sets.

use crate::enclosure::ControlEnclosure;
use crate::error::VerifyError;
use cocktail_env::Dynamics;
use cocktail_math::linalg::{inverse, SingularMatrixError};
use cocktail_math::{BoxRegion, Interval, Matrix};
use std::time::{Duration, Instant};

/// Solves the discrete Lyapunov equation `AᵀPA − P = −Q` by fixed-point
/// iteration `P ← Q + AᵀPA` (converges iff `ρ(A) < 1`).
///
/// # Errors
///
/// Returns [`VerifyError::ResourceExhausted`] when the iteration has not
/// converged after 20 000 sweeps (the closed loop is not Schur stable).
///
/// # Panics
///
/// Panics if `A`/`Q` are not square of equal size.
///
/// # Examples
///
/// ```
/// use cocktail_math::Matrix;
/// use cocktail_verify::lyapunov::solve_discrete_lyapunov;
///
/// let a = Matrix::from_rows(vec![vec![0.5, 0.0], vec![0.0, 0.8]]);
/// let p = solve_discrete_lyapunov(&a, &Matrix::identity(2))?;
/// // AᵀPA − P = −Q must hold
/// let residual = &(&a.transpose().matmul(&p).matmul(&a) - &p) + &Matrix::identity(2);
/// assert!(residual.max_abs() < 1e-8);
/// # Ok::<(), cocktail_verify::VerifyError>(())
/// ```
pub fn solve_discrete_lyapunov(a: &Matrix, q: &Matrix) -> Result<Matrix, VerifyError> {
    assert_eq!(a.rows(), a.cols(), "A must be square");
    assert_eq!(q.shape(), a.shape(), "Q must match A");
    let at = a.transpose();
    let mut p = q.clone();
    for _ in 0..20_000 {
        let mut next = q.clone();
        next.axpy(1.0, &at.matmul(&p).matmul(a));
        let diff = (&next - &p).max_abs();
        let scale = next.max_abs().max(1.0);
        if !diff.is_finite() {
            break;
        }
        p = next;
        if diff <= 1e-12 * scale {
            return Ok(p);
        }
    }
    Err(VerifyError::ResourceExhausted {
        resource: "lyapunov iterations",
        budget: 20_000,
    })
}

/// The quadratic form `V(x) = xᵀPx` with helpers for sound evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct QuadraticForm {
    p: Matrix,
}

impl QuadraticForm {
    /// Wraps a symmetric positive-definite matrix.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not square, not (numerically) symmetric, or has a
    /// non-positive diagonal.
    pub fn new(p: Matrix) -> Self {
        assert_eq!(p.rows(), p.cols(), "P must be square");
        for r in 0..p.rows() {
            assert!(p[(r, r)] > 0.0, "P must have a positive diagonal");
            for c in 0..p.cols() {
                assert!(
                    (p[(r, c)] - p[(c, r)]).abs() <= 1e-9 * p.max_abs().max(1.0),
                    "P must be symmetric"
                );
            }
        }
        Self { p }
    }

    /// The matrix `P`.
    pub fn matrix(&self) -> &Matrix {
        &self.p
    }

    /// `V(x) = xᵀPx`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` disagrees with `P`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        cocktail_math::vector::dot(x, &self.p.matvec(x))
    }

    /// Sound interval enclosure of `V` over a box.
    pub fn eval_interval(&self, b: &BoxRegion) -> Interval {
        assert_eq!(b.dim(), self.p.rows(), "box dimension mismatch");
        let n = b.dim();
        let mut acc = Interval::point(0.0);
        for i in 0..n {
            for j in 0..n {
                let term = if i == j {
                    b.interval(i).square() * self.p[(i, i)]
                } else {
                    b.interval(i) * b.interval(j) * self.p[(i, j)]
                };
                acc = acc + term;
            }
        }
        acc
    }

    /// The tightest axis-aligned box containing the sublevel set
    /// `{x : V(x) ≤ c}`: `|x_i| ≤ √(c · (P⁻¹)_{ii})`.
    ///
    /// # Errors
    ///
    /// Propagates singularity of `P`.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`.
    pub fn sublevel_bounding_box(&self, c: f64) -> Result<BoxRegion, SingularMatrixError> {
        assert!(c > 0.0, "level must be positive");
        let p_inv = inverse(&self.p)?;
        let dims = (0..self.p.rows())
            .map(|i| Interval::symmetric((c * p_inv[(i, i)]).max(0.0).sqrt()))
            .collect();
        Ok(BoxRegion::new(dims))
    }
}

/// The outcome of an ellipsoid-invariance check.
#[derive(Debug, Clone)]
pub struct EllipsoidCheck {
    /// Whether `E_c` was proven control-invariant.
    pub invariant: bool,
    /// Grid cells that overlapped the ellipsoid (work performed).
    pub cells_checked: usize,
    /// Worst observed `V_max(image) / c` over the checked cells (> 1 on
    /// the first failing cell when not invariant).
    pub worst_ratio: f64,
    /// Wall-clock time of the check.
    pub duration: Duration,
}

/// Soundly verifies that the sublevel set `E_c = {x : xᵀPx ≤ c}` is
/// control-invariant for `sys` under a certified controller enclosure:
/// the bounding box of `E_c` is tiled into `gⁿ` cells, and every cell
/// whose `V`-enclosure intersects `[0, c]` must have a one-step interval
/// image with `V_max ≤ c`.
///
/// The check is conservative (interval over-approximation); `invariant =
/// true` is a proof, `false` is inconclusive.
///
/// # Errors
///
/// Propagates [`VerifyError::DimensionMismatch`] and singular `P`.
///
/// # Panics
///
/// Panics if `c <= 0` or `grid == 0`.
pub fn verify_ellipsoid_invariant(
    sys: &dyn Dynamics,
    controller: &dyn ControlEnclosure,
    form: &QuadraticForm,
    c: f64,
    grid: usize,
) -> Result<EllipsoidCheck, VerifyError> {
    assert!(grid > 0, "grid must be positive");
    if controller.state_dim() != sys.state_dim() || controller.control_dim() != sys.control_dim() {
        return Err(VerifyError::DimensionMismatch {
            detail: "enclosure/plant dimensions".to_owned(),
        });
    }
    let start = Instant::now();
    let bbox = form
        .sublevel_bounding_box(c)
        .map_err(|_| VerifyError::DimensionMismatch {
            detail: "singular P".to_owned(),
        })?;
    // the ellipsoid must live inside the certified domain
    let domain = sys.verification_domain();
    if !domain.contains_box(&bbox) {
        return Err(VerifyError::DomainEscape { step: 0 });
    }
    let (u_lo, u_hi) = sys.control_bounds();
    let omega: Vec<Interval> = sys
        .disturbance_amplitude()
        .iter()
        .map(|&a| Interval::symmetric(a))
        .collect();

    // adaptive check: cells failing at the current resolution are bisected
    // (boundary cells carry the most over-approximation slop); a cell that
    // still fails at the depth cap refutes the proof attempt
    const MAX_DEPTH: usize = 11;
    let mut cells_checked = 0usize;
    let mut worst_ratio: f64 = 0.0;
    let mut queue: Vec<(BoxRegion, usize)> = bbox
        .subdivide(grid)
        .into_iter()
        .map(|cell| (cell, 0))
        .collect();
    while let Some((cell, depth)) = queue.pop() {
        let v_cell = form.eval_interval(&cell);
        if v_cell.lo() > c {
            continue; // cell entirely outside the ellipsoid
        }
        cells_checked += 1;
        let u: Vec<Interval> = controller
            .enclose(&cell)
            .into_iter()
            .zip(u_lo.iter().zip(&u_hi))
            .map(|(iv, (&l, &h))| iv.clamp_to(l, h))
            .collect();
        let image = BoxRegion::new(sys.step_interval(cell.intervals(), &u, &omega));
        let v_image = form.eval_interval(&image);
        let ratio = v_image.hi() / c;
        if ratio > 1.0 {
            if depth < MAX_DEPTH {
                let (a, b) = cell.bisect();
                queue.push((a, depth + 1));
                queue.push((b, depth + 1));
                continue;
            }
            return Ok(EllipsoidCheck {
                invariant: false,
                cells_checked,
                worst_ratio: worst_ratio.max(ratio),
                duration: start.elapsed(),
            });
        }
        worst_ratio = worst_ratio.max(ratio);
    }
    Ok(EllipsoidCheck {
        invariant: true,
        cells_checked,
        worst_ratio,
        duration: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclosure::LinearEnclosure;
    use cocktail_env::systems::VanDerPol;

    #[test]
    fn lyapunov_solution_satisfies_equation() {
        let a = Matrix::from_rows(vec![vec![0.9, 0.1], vec![-0.05, 0.85]]);
        let q = Matrix::identity(2);
        let p = solve_discrete_lyapunov(&a, &q).expect("stable A");
        let mut residual = a.transpose().matmul(&p).matmul(&a);
        residual.axpy(-1.0, &p);
        residual.axpy(1.0, &q);
        assert!(residual.max_abs() < 1e-8, "residual {}", residual.max_abs());
        // P is positive definite: V(x) > 0 on basis vectors
        let form = QuadraticForm::new(p);
        assert!(form.eval(&[1.0, 0.0]) > 0.0);
        assert!(form.eval(&[0.0, 1.0]) > 0.0);
    }

    #[test]
    fn unstable_a_is_rejected() {
        let a = Matrix::from_rows(vec![vec![1.1, 0.0], vec![0.0, 0.5]]);
        let err = solve_discrete_lyapunov(&a, &Matrix::identity(2)).expect_err("unstable");
        assert!(matches!(err, VerifyError::ResourceExhausted { .. }));
    }

    #[test]
    fn quadratic_interval_eval_is_sound() {
        let p = Matrix::from_rows(vec![vec![2.0, 0.5], vec![0.5, 1.0]]);
        let form = QuadraticForm::new(p);
        let b = BoxRegion::from_bounds(&[-0.5, 0.1], &[0.3, 0.8]);
        let bound = form.eval_interval(&b);
        let mut rng = cocktail_math::rng::seeded(1);
        for _ in 0..200 {
            let x = cocktail_math::rng::uniform_in_box(&mut rng, &b);
            assert!(bound.inflate(1e-9).contains(form.eval(&x)));
        }
    }

    #[test]
    fn sublevel_bounding_box_contains_the_ellipsoid() {
        let p = Matrix::from_rows(vec![vec![4.0, 0.0], vec![0.0, 1.0]]);
        let form = QuadraticForm::new(p);
        let c = 1.0;
        let bbox = form.sublevel_bounding_box(c).expect("regular");
        // 4x² + y² ≤ 1 ⇒ |x| ≤ 0.5, |y| ≤ 1
        assert!((bbox.interval(0).hi() - 0.5).abs() < 1e-9);
        assert!((bbox.interval(1).hi() - 1.0).abs() < 1e-9);
        let mut rng = cocktail_math::rng::seeded(2);
        for _ in 0..200 {
            let x = cocktail_math::rng::uniform_in_box(&mut rng, &bbox);
            if form.eval(&x) <= c {
                assert!(bbox.contains(&x));
            }
        }
    }

    /// Builds the Lyapunov form of the damped Van der Pol closed loop.
    fn vdp_form(gain: &Matrix) -> QuadraticForm {
        let sys = VanDerPol::new();
        let lin = cocktail_control::lqr::linearize(&sys, &[0.0, 0.0], &[0.0]);
        let mut a_cl = lin.a.clone();
        a_cl.axpy(-1.0, &lin.b.matmul(gain));
        let p = solve_discrete_lyapunov(&a_cl, &Matrix::identity(2)).expect("stable loop");
        QuadraticForm::new(p)
    }

    #[test]
    fn small_ellipsoid_is_invariant_for_damped_vdp() {
        let sys = VanDerPol::new();
        let gain = Matrix::from_rows(vec![vec![3.0, 4.0]]);
        let enc = LinearEnclosure::new(gain.clone());
        let form = vdp_form(&gain);
        // scan bounding-box radii: larger levels dilute the ω noise
        // relative to the contraction margin, so some mid-size level must
        // verify (the noise floor rules out tiny ones, X rules out huge)
        let p_inv = inverse(form.matrix()).expect("P regular");
        let max_diag = (0..2).map(|i| p_inv[(i, i)]).fold(0.0_f64, f64::max);
        let mut verified = None;
        for radius in [0.8, 1.0, 1.2, 1.4, 1.6] {
            let c = radius * radius / max_diag;
            let check =
                verify_ellipsoid_invariant(&sys, &enc, &form, c, 24).expect("well-posed check");
            if check.invariant {
                verified = Some((radius, check));
                break;
            }
        }
        let (radius, check) = verified.expect("some level must be provably invariant");
        assert!(check.cells_checked > 0);
        assert!(
            check.worst_ratio <= 1.0,
            "radius {radius}: ratio {}",
            check.worst_ratio
        );
    }

    #[test]
    fn tiny_ellipsoid_fails_against_the_noise_floor() {
        // with ω = ±0.05 per step, a tiny sublevel set cannot absorb the
        // disturbance: the check must come back inconclusive
        let sys = VanDerPol::new();
        let gain = Matrix::from_rows(vec![vec![3.0, 4.0]]);
        let enc = LinearEnclosure::new(gain.clone());
        let form = vdp_form(&gain);
        let p_inv = inverse(form.matrix()).expect("P regular");
        let max_diag = (0..2).map(|i| p_inv[(i, i)]).fold(0.0_f64, f64::max);
        // bounding-box radius ≈ 0.02: smaller than one noise step
        let c = 0.0004 / max_diag;
        let check = verify_ellipsoid_invariant(&sys, &enc, &form, c, 12).expect("well-posed check");
        assert!(!check.invariant);
        assert!(check.worst_ratio > 1.0);
    }

    #[test]
    fn oversized_ellipsoid_escapes_the_domain() {
        let sys = VanDerPol::new();
        let gain = Matrix::from_rows(vec![vec![3.0, 4.0]]);
        let enc = LinearEnclosure::new(gain.clone());
        let form = vdp_form(&gain);
        let err = verify_ellipsoid_invariant(&sys, &enc, &form, 1e9, 8).expect_err("too big");
        assert!(matches!(err, VerifyError::DomainEscape { .. }));
    }
}
