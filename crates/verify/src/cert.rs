//! The end-to-end safety certificate: a serializable, deterministically
//! re-derivable record of the paper's full Section III-C loop.
//!
//! [`certify_controller`] runs Bernstein certificate construction (with
//! partition refinement), closed-loop reachability over the plant dynamics
//! from a seeded initial box, and the control-invariant grid fixpoint, and
//! condenses the outcome into a [`SafetyCert`]: verdict, refinement stats,
//! reach horizon and final hull, a digest of the invariant bitmap, and the
//! verification wall-clock (the paper's Property-3 metric).
//!
//! The whole computation is a pure function of `(plant, weights, scale,
//! params)` — the parallel maps and the Jacobi fixpoint are worker-count
//! invariant and no randomness is involved — so a consumer holding only the
//! shipped weights and [`SafetyParams`] re-derives the certificate
//! bit-for-bit. That is the admission contract: [`SafetyCert::matches`]
//! compares every field except the wall-clock (a metric, not a claim), and
//! any disagreement means the weights, the plant spec, or the certificate
//! were altered after export.

use crate::bernstein::{BernsteinCertificate, CertificateConfig};
use crate::error::VerifyError;
use crate::invariant::{invariant_set_with_workers, InvariantConfig};
use crate::reach::{reach_analysis, ReachConfig, ReachMode};
use crate::report::SafetyVerdict;
use cocktail_env::Dynamics;
use cocktail_math::{BoxRegion, Interval};
use cocktail_nn::Mlp;
use cocktail_obs::{Event, Span, Telemetry};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Everything needed to re-derive a [`SafetyCert`] besides the weights and
/// the plant: the verification budgets and the seeded initial box. Shipped
/// inside the certificate so admission re-runs *exactly* the exported
/// analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetyParams {
    /// Bernstein partition-refinement budget.
    pub certificate: CertificateConfig,
    /// Closed-loop reachability horizon and paving resolution.
    pub reach: ReachConfig,
    /// Control-invariant grid fixpoint resolution.
    pub invariant: InvariantConfig,
    /// Initial box of the reachability analysis.
    pub initial_set: BoxRegion,
}

impl SafetyParams {
    /// Ceiling check on the embedded budgets. Admission re-derives
    /// certificates with the *shipped* parameters, so a tampered bundle
    /// must not be able to turn the gate into an unbounded computation.
    /// Returns a description of the first violated ceiling.
    pub fn budget_ceiling_violation(&self, domain: &BoxRegion) -> Option<String> {
        let c = &self.certificate;
        if c.degree == 0 || c.degree > 8 {
            return Some(format!("bernstein degree {} outside 1..=8", c.degree));
        }
        if c.error_samples_per_dim > 16 {
            return Some(format!(
                "error sample grid {} per dimension exceeds 16",
                c.error_samples_per_dim
            ));
        }
        if c.max_pieces > 1 << 17 {
            return Some(format!("piece budget {} exceeds {}", c.max_pieces, 1 << 17));
        }
        if !(c.tolerance.is_finite() && c.tolerance > 0.0) {
            return Some(format!(
                "tolerance {} is not a positive finite",
                c.tolerance
            ));
        }
        if self.reach.steps > 64 {
            return Some(format!(
                "reach horizon {} exceeds 64 steps",
                self.reach.steps
            ));
        }
        if self.reach.max_boxes > 200_000 {
            return Some(format!(
                "reach cell budget {} exceeds 200000",
                self.reach.max_boxes
            ));
        }
        if !(self.reach.split_width.is_finite() && self.reach.split_width > 0.0) {
            return Some(format!(
                "reach split width {} is not a positive finite",
                self.reach.split_width
            ));
        }
        let mut paving_cells = 1.0_f64;
        for iv in domain.intervals() {
            paving_cells *= (iv.width() / self.reach.split_width).ceil().max(1.0);
        }
        if paving_cells > 2e6 {
            return Some(format!(
                "reach paving of ~{paving_cells:.0} cells exceeds the 2e6 ceiling"
            ));
        }
        let grid_cells = (self.invariant.grid as f64).powi(domain.dim() as i32);
        if self.invariant.grid == 0 || grid_cells > 2e6 {
            return Some(format!(
                "invariant grid of ~{grid_cells:.0} cells exceeds the 2e6 ceiling"
            ));
        }
        if self.invariant.max_iterations > 10_000 {
            return Some(format!(
                "invariant iteration cap {} exceeds 10000",
                self.invariant.max_iterations
            ));
        }
        if self.initial_set.dim() != domain.dim() {
            return Some(format!(
                "initial set dimension {} != domain dimension {}",
                self.initial_set.dim(),
                domain.dim()
            ));
        }
        if !domain.contains_box(&self.initial_set) {
            return Some("initial set pokes outside the verification domain".into());
        }
        None
    }
}

/// Canonical per-plant verification parameters used at export time. Sized so
/// certification of typical students finishes in bounded wall-clock while
/// keeping the paving fine enough to be informative: 2D plants get the
/// paper's Fig. 3-style resolutions, higher-dimensional plants coarser ones
/// (the cell counts are exponential in the state dimension).
pub fn default_params(sys: &dyn Dynamics) -> SafetyParams {
    let domain = sys.verification_domain();
    let (u_lo, u_hi) = sys.control_bounds();
    let span = u_lo
        .iter()
        .zip(&u_hi)
        .map(|(l, h)| h - l)
        .fold(0.0_f64, f64::max);
    // tolerance is the ε absorbed into the disturbance; 1% of the control
    // span keeps it far below the control authority (so stabilizing
    // students remain provable) while staying reachable within the piece
    // budget for small students. Higher dimensions trade resolution for
    // bounded wall-clock: the cell counts are exponential in `dim`.
    let (paving_per_dim, grid, degree, samples, tol_factor) = match domain.dim() {
        0..=2 => (32usize, 32usize, 4usize, 5usize, 0.01),
        3 => (12, 12, 3, 4, 0.05),
        _ => (6, 5, 2, 3, 0.3),
    };
    let max_width = domain
        .intervals()
        .iter()
        .map(Interval::width)
        .fold(0.0_f64, f64::max);
    SafetyParams {
        certificate: CertificateConfig {
            degree,
            tolerance: (tol_factor * span).max(1e-6),
            max_pieces: if domain.dim() <= 2 { 1 << 16 } else { 1 << 14 },
            error_samples_per_dim: samples,
        },
        reach: ReachConfig {
            steps: if domain.dim() <= 3 { 10 } else { 8 },
            split_width: max_width / paving_per_dim as f64,
            max_boxes: 200_000,
            fail_on_unsafe: false,
            mode: ReachMode::GridPaving,
        },
        invariant: InvariantConfig {
            grid,
            max_iterations: 256,
        },
        initial_set: shrink_toward_center(&sys.initial_set(), 0.1),
    }
}

/// A deliberately coarse budget tier for fixtures and smoke tests. The
/// resulting certificates are exactly as sound and as re-derivable as
/// [`default_params`] ones — just far more conservative (looser `ε`,
/// coarser paving), so they finish in milliseconds even unoptimized.
/// Export tooling should prefer [`default_params`].
pub fn fast_params(sys: &dyn Dynamics) -> SafetyParams {
    let domain = sys.verification_domain();
    let (u_lo, u_hi) = sys.control_bounds();
    let span = u_lo
        .iter()
        .zip(&u_hi)
        .map(|(l, h)| h - l)
        .fold(0.0_f64, f64::max);
    let max_width = domain
        .intervals()
        .iter()
        .map(Interval::width)
        .fold(0.0_f64, f64::max);
    SafetyParams {
        certificate: CertificateConfig {
            degree: 3,
            tolerance: (0.05 * span).max(1e-6),
            max_pieces: 2048,
            error_samples_per_dim: 4,
        },
        reach: ReachConfig {
            steps: 5,
            split_width: max_width / 8.0,
            max_boxes: 10_000,
            fail_on_unsafe: false,
            mode: ReachMode::GridPaving,
        },
        invariant: InvariantConfig {
            grid: 8,
            max_iterations: 64,
        },
        initial_set: shrink_toward_center(&sys.initial_set(), 0.1),
    }
}

/// Shrinks a box toward its center: each interval keeps `factor` of its
/// radius. The seeded initial box of the default reachability analysis.
fn shrink_toward_center(b: &BoxRegion, factor: f64) -> BoxRegion {
    BoxRegion::new(
        b.intervals()
            .iter()
            .map(|iv| {
                let mid = 0.5 * (iv.lo() + iv.hi());
                let r = factor * iv.radius();
                Interval::new(mid - r, mid + r)
            })
            .collect(),
    )
}

/// The serializable outcome of the full verification loop.
///
/// Every field except [`verify_ms`](Self::verify_ms) is a deterministic
/// function of `(plant, weights, scale, params)` and participates in
/// [`Self::matches`]; the wall-clock is the paper's verifiability *metric*
/// and is reported, not verified.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetyCert {
    /// The parameters the certificate was (and must be re-) derived with.
    pub params: SafetyParams,
    /// `Safe` when the reachable over-approximation stayed inside the safe
    /// domain for the full horizon *and* the final frame lies inside the
    /// converged control-invariant set (so containment extends beyond the
    /// horizon); `NotProven` otherwise.
    pub verdict: SafetyVerdict,
    /// Lipschitz bound of the certified (scaled) controller.
    pub lipschitz: f64,
    /// Largest per-piece Bernstein approximation error `ε`.
    pub epsilon: f64,
    /// Bernstein partition pieces — the paper's verification-cost driver.
    pub pieces: usize,
    /// Bisections performed during partition refinement.
    pub refinement_splits: usize,
    /// Refinement levels (0 when the root piece met tolerance).
    pub refinement_depth: usize,
    /// Reachability horizon actually analyzed.
    pub reach_steps: usize,
    /// Peak number of simultaneously-occupied reach cells.
    pub reach_peak_boxes: usize,
    /// Whether every reachable image stayed inside the safe domain.
    pub reach_safe: bool,
    /// Tightest box containing the final reachable frame.
    pub reach_final_hull: BoxRegion,
    /// Total invariant grid cells (`grid^n`).
    pub invariant_cells: usize,
    /// Cells surviving the invariant fixpoint.
    pub invariant_alive: usize,
    /// Fixpoint sweeps executed.
    pub invariant_iterations: usize,
    /// Whether the fixpoint converged within the iteration cap.
    pub invariant_converged: bool,
    /// FNV-1a digest of the packed invariant survival bitmap — the compact
    /// fingerprint admission compares without shipping `grid^n` bits.
    pub invariant_digest: u64,
    /// Whether the final reachable frame lies inside the invariant set.
    pub final_frame_contained: bool,
    /// Verification wall-clock in milliseconds (the Property-3 metric).
    /// Excluded from [`Self::matches`].
    pub verify_ms: f64,
}

impl SafetyCert {
    /// Whether `other` agrees with this certificate on every claim field:
    /// parameters, verdict, counters and digests exactly; float bounds
    /// within relative tolerance `tol` (absorbs cross-platform libm
    /// jitter). The wall-clock is deliberately excluded.
    pub fn matches(&self, other: &Self, tol: f64) -> bool {
        self.diff(other, tol).is_none()
    }

    /// The first field on which `other` disagrees, or `None` when the
    /// certificates match. See [`Self::matches`].
    pub fn diff(&self, other: &Self, tol: f64) -> Option<String> {
        if self.params != other.params {
            return Some("params".into());
        }
        if self.verdict != other.verdict {
            return Some(format!(
                "verdict ({} vs {})",
                self.verdict.label(),
                other.verdict.label()
            ));
        }
        let exact: [(&str, u64, u64); 9] = [
            ("pieces", self.pieces as u64, other.pieces as u64),
            (
                "refinement_splits",
                self.refinement_splits as u64,
                other.refinement_splits as u64,
            ),
            (
                "refinement_depth",
                self.refinement_depth as u64,
                other.refinement_depth as u64,
            ),
            (
                "reach_steps",
                self.reach_steps as u64,
                other.reach_steps as u64,
            ),
            (
                "reach_peak_boxes",
                self.reach_peak_boxes as u64,
                other.reach_peak_boxes as u64,
            ),
            (
                "invariant_cells",
                self.invariant_cells as u64,
                other.invariant_cells as u64,
            ),
            (
                "invariant_alive",
                self.invariant_alive as u64,
                other.invariant_alive as u64,
            ),
            (
                "invariant_iterations",
                self.invariant_iterations as u64,
                other.invariant_iterations as u64,
            ),
            (
                "invariant_digest",
                self.invariant_digest,
                other.invariant_digest,
            ),
        ];
        for (name, a, b) in exact {
            if a != b {
                return Some(format!("{name} ({a} vs {b})"));
            }
        }
        let flags = [
            ("reach_safe", self.reach_safe, other.reach_safe),
            (
                "invariant_converged",
                self.invariant_converged,
                other.invariant_converged,
            ),
            (
                "final_frame_contained",
                self.final_frame_contained,
                other.final_frame_contained,
            ),
        ];
        for (name, a, b) in flags {
            if a != b {
                return Some(format!("{name} ({a} vs {b})"));
            }
        }
        let floats = [
            ("lipschitz", self.lipschitz, other.lipschitz),
            ("epsilon", self.epsilon, other.epsilon),
        ];
        for (name, a, b) in floats {
            if !close(a, b, tol) {
                return Some(format!("{name} ({a} vs {b})"));
            }
        }
        if self.reach_final_hull.dim() != other.reach_final_hull.dim() {
            return Some("reach_final_hull dimension".into());
        }
        for (i, (a, b)) in self
            .reach_final_hull
            .intervals()
            .iter()
            .zip(other.reach_final_hull.intervals())
            .enumerate()
        {
            if !close(a.lo(), b.lo(), tol) || !close(a.hi(), b.hi(), tol) {
                return Some(format!("reach_final_hull dimension {i} ({a} vs {b})"));
            }
        }
        // verify_ms deliberately excluded: wall-clock is a metric, not a claim
        None
    }
}

/// Relative closeness with an absolute floor, the same contract as the
/// fast-tier certificate comparison.
fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1e-300)
}

/// 64-bit FNV-1a over the grid resolution followed by the packed survival
/// bitmap (8 cells per byte, cell 0 in the least-significant bit).
fn invariant_digest(grid: usize, alive: &[bool]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    };
    for byte in (grid as u64).to_le_bytes() {
        eat(byte);
    }
    for chunk in alive.chunks(8) {
        let mut packed = 0u8;
        for (bit, &a) in chunk.iter().enumerate() {
            if a {
                packed |= 1 << bit;
            }
        }
        eat(packed);
    }
    h
}

/// Runs the full verification loop for the scaled network `scale ⊙ net` in
/// closed loop with `sys` and condenses the outcome into a [`SafetyCert`].
///
/// Telemetry: `verify/bernstein`, `verify/reach` and `verify/invariant`
/// spans meter the stage wall-clocks, a `verify.cells_refined` counter
/// records the partition bisections, `verify.budget_exhaustions` counts
/// budget blow-ups (the paper's `κ_D` failure mode), and a `verify.verdict`
/// event reports the outcome — all gated on `tel.enabled()` and never
/// perturbing the certificate itself.
///
/// # Errors
///
/// Propagates [`VerifyError`] from any stage: `ResourceExhausted` when a
/// partition/cell budget blows up, `DomainEscape` when the entire reachable
/// image leaves the certified domain.
///
/// # Panics
///
/// Panics on dimension mismatches between the network, plant and boxes.
pub fn certify_controller(
    sys: &dyn Dynamics,
    net: &Mlp,
    scale: &[f64],
    params: &SafetyParams,
    workers: usize,
    tel: &dyn Telemetry,
) -> Result<SafetyCert, VerifyError> {
    let start = Instant::now();
    let domain = sys.verification_domain();

    let built = {
        let _span = Span::enter(tel, "verify/bernstein");
        BernsteinCertificate::build_with_workers(net, scale, &domain, &params.certificate, workers)
    };
    let (cert, stats) = match built {
        Ok(v) => v,
        Err(e) => return Err(note_exhaustion(tel, e)),
    };
    if tel.enabled() {
        tel.record(Event::counter("verify.cells_refined", stats.splits as u64));
    }

    let reach = {
        let _span = Span::enter(tel, "verify/reach");
        reach_analysis(sys, &cert, &params.initial_set, &params.reach)
    };
    let reach = match reach {
        Ok(r) => r,
        Err(e) => return Err(note_exhaustion(tel, e)),
    };

    let inv = {
        let _span = Span::enter(tel, "verify/invariant");
        invariant_set_with_workers(sys, &cert, &params.invariant, workers)
    };
    let inv = match inv {
        Ok(r) => r,
        Err(e) => return Err(note_exhaustion(tel, e)),
    };

    let contained = inv.converged
        && reach
            .frames
            .last()
            .is_some_and(|frame| frame.iter().all(|b| inv.contains_box(b)));
    let verdict = if reach.verified_safe && contained {
        SafetyVerdict::Safe
    } else {
        SafetyVerdict::NotProven
    };
    let alive = inv.alive();
    let out = SafetyCert {
        params: params.clone(),
        verdict,
        lipschitz: cert.lipschitz(),
        epsilon: cert.epsilon(),
        pieces: cert.piece_count(),
        refinement_splits: stats.splits,
        refinement_depth: stats.depth,
        reach_steps: reach.frames.len().saturating_sub(1),
        reach_peak_boxes: reach.peak_boxes,
        reach_safe: reach.verified_safe,
        reach_final_hull: reach.final_hull(),
        invariant_cells: alive.len(),
        invariant_alive: alive.iter().filter(|&&a| a).count(),
        invariant_iterations: inv.iterations,
        invariant_converged: inv.converged,
        invariant_digest: invariant_digest(inv.grid(), alive),
        final_frame_contained: contained,
        verify_ms: start.elapsed().as_secs_f64() * 1e3,
    };
    if tel.enabled() {
        tel.record(
            Event::point("verify.verdict")
                .with("verdict", out.verdict.label())
                .with("pieces", out.pieces)
                .with("epsilon", out.epsilon)
                .with("invariant_alive", out.invariant_alive)
                .with("verify_ms", out.verify_ms),
        );
    }
    Ok(out)
}

/// Counts budget exhaustions before handing the error back.
fn note_exhaustion(tel: &dyn Telemetry, e: VerifyError) -> VerifyError {
    if tel.enabled() {
        if let VerifyError::ResourceExhausted { resource, .. } = &e {
            tel.record(Event::counter("verify.budget_exhaustions", 1).with("resource", *resource));
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_env::systems::VanDerPol;
    use cocktail_nn::{Activation, Mlp, MlpBuilder};
    use cocktail_obs::{InMemorySink, NullSink};

    fn student(seed: u64) -> Mlp {
        MlpBuilder::new(2)
            .hidden(8, Activation::Tanh)
            .output(1, Activation::Tanh)
            .seed(seed)
            .build()
    }

    #[test]
    fn certification_is_deterministic_and_worker_invariant() {
        let sys = VanDerPol::new();
        let net = student(11);
        let params = fast_params(&sys);
        let reference =
            certify_controller(&sys, &net, &[20.0], &params, 1, &NullSink).expect("certifies");
        for workers in [2usize, 8] {
            let got = certify_controller(&sys, &net, &[20.0], &params, workers, &NullSink)
                .expect("certifies");
            assert!(got.matches(&reference, 0.0), "workers = {workers}");
            let mut a = got.clone();
            let mut b = reference.clone();
            a.verify_ms = 0.0;
            b.verify_ms = 0.0;
            assert_eq!(a, b, "bit-identical modulo wall-clock, workers = {workers}");
        }
    }

    #[test]
    fn telemetry_does_not_perturb_the_certificate() {
        // NullSink bit-equality: the enabled()-gated instrumentation must
        // never change the artifact
        let sys = VanDerPol::new();
        let net = student(3);
        let params = fast_params(&sys);
        let silent =
            certify_controller(&sys, &net, &[20.0], &params, 2, &NullSink).expect("certifies");
        let observed = InMemorySink::new();
        let loud =
            certify_controller(&sys, &net, &[20.0], &params, 2, &observed).expect("certifies");
        assert!(loud.matches(&silent, 0.0));
        let mut a = loud.clone();
        let mut b = silent.clone();
        a.verify_ms = 0.0;
        b.verify_ms = 0.0;
        assert_eq!(a, b);
        assert_eq!(
            observed.counter_total("verify.cells_refined") as usize,
            loud.refinement_splits
        );
        assert_eq!(observed.events_named("verify.verdict").len(), 1);
    }

    #[test]
    fn matches_flags_every_tampered_field() {
        let sys = VanDerPol::new();
        let net = student(11);
        let params = fast_params(&sys);
        let cert =
            certify_controller(&sys, &net, &[20.0], &params, 2, &NullSink).expect("certifies");
        let tol = 1e-9;
        assert!(cert.matches(&cert.clone(), tol));

        let mut t = cert.clone();
        t.invariant_digest ^= 1;
        assert!(cert
            .diff(&t, tol)
            .expect("differs")
            .contains("invariant_digest"));

        let mut t = cert.clone();
        t.epsilon *= 0.5;
        assert!(cert.diff(&t, tol).expect("differs").contains("epsilon"));

        let mut t = cert.clone();
        t.pieces += 1;
        assert!(cert.diff(&t, tol).expect("differs").contains("pieces"));

        let mut t = cert.clone();
        t.params.reach.steps += 1;
        assert!(cert.diff(&t, tol).expect("differs").contains("params"));

        let mut t = cert.clone();
        t.reach_final_hull = t.reach_final_hull.inflate(0.1);
        assert!(cert
            .diff(&t, tol)
            .expect("differs")
            .contains("reach_final_hull"));

        // wall-clock is a metric, not a claim
        let mut t = cert.clone();
        t.verify_ms *= 100.0;
        assert!(cert.matches(&t, tol));
    }

    #[test]
    fn budget_exhaustion_is_counted() {
        let sys = VanDerPol::new();
        let net = student(7);
        let mut params = fast_params(&sys);
        params.certificate.tolerance = 1e-4;
        params.certificate.max_pieces = 8;
        let tel = InMemorySink::new();
        let err = certify_controller(&sys, &net, &[100.0], &params, 2, &tel)
            .expect_err("tiny budget must blow up");
        assert!(matches!(err, VerifyError::ResourceExhausted { .. }));
        assert_eq!(tel.counter_total("verify.budget_exhaustions"), 1);
    }

    #[test]
    fn budget_ceilings_catch_hostile_params() {
        let sys = VanDerPol::new();
        let domain = sys.verification_domain();
        let good = default_params(&sys);
        assert!(good.budget_ceiling_violation(&domain).is_none());

        let mut p = good.clone();
        p.reach.split_width = 1e-9;
        assert!(p.budget_ceiling_violation(&domain).is_some());

        let mut p = good.clone();
        p.invariant.grid = 4096;
        assert!(p.budget_ceiling_violation(&domain).is_some());

        let mut p = good.clone();
        p.certificate.max_pieces = usize::MAX;
        assert!(p.budget_ceiling_violation(&domain).is_some());

        let mut p = good.clone();
        p.reach.steps = 1000;
        assert!(p.budget_ceiling_violation(&domain).is_some());

        let mut p = good.clone();
        p.initial_set = BoxRegion::cube(2, -100.0, 100.0);
        assert!(p.budget_ceiling_violation(&domain).is_some());
    }

    #[test]
    fn digest_is_stable_and_bit_sensitive() {
        let alive = vec![true, false, true, true, false, false, true, false, true];
        let a = invariant_digest(3, &alive);
        assert_eq!(a, invariant_digest(3, &alive));
        let mut flipped = alive.clone();
        flipped[4] = true;
        assert_ne!(a, invariant_digest(3, &flipped));
        assert_ne!(a, invariant_digest(4, &alive));
    }
}
