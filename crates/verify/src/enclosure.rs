//! Controller enclosures: sound output bounds over state boxes.

use cocktail_math::{BoxRegion, Interval, Matrix};
use cocktail_nn::Mlp;

/// A sound enclosure of a controller's output over state boxes: for every
/// concrete `x ∈ q`, `κ(x)` lies inside the returned intervals.
///
/// The reachability and invariant analyses consume controllers exclusively
/// through this trait, so they work identically with the paper's Bernstein
/// certificate, plain interval bound propagation (an ablation path), or
/// the exact enclosure of a linear law.
pub trait ControlEnclosure: Send + Sync {
    /// State dimension.
    fn state_dim(&self) -> usize;

    /// Control dimension.
    fn control_dim(&self) -> usize;

    /// Sound output bounds over `q`.
    ///
    /// # Panics
    ///
    /// Implementations panic when `q.dim() != self.state_dim()` or when `q`
    /// lies outside the certified domain.
    fn enclose(&self, q: &BoxRegion) -> Vec<Interval>;
}

/// Interval-bound-propagation enclosure of a scaled MLP — no Bernstein
/// certificate needed, used as the ablation alternative in the benches.
#[derive(Debug, Clone)]
pub struct IbpEnclosure {
    net: Mlp,
    scale: Vec<f64>,
}

impl IbpEnclosure {
    /// Wraps a scaled network.
    ///
    /// # Panics
    ///
    /// Panics if `scale.len() != net.output_dim()`.
    pub fn new(net: Mlp, scale: Vec<f64>) -> Self {
        assert_eq!(scale.len(), net.output_dim(), "scale length mismatch");
        Self { net, scale }
    }
}

impl ControlEnclosure for IbpEnclosure {
    fn state_dim(&self) -> usize {
        self.net.input_dim()
    }

    fn control_dim(&self) -> usize {
        self.net.output_dim()
    }

    fn enclose(&self, q: &BoxRegion) -> Vec<Interval> {
        self.net
            .bounds(q)
            .into_iter()
            .zip(&self.scale)
            .map(|(iv, &s)| iv * s)
            .collect()
    }
}

/// Exact enclosure of the linear feedback law `u = −K x` (interval matrix-
/// vector product is exact for linear maps over boxes).
#[derive(Debug, Clone)]
pub struct LinearEnclosure {
    gain: Matrix,
}

impl LinearEnclosure {
    /// Wraps a gain matrix (`u = −gain · x`).
    pub fn new(gain: Matrix) -> Self {
        Self { gain }
    }
}

impl ControlEnclosure for LinearEnclosure {
    fn state_dim(&self) -> usize {
        self.gain.cols()
    }

    fn control_dim(&self) -> usize {
        self.gain.rows()
    }

    fn enclose(&self, q: &BoxRegion) -> Vec<Interval> {
        (0..self.gain.rows())
            .map(|r| {
                let mut acc = Interval::point(0.0);
                for (c, iv) in q.intervals().iter().enumerate() {
                    acc = acc + *iv * (-self.gain[(r, c)]);
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_nn::{Activation, MlpBuilder};

    #[test]
    fn ibp_enclosure_contains_samples() {
        let net = MlpBuilder::new(2)
            .hidden(6, Activation::Relu)
            .output(1, Activation::Tanh)
            .seed(2)
            .build();
        let enc = IbpEnclosure::new(net.clone(), vec![10.0]);
        let q = BoxRegion::cube(2, -0.5, 0.5);
        let bounds = enc.enclose(&q);
        let mut rng = cocktail_math::rng::seeded(4);
        for _ in 0..200 {
            let x = cocktail_math::rng::uniform_in_box(&mut rng, &q);
            assert!(bounds[0].inflate(1e-9).contains(10.0 * net.forward(&x)[0]));
        }
    }

    #[test]
    fn linear_enclosure_is_exact_at_corners() {
        let gain = Matrix::from_rows(vec![vec![2.0, -1.0]]);
        let enc = LinearEnclosure::new(gain);
        let q = BoxRegion::from_bounds(&[0.0, 0.0], &[1.0, 2.0]);
        let iv = enc.enclose(&q)[0];
        // u = -(2x − y): min at (1,0) → −2, max at (0,2) → 2
        assert_eq!(iv.lo(), -2.0);
        assert_eq!(iv.hi(), 2.0);
    }

    #[test]
    fn trait_is_object_safe() {
        let enc: Box<dyn ControlEnclosure> = Box::new(LinearEnclosure::new(Matrix::identity(2)));
        assert_eq!(enc.state_dim(), 2);
        assert_eq!(enc.control_dim(), 2);
    }
}
