//! Bernstein-polynomial over-approximation of neural controllers.
//!
//! Following `ReachNN` \[21\] and the paper's Section III-C, a network
//! `κ: X → R` is replaced by `B_d(x) ± ε` where `B_d` is the degree-`d`
//! tensor-product Bernstein approximant and `ε` a *rigorous* error bound.
//! The classical modulus-of-continuity estimate gives, per dimension of
//! width `wᵢ` and network Lipschitz constant `L` (2-norm, which dominates
//! every coordinate direction):
//!
//! ```text
//! ‖B_d κ − κ‖_∞  ≤  (3/2) · L · Σᵢ wᵢ / √d
//! ```
//!
//! so the error shrinks with the partition width — and *grows with `L`*,
//! which is exactly the mechanism that makes low-Lipschitz students cheap
//! to verify (Table I, Figs. 3–4). When a piece's bound exceeds the
//! tolerance it is bisected; the total piece budget is capped and a
//! high-`L` network exhausts it ([`VerifyError::ResourceExhausted`]).

use crate::enclosure::ControlEnclosure;
use crate::error::VerifyError;
use cocktail_math::{BoxRegion, Interval};
use cocktail_nn::Mlp;
use serde::{Deserialize, Serialize};

/// Binomial coefficient `C(n, k)` as `f64` (degrees here are ≤ ~10).
fn binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut num = 1.0;
    let mut den = 1.0;
    for i in 0..k {
        num *= (n - i) as f64;
        den *= (i + 1) as f64;
    }
    num / den
}

/// A single-output Bernstein approximant over a box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BernsteinApprox {
    domain: BoxRegion,
    degree: usize,
    /// Coefficients on the `(degree+1)^n` tensor grid, lexicographic in the
    /// per-dimension index (dimension 0 fastest).
    coeffs: Vec<f64>,
}

impl BernsteinApprox {
    /// Builds the degree-`degree` approximant of `f` over `domain` by
    /// sampling `f` on the uniform `(degree+1)^n` grid.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0`.
    pub fn build(f: &dyn Fn(&[f64]) -> f64, domain: &BoxRegion, degree: usize) -> Self {
        assert!(degree > 0, "degree must be positive");
        let n = domain.dim();
        let pts = degree + 1;
        let count = pts.pow(n as u32);
        let mut coeffs = Vec::with_capacity(count);
        let mut idx = vec![0usize; n];
        for _ in 0..count {
            let t: Vec<f64> = idx.iter().map(|&k| k as f64 / degree as f64).collect();
            coeffs.push(f(&domain.lerp(&t)));
            // increment mixed-radix counter
            for item in idx.iter_mut() {
                *item += 1;
                if *item < pts {
                    break;
                }
                *item = 0;
            }
        }
        Self {
            domain: domain.clone(),
            degree,
            coeffs,
        }
    }

    /// The approximation domain.
    pub fn domain(&self) -> &BoxRegion {
        &self.domain
    }

    /// The polynomial degree per dimension.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Evaluates the approximant at a point of the domain.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != domain.dim()`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        let t = self.domain.to_unit(x);
        let n = t.len();
        let d = self.degree;
        // per-dimension basis values B_{k,d}(tᵢ)
        let basis: Vec<Vec<f64>> = t
            .iter()
            .map(|&ti| {
                (0..=d)
                    .map(|k| binomial(d, k) * ti.powi(k as i32) * (1.0 - ti).powi((d - k) as i32))
                    .collect()
            })
            .collect();
        let pts = d + 1;
        let mut acc = 0.0;
        let mut idx = vec![0usize; n];
        for &c in &self.coeffs {
            let mut w = c;
            for (i, &k) in idx.iter().enumerate() {
                w *= basis[i][k];
            }
            acc += w;
            for item in idx.iter_mut() {
                *item += 1;
                if *item < pts {
                    break;
                }
                *item = 0;
            }
        }
        acc
    }

    /// The convex-hull enclosure over the *whole* domain: a Bernstein-form
    /// polynomial lies within the range of its coefficients.
    pub fn coefficient_range(&self) -> Interval {
        let lo = self.coeffs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = self
            .coeffs
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        Interval::new(lo, hi)
    }

    /// An upper bound on this approximant's own 2-norm Lipschitz constant,
    /// from the first differences of the coefficient tensor.
    pub fn lipschitz_bound(&self) -> f64 {
        bernstein_lipschitz(self)
    }

    /// Sound enclosure of the approximant over a sub-box `q ⊆ domain`.
    ///
    /// Three sound bounds are intersected: the convex-hull property of the
    /// Bernstein form (the basis is a partition of unity, so the value lies
    /// in the coefficient range over *any* sub-box), interval evaluation
    /// of the basis products, and the mean-value bound
    /// `B(mid(q)) ± L_B · radius₂(q)` (the tightest for small sub-boxes).
    ///
    /// # Panics
    ///
    /// Panics if `q.dim() != domain.dim()`.
    pub fn enclose(&self, q: &BoxRegion) -> Interval {
        let mut bound = self.coefficient_range();
        if let Some(tighter) = bound.intersect(&self.enclose_by_basis(q)) {
            bound = tighter;
        }
        let radius = q
            .intervals()
            .iter()
            .map(|iv| iv.radius() * iv.radius())
            .sum::<f64>()
            .sqrt();
        let centre = self.eval(&q.center());
        let mean_value =
            Interval::symmetric(self.lipschitz_bound() * radius) + Interval::point(centre);
        bound.intersect(&mean_value).unwrap_or(bound)
    }

    fn enclose_by_basis(&self, q: &BoxRegion) -> Interval {
        assert_eq!(q.dim(), self.domain.dim(), "sub-box dimension mismatch");
        // unit coordinates of the sub-box, clamped to [0,1]
        let n = q.dim();
        let d = self.degree;
        let t: Vec<Interval> = (0..n)
            .map(|i| {
                let lo = self.domain.to_unit(&q.lower())[i].clamp(0.0, 1.0);
                let hi = self.domain.to_unit(&q.upper())[i].clamp(0.0, 1.0);
                Interval::new(lo.min(hi), hi.max(lo))
            })
            .collect();
        let one = Interval::point(1.0);
        let basis: Vec<Vec<Interval>> = t
            .iter()
            .map(|&ti| {
                (0..=d)
                    .map(|k| {
                        Interval::point(binomial(d, k))
                            * ti.powi(k as u32)
                            * (one - ti).powi((d - k) as u32)
                    })
                    .collect()
            })
            .collect();
        let pts = d + 1;
        let mut acc = Interval::point(0.0);
        let mut idx = vec![0usize; n];
        for &c in &self.coeffs {
            let mut w = Interval::point(c);
            for (i, &k) in idx.iter().enumerate() {
                w = w * basis[i][k];
            }
            acc = acc + w;
            for item in idx.iter_mut() {
                *item += 1;
                if *item < pts {
                    break;
                }
                *item = 0;
            }
        }
        acc
    }
}

/// Classical rigorous Bernstein error bound for a Lipschitz-`l` function
/// over a box: `(3/2)·l·Σᵢwᵢ/√d`. Used as a cheap acceptance test; the
/// certificate falls back to the (still sound, much tighter)
/// sampled-plus-Lipschitz-margin bound when this is too conservative.
pub fn rigorous_error_bound(lipschitz: f64, domain: &BoxRegion, degree: usize) -> f64 {
    let width_sum: f64 = domain.intervals().iter().map(Interval::width).sum();
    1.5 * lipschitz * width_sum / (degree as f64).sqrt()
}

/// An upper bound on the 2-norm Lipschitz constant of a Bernstein
/// approximant, from the first differences of its coefficient tensor:
/// `|∂B/∂tᵢ| ≤ d·max_k |c_{k+eᵢ} − c_k|` in unit coordinates.
fn bernstein_lipschitz(poly: &BernsteinApprox) -> f64 {
    let n = poly.domain.dim();
    let d = poly.degree;
    let pts = d + 1;
    let mut acc = 0.0;
    for i in 0..n {
        let stride: usize = pts.pow(i as u32);
        let mut max_diff: f64 = 0.0;
        for (idx, &c) in poly.coeffs.iter().enumerate() {
            // index along dimension i
            let k = (idx / stride) % pts;
            if k + 1 < pts {
                max_diff = max_diff.max((poly.coeffs[idx + stride] - c).abs());
            }
        }
        let w = poly.domain.interval(i).width();
        if w > 0.0 {
            let l_i = d as f64 * max_diff / w;
            acc += l_i * l_i;
        }
    }
    acc.sqrt()
}

/// Sound error bound for `|f − B|` over the piece from a dense sample grid
/// plus the Lipschitz covering margin: if the grid has covering radius `r`
/// (2-norm) then `‖f − B‖_∞ ≤ max_grid |f − B| + (L_f + L_B)·r`.
fn sampled_error_bound(
    f: &dyn Fn(&[f64]) -> f64,
    poly: &BernsteinApprox,
    f_lipschitz: f64,
    samples_per_dim: usize,
) -> f64 {
    let n = poly.domain.dim();
    let m = samples_per_dim.max(2);
    let mut worst: f64 = 0.0;
    let mut idx = vec![0usize; n];
    let count = m.pow(n as u32);
    for _ in 0..count {
        let t: Vec<f64> = idx.iter().map(|&k| k as f64 / (m - 1) as f64).collect();
        let x = poly.domain.lerp(&t);
        worst = worst.max((f(&x) - poly.eval(&x)).abs());
        for item in idx.iter_mut() {
            *item += 1;
            if *item < m {
                break;
            }
            *item = 0;
        }
    }
    let r = 0.5
        * poly
            .domain
            .intervals()
            .iter()
            .map(|iv| {
                let h = iv.width() / (m - 1) as f64;
                h * h
            })
            .sum::<f64>()
            .sqrt();
    worst + (f_lipschitz + bernstein_lipschitz(poly)) * r
}

/// Configuration for [`BernsteinCertificate::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CertificateConfig {
    /// Bernstein degree per dimension.
    pub degree: usize,
    /// Target approximation error per piece.
    pub tolerance: f64,
    /// Maximum number of partition pieces before giving up — the analogue
    /// of the paper's memory blow-up for high-Lipschitz students.
    pub max_pieces: usize,
    /// Sample-grid resolution per dimension for the sound
    /// sampled-plus-Lipschitz-margin error bound of each piece.
    pub error_samples_per_dim: usize,
}

impl Default for CertificateConfig {
    fn default() -> Self {
        Self {
            degree: 4,
            tolerance: 0.5,
            max_pieces: 2048,
            error_samples_per_dim: 5,
        }
    }
}

/// Partition-refinement statistics of a certificate build: how many
/// bisections were performed and how deep the refinement went. Shipped in
/// the safety certificate so admission can compare them exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefineStats {
    /// Number of bisections performed (cells refined).
    pub splits: usize,
    /// Number of refinement levels (0 when the root piece met tolerance).
    pub depth: usize,
}

/// A piecewise Bernstein over-approximation of a (scaled) MLP controller:
/// on every piece `P`, `κ(x) ∈ B_P(x) ± ε_P` for all `x ∈ P`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BernsteinCertificate {
    pieces: Vec<CertPiece>,
    domain: BoxRegion,
    output_dim: usize,
    lipschitz: f64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CertPiece {
    region: BoxRegion,
    polys: Vec<BernsteinApprox>,
    epsilon: f64,
}

impl BernsteinCertificate {
    /// Builds a certificate for the scaled network `x ↦ scale ⊙ net(x)`
    /// over `domain`, refining the partition until every piece meets the
    /// tolerance.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::ResourceExhausted`] when more than
    /// `config.max_pieces` pieces would be needed — high-Lipschitz networks
    /// hit this budget, which is the paper's `κ_D` failure mode.
    ///
    /// # Panics
    ///
    /// Panics if `scale.len() != net.output_dim()` or
    /// `domain.dim() != net.input_dim()`.
    pub fn build(
        net: &Mlp,
        scale: &[f64],
        domain: &BoxRegion,
        config: &CertificateConfig,
    ) -> Result<Self, VerifyError> {
        Self::build_with_workers(
            net,
            scale,
            domain,
            config,
            cocktail_math::parallel::default_workers(),
        )
        .map(|(cert, _)| cert)
    }

    /// [`Self::build`] with an explicit worker count, returning the
    /// refinement statistics alongside the certificate.
    ///
    /// Refinement is level-synchronous: every region of the current frontier
    /// is evaluated in parallel, then accepted or bisected in index order.
    /// Each region's approximants and error bound depend only on that
    /// region, so the resulting certificate is bit-identical for every
    /// `workers >= 1`.
    ///
    /// # Errors
    ///
    /// See [`Self::build`].
    ///
    /// # Panics
    ///
    /// See [`Self::build`].
    pub fn build_with_workers(
        net: &Mlp,
        scale: &[f64],
        domain: &BoxRegion,
        config: &CertificateConfig,
        workers: usize,
    ) -> Result<(Self, RefineStats), VerifyError> {
        assert_eq!(scale.len(), net.output_dim(), "scale length mismatch");
        assert_eq!(domain.dim(), net.input_dim(), "domain dimension mismatch");
        let max_scale = scale.iter().fold(0.0_f64, |m, &s| m.max(s.abs()));
        let lipschitz = max_scale * net.lipschitz_constant();

        let mut frontier = vec![domain.clone()];
        let mut pieces = Vec::new();
        let mut stats = RefineStats::default();
        while !frontier.is_empty() {
            if pieces.len() + frontier.len() > config.max_pieces {
                return Err(VerifyError::ResourceExhausted {
                    resource: "bernstein partitions",
                    budget: config.max_pieces,
                });
            }
            // build per-output approximants and bound their error soundly
            let evaluated: Vec<(Vec<BernsteinApprox>, f64)> =
                cocktail_math::parallel::map_indexed_with_workers(
                    &frontier,
                    workers,
                    |_, region| {
                        let polys: Vec<BernsteinApprox> = (0..net.output_dim())
                            .map(|o| {
                                let f = |x: &[f64]| net.forward(x)[o] * scale[o];
                                BernsteinApprox::build(&f, region, config.degree)
                            })
                            .collect();
                        let rigorous = rigorous_error_bound(lipschitz, region, config.degree);
                        let mut epsilon: f64 = 0.0;
                        for (o, poly) in polys.iter().enumerate() {
                            let f = |x: &[f64]| net.forward(x)[o] * scale[o];
                            let sampled = sampled_error_bound(
                                &f,
                                poly,
                                lipschitz,
                                config.error_samples_per_dim,
                            );
                            epsilon = epsilon.max(sampled.min(rigorous));
                        }
                        (polys, epsilon)
                    },
                );
            let mut next = Vec::new();
            for (region, (polys, epsilon)) in frontier.into_iter().zip(evaluated) {
                if epsilon > config.tolerance && region.max_width() > 1e-6 {
                    let (a, b) = region.bisect();
                    next.push(a);
                    next.push(b);
                    stats.splits += 1;
                } else {
                    pieces.push(CertPiece {
                        region,
                        polys,
                        epsilon,
                    });
                }
            }
            frontier = next;
            if !frontier.is_empty() {
                stats.depth += 1;
            }
        }
        Ok((
            Self {
                pieces,
                domain: domain.clone(),
                output_dim: scale.len(),
                lipschitz,
            },
            stats,
        ))
    }

    /// Number of partition pieces — the paper's verification-cost driver.
    pub fn piece_count(&self) -> usize {
        self.pieces.len()
    }

    /// The largest per-piece error bound `ε = max(ε̂_p)`.
    pub fn epsilon(&self) -> f64 {
        self.pieces.iter().map(|p| p.epsilon).fold(0.0, f64::max)
    }

    /// The Lipschitz bound of the certified network.
    pub fn lipschitz(&self) -> f64 {
        self.lipschitz
    }

    /// The certified domain.
    pub fn domain(&self) -> &BoxRegion {
        &self.domain
    }

    /// The pieces intersecting `q` (used by the analyses).
    fn pieces_covering<'a>(&'a self, q: &'a BoxRegion) -> impl Iterator<Item = &'a CertPiece> {
        self.pieces
            .iter()
            .filter(move |p| p.region.intersect(q).is_some())
    }

    /// Evaluates the certified approximation at a point (mid-value, no
    /// error term) — diagnostics only.
    ///
    /// # Panics
    ///
    /// Panics if `x` lies outside the certified domain.
    #[allow(
        clippy::expect_used,
        reason = "the out-of-domain panic is documented above"
    )]
    pub fn eval(&self, x: &[f64]) -> Vec<f64> {
        let piece = self
            .pieces
            .iter()
            .find(|p| p.region.contains(x))
            .expect("point outside certified domain");
        piece.polys.iter().map(|p| p.eval(x)).collect()
    }
}

impl ControlEnclosure for BernsteinCertificate {
    fn state_dim(&self) -> usize {
        self.domain.dim()
    }

    fn control_dim(&self) -> usize {
        self.output_dim
    }

    #[allow(
        clippy::expect_used,
        reason = "pieces_covering yields only intersecting pieces, and the partition covers the domain"
    )]
    fn enclose(&self, q: &BoxRegion) -> Vec<Interval> {
        let mut out: Vec<Option<Interval>> = vec![None; self.output_dim];
        for piece in self.pieces_covering(q) {
            let overlap = piece.region.intersect(q).expect("filtered to intersecting");
            for (o, poly) in piece.polys.iter().enumerate() {
                let iv = poly.enclose(&overlap).inflate(piece.epsilon);
                out[o] = Some(match out[o] {
                    Some(acc) => acc.hull(&iv),
                    None => iv,
                });
            }
        }
        out.into_iter()
            .map(|iv| iv.expect("query box must intersect the certified domain"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_nn::{Activation, MlpBuilder};

    #[test]
    fn binomial_matches_pascal() {
        assert_eq!(binomial(4, 0), 1.0);
        assert_eq!(binomial(4, 2), 6.0);
        assert_eq!(binomial(5, 3), 10.0);
    }

    #[test]
    fn approximates_linear_function_exactly() {
        // Bernstein operators reproduce affine functions exactly
        let f = |x: &[f64]| 2.0 * x[0] - x[1] + 0.5;
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let b = BernsteinApprox::build(&f, &domain, 3);
        for p in [[0.0, 0.0], [0.5, -0.5], [1.0, 1.0], [-0.3, 0.7]] {
            assert!((b.eval(&p) - f(&p)).abs() < 1e-9, "at {p:?}");
        }
    }

    #[test]
    fn approximation_error_shrinks_with_degree() {
        let f = |x: &[f64]| (3.0 * x[0]).sin();
        let domain = BoxRegion::cube(1, -1.0, 1.0);
        let errs: Vec<f64> = [2usize, 8, 32]
            .iter()
            .map(|&d| {
                let b = BernsteinApprox::build(&f, &domain, d);
                (0..100)
                    .map(|i| {
                        let x = [-1.0 + 2.0 * i as f64 / 99.0];
                        (b.eval(&x) - f(&x)).abs()
                    })
                    .fold(0.0, f64::max)
            })
            .collect();
        assert!(errs[0] > errs[1] && errs[1] > errs[2], "{errs:?}");
    }

    #[test]
    fn coefficient_range_encloses_values() {
        let f = |x: &[f64]| x[0] * x[0];
        let domain = BoxRegion::cube(1, -1.0, 1.0);
        let b = BernsteinApprox::build(&f, &domain, 5);
        let range = b.coefficient_range();
        for i in 0..50 {
            let x = [-1.0 + 2.0 * i as f64 / 49.0];
            assert!(range.inflate(1e-12).contains(b.eval(&x)));
        }
    }

    #[test]
    fn sub_box_enclosure_contains_poly_values() {
        let f = |x: &[f64]| (x[0] - 0.3) * (x[1] + 0.2);
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let b = BernsteinApprox::build(&f, &domain, 4);
        let q = BoxRegion::from_bounds(&[-0.25, 0.1], &[0.25, 0.6]);
        let iv = b.enclose(&q);
        let mut rng = cocktail_math::rng::seeded(1);
        for _ in 0..100 {
            let x = cocktail_math::rng::uniform_in_box(&mut rng, &q);
            assert!(iv.inflate(1e-9).contains(b.eval(&x)));
        }
    }

    #[test]
    fn rigorous_bound_scales_with_lipschitz() {
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let low = rigorous_error_bound(1.0, &domain, 4);
        let high = rigorous_error_bound(10.0, &domain, 4);
        assert!((high - 10.0 * low).abs() < 1e-12);
    }

    fn small_net(seed: u64) -> Mlp {
        MlpBuilder::new(2)
            .hidden(6, Activation::Tanh)
            .output(1, Activation::Tanh)
            .seed(seed)
            .build()
    }

    #[test]
    fn certificate_is_sound_on_samples() {
        let net = small_net(5);
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let cert = BernsteinCertificate::build(
            &net,
            &[5.0],
            &domain,
            &CertificateConfig {
                tolerance: 0.4,
                ..Default::default()
            },
        )
        .expect("budget suffices");
        let mut rng = cocktail_math::rng::seeded(3);
        for _ in 0..300 {
            let x = cocktail_math::rng::uniform_in_box(&mut rng, &domain);
            let truth = 5.0 * net.forward(&x)[0];
            // enclose a tiny box around x
            let q =
                BoxRegion::from_bounds(&[x[0] - 1e-6, x[1] - 1e-6], &[x[0] + 1e-6, x[1] + 1e-6])
                    .intersect(&domain)
                    .expect("inside");
            let iv = cert.enclose(&q);
            assert!(
                iv[0].inflate(1e-6).contains(truth),
                "{truth} escapes {}",
                iv[0]
            );
        }
    }

    #[test]
    fn lower_lipschitz_needs_fewer_pieces() {
        let net = small_net(6);
        let mut shrunk = net.clone();
        for l in shrunk.layers_mut() {
            l.weights_mut().scale_inplace(0.5);
        }
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let cfg = CertificateConfig {
            tolerance: 0.3,
            max_pieces: 1 << 14,
            ..Default::default()
        };
        let big = BernsteinCertificate::build(&net, &[10.0], &domain, &cfg).expect("fits");
        let small = BernsteinCertificate::build(&shrunk, &[10.0], &domain, &cfg).expect("fits");
        assert!(
            small.piece_count() <= big.piece_count(),
            "small {} vs big {}",
            small.piece_count(),
            big.piece_count()
        );
        assert!(small.lipschitz() < big.lipschitz());
    }

    #[test]
    fn worker_count_does_not_change_the_certificate() {
        let net = small_net(5);
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let cfg = CertificateConfig {
            tolerance: 0.35,
            ..Default::default()
        };
        let (reference, ref_stats) =
            BernsteinCertificate::build_with_workers(&net, &[5.0], &domain, &cfg, 1).expect("fits");
        assert!(
            reference.piece_count() > 1,
            "refinement must actually happen"
        );
        assert!(ref_stats.splits > 0);
        for workers in [2usize, 8] {
            let (cert, stats) =
                BernsteinCertificate::build_with_workers(&net, &[5.0], &domain, &cfg, workers)
                    .expect("fits");
            assert_eq!(cert, reference, "workers = {workers}");
            assert_eq!(stats, ref_stats, "workers = {workers}");
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let net = small_net(7);
        let domain = BoxRegion::cube(2, -2.0, 2.0);
        let err = BernsteinCertificate::build(
            &net,
            &[100.0],
            &domain,
            &CertificateConfig {
                tolerance: 1e-3,
                max_pieces: 8,
                ..Default::default()
            },
        )
        .expect_err("tiny budget must blow up");
        assert!(matches!(err, VerifyError::ResourceExhausted { .. }));
    }

    #[test]
    fn eval_matches_network_within_epsilon() {
        let net = small_net(8);
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let cert =
            BernsteinCertificate::build(&net, &[1.0], &domain, &CertificateConfig::default())
                .expect("fits");
        let x = [0.2, -0.4];
        let approx = cert.eval(&x)[0];
        let truth = net.forward(&x)[0];
        assert!((approx - truth).abs() <= cert.epsilon() + 1e-9);
    }
}
