//! End-to-end safety certification of a neural controller.
//!
//! [`certify_safety`] bundles the whole Section III-C pipeline into one
//! call: build the Bernstein certificate for the student over the
//! verification domain, run the reachability analysis from the initial
//! set, and return a structured [`SafetyReport`] with the resource and
//! timing figures the paper treats as the verifiability metric.

use crate::bernstein::{BernsteinCertificate, CertificateConfig};
use crate::error::VerifyError;
use crate::reach::{reach_analysis, ReachConfig, ReachResult};
use cocktail_env::Dynamics;
use cocktail_math::BoxRegion;
use cocktail_nn::Mlp;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The verdict of a certification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SafetyVerdict {
    /// Every reachable over-approximation stayed inside the safe domain
    /// for the full horizon.
    Safe,
    /// The over-approximation left the safe domain — possibly spurious
    /// (over-approximation), but the property could not be proven.
    NotProven,
}

impl SafetyVerdict {
    /// Stable kebab-case label for telemetry and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            SafetyVerdict::Safe => "safe",
            SafetyVerdict::NotProven => "not-proven",
        }
    }
}

/// A structured certification result.
#[derive(Debug, Clone, Serialize)]
pub struct SafetyReport {
    /// The verdict.
    pub verdict: SafetyVerdict,
    /// Lipschitz bound of the certified controller.
    pub lipschitz: f64,
    /// Bernstein partition pieces used.
    pub bernstein_pieces: usize,
    /// The certificate's approximation error bound `ε`.
    pub epsilon: f64,
    /// Peak number of reachable boxes/cells.
    pub peak_boxes: usize,
    /// Analysis steps completed.
    pub steps: usize,
    /// Total wall-clock (certificate + reachability) — the paper's
    /// verifiability metric.
    pub total_time: Duration,
}

/// Certifies finite-horizon safety of the scaled network `scale ⊙ net`
/// in closed loop with `sys`, starting anywhere in `x0`.
///
/// # Errors
///
/// Propagates [`VerifyError`] from the certificate construction or the
/// reachability analysis (budget exhaustion, domain escape) — the paper's
/// `κ_D` failure mode surfaces here as `ResourceExhausted`.
///
/// # Panics
///
/// Panics on dimension mismatches between the network, plant and boxes.
///
/// # Examples
///
/// ```no_run
/// use cocktail_env::systems::VanDerPol;
/// use cocktail_env::Dynamics;
/// use cocktail_math::BoxRegion;
/// use cocktail_nn::{Activation, MlpBuilder};
/// use cocktail_verify::report::certify_safety;
/// use cocktail_verify::{CertificateConfig, ReachConfig};
///
/// let sys = VanDerPol::new();
/// let net = MlpBuilder::new(2).hidden(8, Activation::Tanh)
///     .output(1, Activation::Tanh).seed(0).build();
/// let report = certify_safety(
///     &sys, &net, &[20.0],
///     &BoxRegion::from_bounds(&[0.1, 0.1], &[0.2, 0.2]),
///     &CertificateConfig::default(), &ReachConfig::default(),
/// )?;
/// println!("{:?} in {:?}", report.verdict, report.total_time);
/// # Ok::<(), cocktail_verify::VerifyError>(())
/// ```
pub fn certify_safety(
    sys: &dyn Dynamics,
    net: &Mlp,
    scale: &[f64],
    x0: &BoxRegion,
    cert_config: &CertificateConfig,
    reach_config: &ReachConfig,
) -> Result<SafetyReport, VerifyError> {
    let start = Instant::now();
    let cert = BernsteinCertificate::build(net, scale, &sys.verification_domain(), cert_config)?;
    let result: ReachResult = reach_analysis(sys, &cert, x0, reach_config)?;
    Ok(SafetyReport {
        verdict: if result.verified_safe {
            SafetyVerdict::Safe
        } else {
            SafetyVerdict::NotProven
        },
        lipschitz: cert.lipschitz(),
        bernstein_pieces: cert.piece_count(),
        epsilon: cert.epsilon(),
        peak_boxes: result.peak_boxes,
        steps: result.frames.len().saturating_sub(1),
        total_time: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::ReachMode;
    use cocktail_env::systems::VanDerPol;
    use cocktail_math::Matrix;
    use cocktail_nn::train::{fit_regression, TrainConfig};
    use cocktail_nn::{Activation, MlpBuilder};

    /// Clones a stabilizing law into a small network.
    fn stabilizing_net() -> Mlp {
        let gain = Matrix::from_rows(vec![vec![3.0, 4.0]]);
        let mut states = Vec::new();
        let mut targets = Vec::new();
        let domain = BoxRegion::cube(2, -2.0, 2.0);
        let mut rng = cocktail_math::rng::seeded(0);
        for _ in 0..512 {
            let s = cocktail_math::rng::uniform_in_box(&mut rng, &domain);
            let u = -(gain[(0, 0)] * s[0] + gain[(0, 1)] * s[1]);
            targets.push(vec![(u / 20.0).clamp(-1.0, 1.0)]);
            states.push(s);
        }
        let mut net = MlpBuilder::new(2)
            .hidden(12, Activation::Tanh)
            .output(1, Activation::Tanh)
            .seed(4)
            .build();
        fit_regression(
            &mut net,
            &states,
            &targets,
            &TrainConfig {
                epochs: 120,
                ..Default::default()
            },
        );
        net
    }

    #[test]
    fn certifies_a_stabilizing_student() {
        let sys = VanDerPol::new();
        let net = stabilizing_net();
        let report = certify_safety(
            &sys,
            &net,
            &[20.0],
            &BoxRegion::from_bounds(&[0.2, 0.2], &[0.3, 0.3]),
            &CertificateConfig {
                degree: 4,
                tolerance: 0.3,
                max_pieces: 1 << 16,
                error_samples_per_dim: 7,
            },
            &ReachConfig {
                steps: 15,
                split_width: 0.05,
                mode: ReachMode::Subdivision,
                ..Default::default()
            },
        )
        .expect("must certify");
        assert_eq!(report.verdict, SafetyVerdict::Safe);
        assert!(report.bernstein_pieces > 0);
        assert!(report.epsilon <= 0.3 + 1e-12);
        assert_eq!(report.steps, 15);
        assert!(report.total_time.as_secs_f64() > 0.0);
    }

    #[test]
    fn reports_budget_exhaustion() {
        let sys = VanDerPol::new();
        let net = stabilizing_net();
        let err = certify_safety(
            &sys,
            &net,
            &[20.0],
            &BoxRegion::from_bounds(&[0.2, 0.2], &[0.3, 0.3]),
            &CertificateConfig {
                degree: 4,
                tolerance: 1e-4,
                max_pieces: 16,
                error_samples_per_dim: 5,
            },
            &ReachConfig::default(),
        )
        .expect_err("tiny budget must fail");
        assert!(matches!(err, VerifyError::ResourceExhausted { .. }));
    }
}
