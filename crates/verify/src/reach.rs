//! Finite-horizon reachable-set computation (Definition 2, Fig. 4).
//!
//! Gridded-paving reachability: the verification domain is tiled into
//! cells of the configured width and each reachable frame is a set of
//! occupied cells. Per step, every occupied cell's one-step interval image
//! (controller bounds from a sound [`ControlEnclosure`], disturbance `Ω`,
//! with the Bernstein error `ε` already folded into the enclosure —
//! the paper's `Ω ⊕ ε`) marks the cells it intersects. Snapping to the
//! grid bounds the wrapping effect and keeps the cell count finite.
//!
//! The cell budget is explicit: exceeding it returns
//! [`VerifyError::ResourceExhausted`], which is how the paper's "`κ_D` could
//! not be verified (segmentation fault after 12 reachable-set steps)"
//! manifests here.

use crate::enclosure::ControlEnclosure;
use crate::error::VerifyError;
use cocktail_env::Dynamics;
use cocktail_math::{BoxRegion, Interval};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// How reachable sets are represented between steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReachMode {
    /// Snap every image onto a global grid of `split_width` cells. Bounded
    /// memory and robust against the wrapping effect over long horizons,
    /// at the cost of up to one cell of inflation per dimension per step.
    /// Right for noisy plants and long horizons (the Fig. 3 setting).
    GridPaving,
    /// Keep exact image boxes, bisecting any box wider than `split_width`
    /// before stepping. No snap inflation — right for short horizons from
    /// small initial sets (the Fig. 4 setting) — but the box count can
    /// grow without bound on expansive flows.
    Subdivision,
}

/// Configuration for [`reach_analysis`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReachConfig {
    /// Number of forward steps `T`.
    pub steps: usize,
    /// Grid cell width ([`ReachMode::GridPaving`]) or maximum box width
    /// before bisection ([`ReachMode::Subdivision`]).
    pub split_width: f64,
    /// Maximum number of cells/boxes alive at any step.
    pub max_boxes: usize,
    /// Fail with [`VerifyError::Unsafe`] as soon as a reachable image
    /// leaves the safe domain; when `false` the result records
    /// `verified_safe = false` and the outside part is discarded (sound
    /// only for safety *refutation*, so the flag matters).
    pub fail_on_unsafe: bool,
    /// Set representation between steps.
    pub mode: ReachMode,
}

impl Default for ReachConfig {
    fn default() -> Self {
        Self {
            steps: 15,
            split_width: 0.02,
            max_boxes: 100_000,
            fail_on_unsafe: false,
            mode: ReachMode::GridPaving,
        }
    }
}

/// The result of a reachability run.
#[derive(Debug, Clone)]
pub struct ReachResult {
    /// Reachable cell union per step, `steps + 1` frames (frame 0 covers
    /// the initial box).
    pub frames: Vec<Vec<BoxRegion>>,
    /// Whether every reachable image stayed inside the safe domain.
    pub verified_safe: bool,
    /// Wall-clock time of the analysis (the paper's verifiability metric).
    pub duration: Duration,
    /// Peak number of simultaneously-occupied cells.
    pub peak_boxes: usize,
}

impl ReachResult {
    /// The tightest single box containing the final frame.
    #[allow(
        clippy::expect_used,
        reason = "a reach result always records the initial frame"
    )]
    pub fn final_hull(&self) -> BoxRegion {
        let last = self.frames.last().expect("at least the initial frame");
        let mut hull = last[0].clone();
        for b in &last[1..] {
            hull = hull.hull(b);
        }
        hull
    }
}

/// Uniform grid over a box.
struct Grid {
    domain: BoxRegion,
    counts: Vec<usize>,
}

impl Grid {
    fn new(domain: BoxRegion, cell_width: f64) -> Self {
        let counts = domain
            .intervals()
            .iter()
            .map(|iv| ((iv.width() / cell_width).ceil() as usize).max(1))
            .collect();
        Self { domain, counts }
    }

    fn cell_box(&self, index: &[usize]) -> BoxRegion {
        let dims = index
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let iv = self.domain.interval(i);
                let w = iv.width() / self.counts[i] as f64;
                Interval::new(iv.lo() + k as f64 * w, iv.lo() + (k + 1) as f64 * w)
            })
            .collect();
        BoxRegion::new(dims)
    }

    fn flat(&self, index: &[usize]) -> usize {
        let mut out = 0usize;
        let mut stride = 1usize;
        for (i, &k) in index.iter().enumerate() {
            out += k * stride;
            stride *= self.counts[i];
        }
        out
    }

    fn unflat(&self, mut flat: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.counts.len());
        for &c in &self.counts {
            out.push(flat % c);
            flat /= c;
        }
        out
    }

    /// Per-dimension index ranges of cells a box overlaps, or `None` when
    /// the box lies entirely outside the domain in some dimension.
    /// `clipped` is set when the box pokes outside the domain.
    fn overlap_ranges(&self, b: &BoxRegion) -> Option<(Vec<(usize, usize)>, bool)> {
        let mut ranges = Vec::with_capacity(self.counts.len());
        let mut clipped = false;
        for i in 0..self.counts.len() {
            let dom = self.domain.interval(i);
            let cell = b.interval(i);
            if cell.hi() < dom.lo() || cell.lo() > dom.hi() {
                return None;
            }
            if cell.lo() < dom.lo() - 1e-12 || cell.hi() > dom.hi() + 1e-12 {
                clipped = true;
            }
            let w = dom.width() / self.counts[i] as f64;
            let lo = (((cell.lo() - dom.lo()) / w).floor() as isize)
                .clamp(0, self.counts[i] as isize - 1) as usize;
            let hi_raw = ((cell.hi() - dom.lo()) / w).ceil() as isize - 1;
            let hi = hi_raw.clamp(lo as isize, self.counts[i] as isize - 1) as usize;
            ranges.push((lo, hi));
        }
        Some((ranges, clipped))
    }

    /// Marks all cells in the given per-dimension ranges into `set`.
    fn mark(&self, ranges: &[(usize, usize)], set: &mut BTreeSet<usize>) {
        let mut idx: Vec<usize> = ranges.iter().map(|r| r.0).collect();
        loop {
            set.insert(self.flat(&idx));
            let mut d = 0;
            loop {
                if d == idx.len() {
                    return;
                }
                idx[d] += 1;
                if idx[d] <= ranges[d].1 {
                    break;
                }
                idx[d] = ranges[d].0;
                d += 1;
            }
        }
    }
}

/// Runs the reachability analysis from the initial box `x0`.
///
/// The safe region used for containment is the system's
/// [`Dynamics::verification_domain`] (equal to `X` for the oscillator and
/// 3D system; a conservative finite surrogate for cartpole).
///
/// # Errors
///
/// * [`VerifyError::ResourceExhausted`] — cell budget exceeded;
/// * [`VerifyError::DomainEscape`] — the entire reachable image left the
///   certified domain, so no sound continuation exists;
/// * [`VerifyError::Unsafe`] — only with `fail_on_unsafe`, a reachable
///   image left the safe region.
///
/// # Panics
///
/// Panics if dimensions of the plant, enclosure and `x0` disagree, or
/// `split_width <= 0`.
pub fn reach_analysis(
    sys: &dyn Dynamics,
    controller: &dyn ControlEnclosure,
    x0: &BoxRegion,
    config: &ReachConfig,
) -> Result<ReachResult, VerifyError> {
    assert_eq!(x0.dim(), sys.state_dim(), "initial box dimension mismatch");
    assert_eq!(
        controller.state_dim(),
        sys.state_dim(),
        "enclosure dimension mismatch"
    );
    assert_eq!(
        controller.control_dim(),
        sys.control_dim(),
        "control dimension mismatch"
    );
    assert!(config.split_width > 0.0, "split width must be positive");
    if config.mode == ReachMode::Subdivision {
        return reach_by_subdivision(sys, controller, x0, config);
    }
    let start = Instant::now();
    let grid = Grid::new(sys.verification_domain(), config.split_width);
    let (u_lo, u_hi) = sys.control_bounds();
    let omega: Vec<Interval> = sys
        .disturbance_amplitude()
        .iter()
        .map(|&a| Interval::symmetric(a))
        .collect();

    let mut occupied = BTreeSet::new();
    let (init_ranges, init_clipped) = grid
        .overlap_ranges(x0)
        .ok_or(VerifyError::DomainEscape { step: 0 })?;
    grid.mark(&init_ranges, &mut occupied);
    let mut verified_safe = !init_clipped;
    let mut peak = occupied.len();
    let mut frames = vec![cells_to_boxes(&grid, &occupied)];

    for step in 0..config.steps {
        if occupied.len() > config.max_boxes {
            return Err(VerifyError::ResourceExhausted {
                resource: "reachable cells",
                budget: config.max_boxes,
            });
        }
        let mut next = BTreeSet::new();
        let mut any_inside = false;
        for &flat in &occupied {
            let cell = grid.cell_box(&grid.unflat(flat));
            let u: Vec<Interval> = controller
                .enclose(&cell)
                .into_iter()
                .zip(u_lo.iter().zip(&u_hi))
                .map(|(iv, (&l, &h))| iv.clamp_to(l, h))
                .collect();
            let image = BoxRegion::new(sys.step_interval(cell.intervals(), &u, &omega));
            match grid.overlap_ranges(&image) {
                None => {
                    verified_safe = false;
                    if config.fail_on_unsafe {
                        return Err(VerifyError::Unsafe { step: step + 1 });
                    }
                }
                Some((ranges, clipped)) => {
                    any_inside = true;
                    if clipped {
                        verified_safe = false;
                        if config.fail_on_unsafe {
                            return Err(VerifyError::Unsafe { step: step + 1 });
                        }
                    }
                    grid.mark(&ranges, &mut next);
                }
            }
        }
        if !any_inside {
            return Err(VerifyError::DomainEscape { step: step + 1 });
        }
        if next.len() > config.max_boxes {
            return Err(VerifyError::ResourceExhausted {
                resource: "reachable cells",
                budget: config.max_boxes,
            });
        }
        peak = peak.max(next.len());
        frames.push(cells_to_boxes(&grid, &next));
        occupied = next;
    }

    Ok(ReachResult {
        frames,
        verified_safe,
        duration: start.elapsed(),
        peak_boxes: peak,
    })
}

fn cells_to_boxes(grid: &Grid, cells: &BTreeSet<usize>) -> Vec<BoxRegion> {
    cells
        .iter()
        .map(|&f| grid.cell_box(&grid.unflat(f)))
        .collect()
}

/// [`ReachMode::Subdivision`] implementation: exact boxes, bisected to the
/// split width before each step, never snapped.
fn reach_by_subdivision(
    sys: &dyn Dynamics,
    controller: &dyn ControlEnclosure,
    x0: &BoxRegion,
    config: &ReachConfig,
) -> Result<ReachResult, VerifyError> {
    let start = Instant::now();
    let safe_box = sys.verification_domain();
    let (u_lo, u_hi) = sys.control_bounds();
    let omega: Vec<Interval> = sys
        .disturbance_amplitude()
        .iter()
        .map(|&a| Interval::symmetric(a))
        .collect();

    let mut current = vec![x0.clone()];
    let mut verified_safe = safe_box.contains_box(x0);
    let mut peak = 1usize;
    let mut frames = vec![current.clone()];

    for step in 0..config.steps {
        // bisect to the target width, respecting the budget
        let mut queue = std::mem::take(&mut current);
        while let Some(b) = queue.pop() {
            if current.len() + queue.len() + 1 > config.max_boxes {
                return Err(VerifyError::ResourceExhausted {
                    resource: "reachable boxes",
                    budget: config.max_boxes,
                });
            }
            if b.max_width() > config.split_width {
                let (l, r) = b.bisect();
                queue.push(l);
                queue.push(r);
            } else {
                current.push(b);
            }
        }
        peak = peak.max(current.len());

        let mut next = Vec::with_capacity(current.len());
        for q in &current {
            let query = match safe_box.intersect(q) {
                Some(inner) => inner,
                None => {
                    verified_safe = false;
                    if config.fail_on_unsafe {
                        return Err(VerifyError::Unsafe { step });
                    }
                    continue;
                }
            };
            let u: Vec<Interval> = controller
                .enclose(&query)
                .into_iter()
                .zip(u_lo.iter().zip(&u_hi))
                .map(|(iv, (&l, &h))| iv.clamp_to(l, h))
                .collect();
            let image = BoxRegion::new(sys.step_interval(q.intervals(), &u, &omega));
            if !safe_box.contains_box(&image) {
                verified_safe = false;
                if config.fail_on_unsafe {
                    return Err(VerifyError::Unsafe { step: step + 1 });
                }
                match safe_box.intersect(&image) {
                    Some(clipped) => next.push(clipped),
                    None => continue,
                }
            } else {
                next.push(image);
            }
        }
        if next.is_empty() {
            return Err(VerifyError::DomainEscape { step: step + 1 });
        }
        let next = coalesce(next, config.split_width);
        peak = peak.max(next.len());
        frames.push(next.clone());
        current = next;
    }

    Ok(ReachResult {
        frames,
        verified_safe,
        duration: start.elapsed(),
        peak_boxes: peak,
    })
}

/// Merges boxes whose centers fall into the same half-split-width bucket
/// (hull merge). Bounds the box count by the tube volume without the
/// per-step snap inflation of the grid paving.
fn coalesce(boxes: Vec<BoxRegion>, split_width: f64) -> Vec<BoxRegion> {
    use std::collections::BTreeMap;
    let key_width = 0.5 * split_width;
    let mut buckets: BTreeMap<Vec<i64>, BoxRegion> = BTreeMap::new();
    for b in boxes {
        let key: Vec<i64> = b
            .center()
            .iter()
            .map(|c| (c / key_width).floor() as i64)
            .collect();
        buckets
            .entry(key)
            .and_modify(|acc| *acc = acc.hull(&b))
            .or_insert(b);
    }
    buckets.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclosure::LinearEnclosure;
    use cocktail_env::systems::{Poly3d, VanDerPol};
    use cocktail_math::Matrix;

    #[test]
    fn stable_linear_loop_verifies_safe() {
        let sys = VanDerPol::new();
        let enc = LinearEnclosure::new(Matrix::from_rows(vec![vec![3.0, 3.0]]));
        let x0 = BoxRegion::from_bounds(&[0.1, 0.1], &[0.15, 0.15]);
        let result = reach_analysis(
            &sys,
            &enc,
            &x0,
            &ReachConfig {
                steps: 20,
                split_width: 0.05,
                ..Default::default()
            },
        )
        .expect("must verify");
        assert!(result.verified_safe);
        assert_eq!(result.frames.len(), 21);
        assert!(result.peak_boxes >= 1);
    }

    #[test]
    fn reach_over_approximates_simulation() {
        let sys = Poly3d::new();
        let gain = Matrix::from_rows(vec![vec![2.0, 3.0, 3.0]]);
        let enc = LinearEnclosure::new(gain.clone());
        let x0 = BoxRegion::from_bounds(&[-0.11, 0.205, 0.1], &[-0.105, 0.21, 0.11]);
        let result = reach_analysis(
            &sys,
            &enc,
            &x0,
            &ReachConfig {
                steps: 15,
                split_width: 0.02,
                ..Default::default()
            },
        )
        .expect("must verify");
        // simulate concrete trajectories and check frame membership
        let controller = cocktail_control::LinearFeedbackController::new(gain);
        use cocktail_control::Controller;
        let mut rng = cocktail_math::rng::seeded(9);
        for _ in 0..25 {
            let mut s = cocktail_math::rng::uniform_in_box(&mut rng, &x0);
            for frame in &result.frames {
                assert!(
                    frame.iter().any(|b| b.inflate(1e-9).contains(&s)),
                    "state {s:?} escapes its frame"
                );
                let u = sys.clip_control(&controller.control(&s));
                s = sys.step(&s, &u, &[]);
            }
        }
    }

    #[test]
    fn tiny_budget_exhausts() {
        let sys = VanDerPol::new();
        let enc = LinearEnclosure::new(Matrix::from_rows(vec![vec![3.0, 3.0]]));
        let x0 = BoxRegion::cube(2, -0.5, 0.5);
        let err = reach_analysis(
            &sys,
            &enc,
            &x0,
            &ReachConfig {
                steps: 5,
                split_width: 0.01,
                max_boxes: 16,
                ..Default::default()
            },
        )
        .expect_err("budget too small");
        assert!(matches!(err, VerifyError::ResourceExhausted { .. }));
    }

    #[test]
    fn unstable_loop_reports_unsafe() {
        let sys = VanDerPol::new();
        // positive feedback destabilizes
        let enc = LinearEnclosure::new(Matrix::from_rows(vec![vec![-8.0, -8.0]]));
        let x0 = BoxRegion::from_bounds(&[1.5, 1.5], &[1.6, 1.6]);
        let result = reach_analysis(
            &sys,
            &enc,
            &x0,
            &ReachConfig {
                steps: 30,
                split_width: 0.1,
                ..Default::default()
            },
        );
        match result {
            Ok(r) => assert!(!r.verified_safe),
            Err(e) => assert!(matches!(
                e,
                VerifyError::DomainEscape { .. } | VerifyError::Unsafe { .. }
            )),
        }
    }

    #[test]
    fn fail_on_unsafe_raises() {
        let sys = VanDerPol::new();
        let enc = LinearEnclosure::new(Matrix::from_rows(vec![vec![-8.0, -8.0]]));
        let x0 = BoxRegion::from_bounds(&[1.5, 1.5], &[1.6, 1.6]);
        let err = reach_analysis(
            &sys,
            &enc,
            &x0,
            &ReachConfig {
                steps: 30,
                split_width: 0.1,
                fail_on_unsafe: true,
                ..Default::default()
            },
        )
        .expect_err("must fail");
        assert!(matches!(
            err,
            VerifyError::Unsafe { .. } | VerifyError::DomainEscape { .. }
        ));
    }

    #[test]
    fn final_hull_covers_last_frame() {
        let sys = VanDerPol::new();
        let enc = LinearEnclosure::new(Matrix::from_rows(vec![vec![3.0, 3.0]]));
        let x0 = BoxRegion::from_bounds(&[0.1, 0.1], &[0.2, 0.2]);
        let r = reach_analysis(
            &sys,
            &enc,
            &x0,
            &ReachConfig {
                steps: 10,
                split_width: 0.05,
                ..Default::default()
            },
        )
        .expect("verifies");
        let hull = r.final_hull();
        for b in r.frames.last().expect("frames") {
            assert!(hull.contains_box(b));
        }
    }

    #[test]
    fn subdivision_mode_tracks_tighter_than_paving() {
        let sys = Poly3d::new();
        let gain = Matrix::from_rows(vec![vec![2.0, 3.0, 3.0]]);
        let enc = LinearEnclosure::new(gain);
        let x0 = BoxRegion::from_bounds(&[-0.11, 0.205, 0.1], &[-0.105, 0.21, 0.11]);
        let paving = reach_analysis(
            &sys,
            &enc,
            &x0,
            &ReachConfig {
                steps: 10,
                split_width: 0.02,
                ..Default::default()
            },
        )
        .expect("paving verifies");
        let subdivision = reach_analysis(
            &sys,
            &enc,
            &x0,
            &ReachConfig {
                steps: 10,
                split_width: 0.02,
                mode: ReachMode::Subdivision,
                ..Default::default()
            },
        )
        .expect("subdivision verifies");
        // subdivision avoids the per-step snap inflation, so its final
        // hull must be no wider than the paving's in every dimension
        let hp = paving.final_hull();
        let hs = subdivision.final_hull();
        for i in 0..3 {
            assert!(hs.interval(i).width() <= hp.interval(i).width() + 1e-12);
        }
        assert!(subdivision.verified_safe);
    }

    #[test]
    fn subdivision_mode_is_sound_on_samples() {
        let sys = Poly3d::new();
        let gain = Matrix::from_rows(vec![vec![2.0, 3.0, 3.0]]);
        let enc = LinearEnclosure::new(gain.clone());
        let x0 = BoxRegion::from_bounds(&[-0.11, 0.205, 0.1], &[-0.105, 0.21, 0.11]);
        let result = reach_analysis(
            &sys,
            &enc,
            &x0,
            &ReachConfig {
                steps: 12,
                split_width: 0.01,
                mode: ReachMode::Subdivision,
                ..Default::default()
            },
        )
        .expect("verifies");
        let controller = cocktail_control::LinearFeedbackController::new(gain);
        use cocktail_control::Controller;
        let mut rng = cocktail_math::rng::seeded(3);
        for _ in 0..20 {
            let mut s = cocktail_math::rng::uniform_in_box(&mut rng, &x0);
            for frame in &result.frames {
                assert!(frame.iter().any(|b| b.inflate(1e-9).contains(&s)));
                let u = sys.clip_control(&controller.control(&s));
                s = sys.step(&s, &u, &[]);
            }
        }
    }

    #[test]
    fn grid_mark_and_ranges_roundtrip() {
        let grid = Grid::new(BoxRegion::cube(2, 0.0, 1.0), 0.25);
        assert_eq!(grid.counts, vec![4, 4]);
        let b = BoxRegion::from_bounds(&[0.3, 0.6], &[0.4, 0.9]);
        let (ranges, clipped) = grid.overlap_ranges(&b).expect("inside");
        assert!(!clipped);
        assert_eq!(ranges, vec![(1, 1), (2, 3)]);
        let mut set = BTreeSet::new();
        grid.mark(&ranges, &mut set);
        assert_eq!(set.len(), 2);
        for &f in &set {
            let cell = grid.cell_box(&grid.unflat(f));
            assert!(cell.intersect(&b).is_some());
        }
    }
}
