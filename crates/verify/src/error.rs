//! Verification failure modes.

use std::error::Error;
use std::fmt;

/// Why a verification run could not be completed.
///
/// `ResourceExhausted` is the analogue of the paper's Fig. 4 observation:
/// the direct-distillation student `κ_D` "cannot be verified because of a
/// memory segmentation fault … caused by its large Lipschitz constant". Our
/// analyses bound their partition/box budgets explicitly and surface the
/// blow-up as an error instead of crashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The partition or reachable-set budget was exhausted before the
    /// requested precision/horizon was met.
    ResourceExhausted {
        /// What ran out ("bernstein partitions", "reachable boxes", …).
        resource: &'static str,
        /// The configured budget that was exceeded.
        budget: usize,
    },
    /// A reachable box escaped the certificate's domain, so the controller
    /// enclosure no longer covers the flow.
    DomainEscape {
        /// The analysis step at which the escape happened.
        step: usize,
    },
    /// The analysis proved a safety violation (a reachable box left the
    /// safe region entirely).
    Unsafe {
        /// The analysis step at which the violation was proven.
        step: usize,
    },
    /// Inconsistent dimensions between the network, plant and domain.
    DimensionMismatch {
        /// Description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::ResourceExhausted { resource, budget } => {
                write!(
                    f,
                    "verification budget exhausted: {resource} exceeded {budget}"
                )
            }
            VerifyError::DomainEscape { step } => {
                write!(
                    f,
                    "reachable set escaped the certificate domain at step {step}"
                )
            }
            VerifyError::Unsafe { step } => {
                write!(f, "safety violation proven at step {step}")
            }
            VerifyError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
        }
    }
}

impl Error for VerifyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = VerifyError::ResourceExhausted {
            resource: "bernstein partitions",
            budget: 4096,
        };
        let s = e.to_string();
        assert!(s.contains("4096") && s.contains("partitions"));
        assert!(!VerifyError::DomainEscape { step: 3 }.to_string().is_empty());
        assert!(VerifyError::Unsafe { step: 9 }.to_string().contains('9'));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(VerifyError::DimensionMismatch {
            detail: "2 vs 3".into(),
        });
        assert!(e.to_string().contains("2 vs 3"));
    }
}
