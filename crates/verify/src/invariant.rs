//! Control-invariant-set computation (Definition 1, Fig. 3).
//!
//! A grid fixpoint in the style of Xue & Zhan \[22\]: the safe region is
//! tiled into `gⁿ` cells, and cells whose one-step interval image (under
//! the certified controller enclosure and the full disturbance `Ω ⊕ ε`)
//! is not covered by the surviving cells are removed until nothing changes.
//! What remains is an under-approximation of the maximal control invariant
//! set: every trajectory started inside it provably stays inside forever.

use crate::enclosure::ControlEnclosure;
use crate::error::VerifyError;
use cocktail_env::Dynamics;
use cocktail_math::{BoxRegion, Interval};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Configuration for [`invariant_set`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvariantConfig {
    /// Grid resolution per dimension (`grid^n` cells).
    pub grid: usize,
    /// Iteration cap for the fixpoint (it normally converges much earlier).
    pub max_iterations: usize,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        Self {
            grid: 32,
            max_iterations: 200,
        }
    }
}

/// An invariant-set computation result.
#[derive(Debug, Clone)]
pub struct InvariantResult {
    domain: BoxRegion,
    grid: usize,
    alive: Vec<bool>,
    /// Number of fixpoint sweeps executed.
    pub iterations: usize,
    /// Whether the fixpoint was reached within the iteration cap. Only a
    /// converged result is a sound invariant set.
    pub converged: bool,
    /// Wall-clock time (the paper's verifiability metric).
    pub duration: Duration,
}

impl InvariantResult {
    /// Grid resolution per dimension.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// The analysis domain (the safe region `X`).
    pub fn domain(&self) -> &BoxRegion {
        &self.domain
    }

    /// Fraction of the domain's cells proved invariant.
    pub fn alive_fraction(&self) -> f64 {
        self.alive.iter().filter(|&&a| a).count() as f64 / self.alive.len() as f64
    }

    /// Whether a point lies in the computed invariant set.
    ///
    /// # Panics
    ///
    /// Panics if `p.len() != domain.dim()`.
    pub fn contains(&self, p: &[f64]) -> bool {
        if !self.domain.contains(p) {
            return false;
        }
        match self.cell_index(p) {
            Some(i) => self.alive[i],
            None => false,
        }
    }

    /// The raw per-cell survival bitmap (row-major, dimension 0 fastest) —
    /// the input of the safety certificate's invariant digest.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Whether an entire box lies inside the computed invariant set: every
    /// cell it overlaps must have survived the fixpoint. `false` when the
    /// box pokes outside the analysis domain.
    ///
    /// # Panics
    ///
    /// Panics if `b.dim() != domain.dim()`.
    pub fn contains_box(&self, b: &BoxRegion) -> bool {
        match self.cell_range(b) {
            None => false,
            Some(ranges) => all_alive(&ranges, &self.alive, self.grid),
        }
    }

    /// The surviving cells as boxes (for plotting Fig. 3).
    pub fn cells(&self) -> Vec<BoxRegion> {
        let all = self.domain.subdivide(self.grid);
        all.into_iter()
            .zip(&self.alive)
            .filter(|(_, &a)| a)
            .map(|(c, _)| c)
            .collect()
    }

    fn cell_index(&self, p: &[f64]) -> Option<usize> {
        let n = self.domain.dim();
        let mut index = 0usize;
        let mut stride = 1usize;
        for (i, &pi) in p.iter().enumerate().take(n) {
            let iv = self.domain.interval(i);
            if iv.width() == 0.0 {
                return None;
            }
            let mut k = ((pi - iv.lo()) / iv.width() * self.grid as f64).floor() as isize;
            if k == self.grid as isize {
                k -= 1; // upper boundary belongs to the last cell
            }
            if k < 0 || k >= self.grid as isize {
                return None;
            }
            index += (k as usize) * stride;
            stride *= self.grid;
        }
        Some(index)
    }

    /// Index range (per dimension) of the cells a box overlaps; `None` when
    /// the box pokes outside the domain.
    fn cell_range(&self, b: &BoxRegion) -> Option<Vec<(usize, usize)>> {
        let n = self.domain.dim();
        let mut ranges = Vec::with_capacity(n);
        for i in 0..n {
            let dom = self.domain.interval(i);
            let cell = b.interval(i);
            if cell.lo() < dom.lo() - 1e-12 || cell.hi() > dom.hi() + 1e-12 {
                return None;
            }
            let w = dom.width() / self.grid as f64;
            let lo =
                (((cell.lo() - dom.lo()) / w).floor() as isize).clamp(0, self.grid as isize - 1);
            let hi_raw = ((cell.hi() - dom.lo()) / w).ceil() as isize;
            let hi = (hi_raw - 1).clamp(lo, self.grid as isize - 1);
            ranges.push((lo as usize, hi as usize));
        }
        Some(ranges)
    }
}

/// Computes an under-approximated control invariant set of `sys` under the
/// certified controller `controller` over the system's verification domain.
///
/// # Errors
///
/// Returns [`VerifyError::DimensionMismatch`] when the enclosure and plant
/// disagree on dimensions.
///
/// # Panics
///
/// Panics if `config.grid == 0`.
pub fn invariant_set(
    sys: &dyn Dynamics,
    controller: &dyn ControlEnclosure,
    config: &InvariantConfig,
) -> Result<InvariantResult, VerifyError> {
    invariant_set_with_workers(
        sys,
        controller,
        config,
        cocktail_math::parallel::default_workers(),
    )
}

/// [`invariant_set`] with an explicit worker count.
///
/// The per-cell one-step image precompute (the dominant cost) fans out over
/// `workers` threads, and the fixpoint runs Jacobi-style: every sweep
/// decides each cell against the *previous* sweep's survival bitmap and
/// removals apply between sweeps, so the result is bit-identical for every
/// `workers >= 1` (removal order within a sweep cannot matter).
///
/// # Errors
///
/// See [`invariant_set`].
///
/// # Panics
///
/// See [`invariant_set`].
pub fn invariant_set_with_workers(
    sys: &dyn Dynamics,
    controller: &dyn ControlEnclosure,
    config: &InvariantConfig,
    workers: usize,
) -> Result<InvariantResult, VerifyError> {
    assert!(config.grid > 0, "grid must be positive");
    if controller.state_dim() != sys.state_dim() || controller.control_dim() != sys.control_dim() {
        return Err(VerifyError::DimensionMismatch {
            detail: format!(
                "enclosure {}→{} vs plant {}→{}",
                controller.state_dim(),
                controller.control_dim(),
                sys.state_dim(),
                sys.control_dim()
            ),
        });
    }
    let start = Instant::now();
    let domain = sys.verification_domain();
    let grid = config.grid;
    let cells = domain.subdivide(grid);
    let total = cells.len();
    let (u_lo, u_hi) = sys.control_bounds();
    let omega: Vec<Interval> = sys
        .disturbance_amplitude()
        .iter()
        .map(|&a| Interval::symmetric(a))
        .collect();

    // precompute each cell's one-step image box in parallel: pure per-cell
    // work, bit-identical for any worker split
    let images: Vec<BoxRegion> =
        cocktail_math::parallel::map_indexed_with_workers(&cells, workers, |_, cell| {
            let u: Vec<Interval> = controller
                .enclose(cell)
                .into_iter()
                .zip(u_lo.iter().zip(&u_hi))
                .map(|(iv, (&l, &h))| iv.clamp_to(l, h))
                .collect();
            BoxRegion::new(sys.step_interval(cell.intervals(), &u, &omega))
        });

    let mut result = InvariantResult {
        domain: domain.clone(),
        grid,
        alive: vec![true; total],
        iterations: 0,
        converged: false,
        duration: Duration::ZERO,
    };

    // image cell-ranges never change between sweeps; resolve them once
    let ranges: Vec<Option<Vec<(usize, usize)>>> = images
        .iter()
        .map(|image| result.cell_range(image))
        .collect();

    for iteration in 1..=config.max_iterations {
        // Jacobi sweep: keep-decisions read only the previous sweep's
        // bitmap, removals apply after the sweep
        let alive = &result.alive;
        let keep: Vec<bool> =
            cocktail_math::parallel::map_range_with_workers(total, workers, |i| {
                alive[i]
                    && match &ranges[i] {
                        None => false, // image leaves X
                        Some(ranges) => all_alive(ranges, alive, grid),
                    }
            });
        let removed = result.alive.iter().zip(&keep).any(|(&a, &k)| a && !k);
        result.alive = keep;
        result.iterations = iteration;
        if !removed {
            result.converged = true;
            break;
        }
    }
    result.duration = start.elapsed();
    Ok(result)
}

/// Whether every grid cell in the per-dimension index `ranges` is alive.
fn all_alive(ranges: &[(usize, usize)], alive: &[bool], grid: usize) -> bool {
    let mut idx: Vec<usize> = ranges.iter().map(|r| r.0).collect();
    loop {
        let mut flat = 0usize;
        let mut stride = 1usize;
        for &k in &idx {
            flat += k * stride;
            stride *= grid;
        }
        if !alive[flat] {
            return false;
        }
        // advance the per-dimension counter
        let mut d = 0;
        loop {
            if d == idx.len() {
                return true;
            }
            idx[d] += 1;
            if idx[d] <= ranges[d].1 {
                break;
            }
            idx[d] = ranges[d].0;
            d += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclosure::LinearEnclosure;
    use cocktail_env::systems::VanDerPol;
    use cocktail_math::Matrix;

    fn damped_enclosure() -> LinearEnclosure {
        LinearEnclosure::new(Matrix::from_rows(vec![vec![3.0, 4.0]]))
    }

    #[test]
    fn stable_loop_has_nonempty_invariant_set() {
        let sys = VanDerPol::new();
        let enc = damped_enclosure();
        let result = invariant_set(
            &sys,
            &enc,
            &InvariantConfig {
                grid: 24,
                ..Default::default()
            },
        )
        .expect("dimensions agree");
        assert!(
            result.alive_fraction() > 0.05,
            "fraction {}",
            result.alive_fraction()
        );
        assert!(result.contains(&[0.0, 0.0]), "origin must be invariant");
        assert!(result.iterations > 0);
    }

    #[test]
    fn invariant_cells_are_actually_invariant_under_simulation() {
        let sys = VanDerPol::new();
        let enc = damped_enclosure();
        let result = invariant_set(
            &sys,
            &enc,
            &InvariantConfig {
                grid: 24,
                ..Default::default()
            },
        )
        .expect("dimensions agree");
        let controller = cocktail_control::LinearFeedbackController::new(Matrix::from_rows(vec![
            vec![3.0, 4.0],
        ]));
        use cocktail_control::Controller;
        let mut rng = cocktail_math::rng::seeded(13);
        let cells = result.cells();
        assert!(!cells.is_empty());
        for cell in cells.iter().take(30) {
            let mut s = cell.center();
            // simulate with worst-case-ish disturbance samples
            for step in 0..200 {
                assert!(
                    result.domain().contains(&s),
                    "invariant trajectory escaped X at step {step}: {s:?}"
                );
                let u = sys.clip_control(&controller.control(&s));
                let w = cocktail_math::rng::uniform_symmetric(&mut rng, 1, 0.05);
                s = sys.step(&s, &u, &w);
            }
        }
    }

    #[test]
    fn worker_count_does_not_change_the_invariant_set() {
        let sys = VanDerPol::new();
        let enc = damped_enclosure();
        let cfg = InvariantConfig {
            grid: 20,
            ..Default::default()
        };
        let reference = invariant_set_with_workers(&sys, &enc, &cfg, 1).expect("ok");
        assert!(reference.converged);
        for workers in [2usize, 8] {
            let got = invariant_set_with_workers(&sys, &enc, &cfg, workers).expect("ok");
            assert_eq!(got.alive(), reference.alive(), "workers = {workers}");
            assert_eq!(got.iterations, reference.iterations, "workers = {workers}");
            assert_eq!(got.converged, reference.converged, "workers = {workers}");
        }
    }

    #[test]
    fn unstable_loop_has_empty_invariant_set() {
        let sys = VanDerPol::new();
        // positive feedback pushes everything out
        let enc = LinearEnclosure::new(Matrix::from_rows(vec![vec![-10.0, -10.0]]));
        let result = invariant_set(
            &sys,
            &enc,
            &InvariantConfig {
                grid: 16,
                ..Default::default()
            },
        )
        .expect("dimensions agree");
        assert!(
            result.alive_fraction() < 0.05,
            "fraction {}",
            result.alive_fraction()
        );
    }

    #[test]
    fn contains_rejects_outside_domain() {
        let sys = VanDerPol::new();
        let enc = damped_enclosure();
        let result = invariant_set(
            &sys,
            &enc,
            &InvariantConfig {
                grid: 8,
                ..Default::default()
            },
        )
        .expect("dimensions agree");
        assert!(!result.contains(&[5.0, 5.0]));
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let sys = VanDerPol::new();
        let enc = LinearEnclosure::new(Matrix::identity(3));
        let err =
            invariant_set(&sys, &enc, &InvariantConfig::default()).expect_err("3 != 2 must fail");
        assert!(matches!(err, VerifyError::DimensionMismatch { .. }));
    }

    #[test]
    fn finer_grid_does_not_shrink_fraction_catastrophically() {
        let sys = VanDerPol::new();
        let enc = damped_enclosure();
        let coarse = invariant_set(
            &sys,
            &enc,
            &InvariantConfig {
                grid: 12,
                ..Default::default()
            },
        )
        .expect("ok");
        let fine = invariant_set(
            &sys,
            &enc,
            &InvariantConfig {
                grid: 24,
                ..Default::default()
            },
        )
        .expect("ok");
        // finer grids reduce conservatism: the invariant fraction should not collapse
        assert!(fine.alive_fraction() >= 0.5 * coarse.alive_fraction());
    }
}
