//! Property-based tests of the end-to-end safety loop: for random small
//! students the reported reachable set really contains every sampled
//! closed-loop trajectory, and the certified control-invariant set is
//! actually invariant for one step under the *network* controller (not
//! just its enclosure) with sampled disturbances.

use cocktail_env::systems::VanDerPol;
use cocktail_env::Dynamics;
use cocktail_math::{rng, BoxRegion};
use cocktail_nn::train::{fit_regression, TrainConfig};
use cocktail_nn::{Activation, Mlp, MlpBuilder};
use cocktail_verify::reach::ReachMode;
use cocktail_verify::{
    invariant_set, reach_analysis, BernsteinCertificate, CertificateConfig, InvariantConfig,
    ReachConfig,
};
use proptest::prelude::*;

/// One closed-loop step under the scaled network controller with the given
/// disturbance.
fn closed_loop_step(sys: &VanDerPol, net: &Mlp, scale: f64, s: &[f64], w: &[f64]) -> Vec<f64> {
    let u = sys.clip_control(&[scale * net.forward(s)[0]]);
    sys.step(s, &u, w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sampled closed-loop trajectories of random students never escape
    /// the reported reachable frames: frame `k` contains the state after
    /// `k` steps, for every sampled disturbance sequence.
    #[test]
    fn trajectories_never_escape_the_reachable_set(
        seed in 0u64..200,
        scale in 2.0..20.0f64,
        cx in -0.5..0.5f64,
        cy in -0.5..0.5f64,
    ) {
        let sys = VanDerPol::new();
        let net = MlpBuilder::new(2)
            .hidden(6, Activation::Tanh)
            .output(1, Activation::Tanh)
            .seed(seed)
            .build();
        let cert = BernsteinCertificate::build(
            &net,
            &[scale],
            &sys.verification_domain(),
            &CertificateConfig {
                degree: 3,
                tolerance: 2.0,
                max_pieces: 1 << 12,
                error_samples_per_dim: 4,
            },
        ).expect("budget suffices for tiny nets");
        let x0 = BoxRegion::from_bounds(&[cx - 0.1, cy - 0.1], &[cx + 0.1, cy + 0.1]);
        let result = reach_analysis(
            &sys,
            &cert,
            &x0,
            &ReachConfig {
                steps: 6,
                split_width: 0.25,
                max_boxes: 50_000,
                fail_on_unsafe: false,
                mode: ReachMode::GridPaving,
            },
        ).expect("analysis inside the domain");
        let mut r = rng::seeded(seed.wrapping_mul(31).wrapping_add(1));
        let amp = sys.disturbance_amplitude();
        let amp0 = amp.first().copied().unwrap_or(0.0);
        let domain = sys.verification_domain();
        for _ in 0..5 {
            let mut s = rng::uniform_in_box(&mut r, &x0);
            for (k, frame) in result.frames.iter().enumerate() {
                if !domain.contains(&s) {
                    // the loop left the safe domain: the analysis only
                    // covers X, and it must have reported the escape
                    prop_assert!(
                        !result.verified_safe,
                        "step {k}: {s:?} left the domain but the analysis claimed safe"
                    );
                    break;
                }
                prop_assert!(
                    frame.iter().any(|b| b.inflate(1e-9).contains(&s)),
                    "step {k}: {s:?} escaped the reachable frame"
                );
                let w = rng::uniform_symmetric(&mut r, amp.len(), amp0);
                s = closed_loop_step(&sys, &net, scale, &s, &w);
            }
        }
    }
}

/// Points inside the certified control-invariant set stay inside for one
/// step of the *network* closed loop under sampled disturbances — the
/// Definition-1 property the grid fixpoint claims.
#[test]
fn invariant_points_stay_inside_for_one_step() {
    let sys = VanDerPol::new();
    let net = stabilizing_net();
    let cert = BernsteinCertificate::build(
        &net,
        &[20.0],
        &sys.verification_domain(),
        &CertificateConfig {
            degree: 4,
            tolerance: 0.35,
            max_pieces: 1 << 15,
            error_samples_per_dim: 5,
        },
    )
    .expect("stabilizing student certifies");
    let result = invariant_set(
        &sys,
        &cert,
        &InvariantConfig {
            grid: 24,
            max_iterations: 200,
        },
    )
    .expect("dimensions agree");
    assert!(result.converged, "fixpoint must converge");
    let cells = result.cells();
    assert!(
        !cells.is_empty(),
        "certified invariant set must be non-empty for a stabilizing student"
    );
    let mut r = rng::seeded(99);
    let amp = sys.disturbance_amplitude();
    let amp0 = amp.first().copied().unwrap_or(0.0);
    let mut checked = 0usize;
    for cell in cells.iter().step_by(cells.len().div_ceil(64).max(1)) {
        for _ in 0..4 {
            let s = rng::uniform_in_box(&mut r, cell);
            assert!(result.contains(&s), "sampled point must start inside");
            let w = rng::uniform_symmetric(&mut r, amp.len(), amp0);
            let next = closed_loop_step(&sys, &net, 20.0, &s, &w);
            assert!(
                result.contains(&next),
                "{s:?} left the invariant set in one step (→ {next:?})"
            );
            checked += 1;
        }
    }
    assert!(checked >= 64, "only {checked} samples checked");
}

/// Clones a stabilizing linear law into a small student (same recipe as the
/// report-level certification test).
fn stabilizing_net() -> Mlp {
    let mut states = Vec::new();
    let mut targets = Vec::new();
    let domain = BoxRegion::cube(2, -2.0, 2.0);
    let mut r = rng::seeded(0);
    for _ in 0..512 {
        let s = rng::uniform_in_box(&mut r, &domain);
        let u = -(3.0 * s[0] + 4.0 * s[1]);
        targets.push(vec![(u / 20.0).clamp(-1.0, 1.0)]);
        states.push(s);
    }
    let mut net = MlpBuilder::new(2)
        .hidden(12, Activation::Tanh)
        .output(1, Activation::Tanh)
        .seed(4)
        .build();
    fit_regression(
        &mut net,
        &states,
        &targets,
        &TrainConfig {
            epochs: 120,
            ..Default::default()
        },
    );
    net
}
