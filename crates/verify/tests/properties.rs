//! Property-based tests of the verification substrate: certificate
//! soundness for random networks, reach-frame containment and
//! invariant-set consistency.

use cocktail_env::systems::VanDerPol;
use cocktail_env::Dynamics;
use cocktail_math::{rng, BoxRegion, Matrix};
use cocktail_nn::{Activation, MlpBuilder};
use cocktail_verify::bernstein::BernsteinApprox;
use cocktail_verify::enclosure::{ControlEnclosure, IbpEnclosure, LinearEnclosure};
use cocktail_verify::reach::ReachMode;
use cocktail_verify::{
    invariant_set, reach_analysis, BernsteinCertificate, CertificateConfig, InvariantConfig,
    ReachConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Certificates are sound for random small networks: the certified
    /// enclosure contains the network value at random points.
    #[test]
    fn certificate_sound_for_random_networks(seed in 0u64..500, scale in 1.0..20.0f64) {
        let net = MlpBuilder::new(2)
            .hidden(6, Activation::Tanh)
            .output(1, Activation::Tanh)
            .seed(seed)
            .build();
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let cert = BernsteinCertificate::build(
            &net,
            &[scale],
            &domain,
            &CertificateConfig {
                degree: 3,
                tolerance: 0.5,
                max_pieces: 1 << 12,
                error_samples_per_dim: 5,
            },
        )
        .expect("budget suffices for tiny nets");
        let mut r = rng::seeded(seed.wrapping_add(7));
        for _ in 0..30 {
            let x = rng::uniform_in_box(&mut r, &domain);
            let truth = scale * net.forward(&x)[0];
            let q = BoxRegion::from_bounds(&[x[0] - 1e-9, x[1] - 1e-9], &[x[0] + 1e-9, x[1] + 1e-9])
                .intersect(&domain)
                .expect("inside");
            let bound = cert.enclose(&q)[0];
            prop_assert!(bound.inflate(1e-6).contains(truth), "{truth} escapes {bound}");
        }
    }

    /// IBP enclosures are sound for random networks and query boxes.
    #[test]
    fn ibp_enclosure_sound(seed in 0u64..500, half in 0.05..1.0f64) {
        let net = MlpBuilder::new(2)
            .hidden(8, Activation::Relu)
            .output(1, Activation::Identity)
            .seed(seed)
            .build();
        let enc = IbpEnclosure::new(net.clone(), vec![5.0]);
        let q = BoxRegion::cube(2, -half, half);
        let bound = enc.enclose(&q)[0];
        let mut r = rng::seeded(seed);
        for _ in 0..30 {
            let x = rng::uniform_in_box(&mut r, &q);
            prop_assert!(bound.inflate(1e-9).contains(5.0 * net.forward(&x)[0]));
        }
    }

    /// Bernstein approximants reproduce affine functions exactly at any
    /// degree, over any box.
    #[test]
    fn bernstein_exact_on_affine(a in -5.0..5.0f64, b in -5.0..5.0f64, c in -5.0..5.0f64,
                                 degree in 1usize..6, t0 in 0.0..1.0f64, t1 in 0.0..1.0f64) {
        let f = move |x: &[f64]| a * x[0] + b * x[1] + c;
        let domain = BoxRegion::from_bounds(&[-2.0, 0.5], &[1.0, 3.0]);
        let poly = BernsteinApprox::build(&f, &domain, degree);
        let x = domain.lerp(&[t0, t1]);
        prop_assert!((poly.eval(&x) - f(&x)).abs() < 1e-9 * (1.0 + f(&x).abs()));
    }

    /// The coefficient range really bounds the polynomial everywhere.
    #[test]
    fn coefficient_range_is_global_bound(seed in 0u64..200, t0 in 0.0..1.0f64, t1 in 0.0..1.0f64) {
        let net = MlpBuilder::new(2)
            .hidden(5, Activation::Tanh)
            .output(1, Activation::Identity)
            .seed(seed)
            .build();
        let f = move |x: &[f64]| net.forward(x)[0];
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let poly = BernsteinApprox::build(&f, &domain, 4);
        let x = domain.lerp(&[t0, t1]);
        prop_assert!(poly.coefficient_range().inflate(1e-9).contains(poly.eval(&x)));
    }

    /// Both reach modes over-approximate the same concrete trajectories.
    #[test]
    fn reach_modes_both_contain_trajectories(gain in 2.0..4.0f64, seed in 0u64..100) {
        let sys = VanDerPol::new();
        let k = Matrix::from_rows(vec![vec![gain, gain]]);
        let enc = LinearEnclosure::new(k.clone());
        let x0 = BoxRegion::from_bounds(&[0.2, 0.2], &[0.3, 0.3]);
        for mode in [ReachMode::GridPaving, ReachMode::Subdivision] {
            let result = reach_analysis(
                &sys,
                &enc,
                &x0,
                &ReachConfig { steps: 8, split_width: 0.05, mode, ..Default::default() },
            )
            .expect("small problem verifies");
            let controller = cocktail_control::LinearFeedbackController::new(k.clone());
            use cocktail_control::Controller;
            let mut r = rng::seeded(seed);
            let mut s = rng::uniform_in_box(&mut r, &x0);
            for frame in &result.frames {
                prop_assert!(frame.iter().any(|b| b.inflate(1e-9).contains(&s)));
                let u = sys.clip_control(&controller.control(&s));
                s = sys.step(&s, &u, &[0.0]);
            }
        }
    }

    /// Stronger damping never shrinks the invariant set by much: the
    /// fixpoint is monotone-ish in the contraction strength.
    #[test]
    fn invariant_fraction_grows_with_damping(weak in 1.0..2.0f64) {
        let sys = VanDerPol::new();
        let strong = weak + 2.0;
        let frac = |g: f64| {
            let enc = LinearEnclosure::new(Matrix::from_rows(vec![vec![g, g + 1.0]]));
            invariant_set(&sys, &enc, &InvariantConfig { grid: 16, max_iterations: 200 })
                .expect("dims agree")
                .alive_fraction()
        };
        prop_assert!(frac(strong) + 0.05 >= frac(weak));
    }
}
