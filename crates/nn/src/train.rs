//! Minibatch regression training.
//!
//! [`fit_regression`] is the workhorse behind behavior-cloned experts and
//! both distillation variants: plain supervised MSE training of an [`Mlp`]
//! on `(input, target)` pairs with Adam, shuffled minibatches and optional
//! L2 weight decay.

use crate::loss;
use crate::mlp::{BatchCache, Mlp};
use crate::optimizer::{Adam, GradStore, Optimizer};
use cocktail_math::Matrix;
use rand::seq::SliceRandom;

/// Copies dataset rows selected by `idx` into `batch`-major scratch
/// matrices, reallocating only when the chunk size changes.
fn fill_rows(buf: &mut Matrix, rows: &[Vec<f64>], idx: &[usize], width: usize) {
    if buf.shape() != (idx.len(), width) {
        *buf = Matrix::zeros(idx.len(), width);
    }
    for (r, &i) in idx.iter().enumerate() {
        buf.row_mut(r).copy_from_slice(&rows[i]);
    }
}

/// Configuration for [`fit_regression`].
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Minibatch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 weight-decay coefficient λ (0 disables).
    pub weight_decay: f64,
    /// Global gradient-norm clip (`None` disables).
    pub grad_clip: Option<f64>,
    /// Fraction of the dataset held out for validation (0 disables early
    /// stopping; the split is deterministic in the seed).
    pub validation_fraction: f64,
    /// Early-stopping patience: epochs without validation improvement
    /// before training stops (only with a validation split).
    pub patience: usize,
    /// RNG seed for minibatch shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            batch_size: 32,
            learning_rate: 1e-2,
            weight_decay: 0.0,
            grad_clip: Some(10.0),
            validation_fraction: 0.0,
            patience: 10,
            seed: 0,
        }
    }
}

/// Outcome of a [`fit_regression_with_report`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainReport {
    /// Mean training loss of the final executed epoch.
    pub final_train_loss: f64,
    /// Best validation loss observed (`None` without a validation split).
    pub best_validation_loss: Option<f64>,
    /// Epochs actually executed (≤ `config.epochs` with early stopping).
    pub epochs_run: usize,
}

/// Trains `net` to regress `targets` from `inputs` with MSE + Adam.
///
/// Returns the mean training loss of the final epoch.
///
/// # Panics
///
/// Panics if the dataset is empty, lengths mismatch, or any sample's
/// dimension disagrees with the network.
///
/// # Examples
///
/// ```
/// use cocktail_nn::{Activation, MlpBuilder};
/// use cocktail_nn::train::{fit_regression, TrainConfig};
///
/// let mut net = MlpBuilder::new(1).hidden(8, Activation::Tanh)
///     .output(1, Activation::Identity).seed(3).build();
/// let xs = vec![vec![-1.0], vec![0.0], vec![1.0]];
/// let ys = vec![vec![1.0], vec![0.0], vec![1.0]]; // y = x²
/// let final_loss = fit_regression(&mut net, &xs, &ys,
///     &TrainConfig { epochs: 600, ..TrainConfig::default() });
/// assert!(final_loss < 0.05);
/// ```
pub fn fit_regression(
    net: &mut Mlp,
    inputs: &[Vec<f64>],
    targets: &[Vec<f64>],
    config: &TrainConfig,
) -> f64 {
    fit_regression_with_report(net, inputs, targets, config).final_train_loss
}

/// [`fit_regression`] returning the full [`TrainReport`], with optional
/// validation-split early stopping: when `config.validation_fraction > 0`,
/// a deterministic hold-out is carved off, the validation loss is tracked
/// each epoch, training stops after `config.patience` epochs without
/// improvement, and the best-validation weights are restored.
///
/// # Panics
///
/// Panics under the same conditions as [`fit_regression`], or when the
/// validation fraction is outside `[0, 0.9]` or leaves no training data.
pub fn fit_regression_with_report(
    net: &mut Mlp,
    inputs: &[Vec<f64>],
    targets: &[Vec<f64>],
    config: &TrainConfig,
) -> TrainReport {
    assert!(!inputs.is_empty(), "training set is empty");
    assert_eq!(
        inputs.len(),
        targets.len(),
        "inputs/targets length mismatch"
    );
    assert!(
        (0.0..=0.9).contains(&config.validation_fraction),
        "validation fraction must be in [0, 0.9]"
    );
    let mut rng = cocktail_math::rng::seeded(config.seed);

    // deterministic validation split
    let mut split: Vec<usize> = (0..inputs.len()).collect();
    split.shuffle(&mut rng);
    let val_count = (inputs.len() as f64 * config.validation_fraction) as usize;
    let (val_idx, train_idx) = split.split_at(val_count);
    assert!(
        !train_idx.is_empty(),
        "validation split left no training data"
    );

    let mut opt = Adam::new(config.learning_rate);
    let mut grads = GradStore::zeros_like(net);
    let mut order: Vec<usize> = train_idx.to_vec();
    let batch = config.batch_size.max(1).min(order.len());

    let in_dim = net.input_dim();
    let out_dim = net.output_dim();
    let mut cache = BatchCache::new();
    let mut x = Matrix::zeros(batch, in_dim);
    let mut t = Matrix::zeros(batch, out_dim);
    let mut g = Matrix::zeros(batch, out_dim);
    let mut val_cache = BatchCache::new();
    let mut val_x = Matrix::zeros(1, 1);
    let mut val_t = Matrix::zeros(1, 1);
    if !val_idx.is_empty() {
        fill_rows(&mut val_x, inputs, val_idx, in_dim);
        fill_rows(&mut val_t, targets, val_idx, out_dim);
    }

    let mut last_epoch_loss = f64::INFINITY;
    let mut best_val: Option<(f64, Mlp)> = None;
    let mut stale_epochs = 0usize;
    let mut epochs_run = 0usize;

    for _ in 0..config.epochs.max(1) {
        epochs_run += 1;
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut samples = 0usize;
        for chunk in order.chunks(batch) {
            grads.reset();
            let scale = 1.0 / chunk.len() as f64;
            fill_rows(&mut x, inputs, chunk, in_dim);
            fill_rows(&mut t, targets, chunk, out_dim);
            if g.shape() != (chunk.len(), out_dim) {
                g = Matrix::zeros(chunk.len(), out_dim);
            }
            net.forward_batch_cached(&x, &mut cache);
            let out = cache.output();
            for r in 0..chunk.len() {
                epoch_loss += loss::mse(out.row(r), t.row(r));
                let gr = loss::mse_gradient(out.row(r), t.row(r));
                g.row_mut(r).copy_from_slice(&gr);
            }
            samples += chunk.len();
            net.backward_batch(&cache, &g, &mut grads, scale);
            if config.weight_decay > 0.0 {
                grads.add_weight_decay(net, config.weight_decay);
            }
            if let Some(c) = config.grad_clip {
                grads.clip_global_norm(c);
            }
            opt.step(net, &grads);
        }
        last_epoch_loss = epoch_loss / samples as f64;

        if !val_idx.is_empty() {
            net.forward_batch_cached(&val_x, &mut val_cache);
            let out = val_cache.output();
            let val_loss = (0..val_idx.len())
                .map(|r| loss::mse(out.row(r), val_t.row(r)))
                .sum::<f64>()
                / val_idx.len() as f64;
            // a non-finite validation loss is divergence, never an
            // improvement: without the finiteness guard, NaN compares
            // false against the incumbent and would be recorded as a new
            // best (and its weights restored) every epoch
            let improved =
                val_loss.is_finite() && best_val.as_ref().is_none_or(|(best, _)| val_loss < *best);
            if improved {
                best_val = Some((val_loss, net.clone()));
                stale_epochs = 0;
            } else {
                stale_epochs += 1;
                if stale_epochs >= config.patience.max(1) {
                    break;
                }
            }
        }
    }
    let best_validation_loss = best_val.map(|(v, best_net)| {
        *net = best_net;
        v
    });
    TrainReport {
        final_train_loss: last_epoch_loss,
        best_validation_loss,
        epochs_run,
    }
}

/// Mean MSE of `net` over a dataset (validation helper).
///
/// # Panics
///
/// Panics if the dataset is empty or lengths mismatch.
pub fn evaluate_mse(net: &Mlp, inputs: &[Vec<f64>], targets: &[Vec<f64>]) -> f64 {
    assert!(!inputs.is_empty(), "evaluation set is empty");
    assert_eq!(
        inputs.len(),
        targets.len(),
        "inputs/targets length mismatch"
    );
    let mut cache = BatchCache::new();
    let mut x = Matrix::zeros(1, 1);
    let mut total = 0.0;
    let idx: Vec<usize> = (0..inputs.len()).collect();
    for chunk in idx.chunks(256) {
        fill_rows(&mut x, inputs, chunk, net.input_dim());
        net.forward_batch_cached(&x, &mut cache);
        let out = cache.output();
        for (r, &i) in chunk.iter().enumerate() {
            total += loss::mse(out.row(r), &targets[i]);
        }
    }
    total / inputs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::mlp::MlpBuilder;

    fn dataset(f: impl Fn(f64) -> f64, n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![2.0 * i as f64 / n as f64 - 1.0])
            .collect();
        let ys = xs.iter().map(|x| vec![f(x[0])]).collect();
        (xs, ys)
    }

    #[test]
    fn fits_linear_function() {
        let (xs, ys) = dataset(|x| 3.0 * x - 0.5, 64);
        let mut net = MlpBuilder::new(1)
            .hidden(8, Activation::Tanh)
            .output(1, Activation::Identity)
            .seed(11)
            .build();
        let l = fit_regression(
            &mut net,
            &xs,
            &ys,
            &TrainConfig {
                epochs: 300,
                ..Default::default()
            },
        );
        assert!(l < 1e-2, "final loss {l}");
        assert!(evaluate_mse(&net, &xs, &ys) < 1e-2);
    }

    #[test]
    fn fits_nonlinear_function() {
        let (xs, ys) = dataset(|x| (3.0 * x).sin(), 128);
        let mut net = MlpBuilder::new(1)
            .hidden(24, Activation::Tanh)
            .hidden(24, Activation::Tanh)
            .output(1, Activation::Identity)
            .seed(12)
            .build();
        let l = fit_regression(
            &mut net,
            &xs,
            &ys,
            &TrainConfig {
                epochs: 400,
                learning_rate: 5e-3,
                ..Default::default()
            },
        );
        assert!(l < 2e-2, "final loss {l}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let (xs, ys) = dataset(|x| 2.0 * x, 32);
        let make = || {
            MlpBuilder::new(1)
                .hidden(16, Activation::Tanh)
                .output(1, Activation::Identity)
                .seed(13)
                .build()
        };
        let mut free = make();
        let mut decayed = make();
        let cfg = TrainConfig {
            epochs: 200,
            ..Default::default()
        };
        fit_regression(&mut free, &xs, &ys, &cfg);
        fit_regression(
            &mut decayed,
            &xs,
            &ys,
            &TrainConfig {
                weight_decay: 0.01,
                ..cfg
            },
        );
        assert!(decayed.weight_norm_sq() < free.weight_norm_sq());
    }

    #[test]
    fn training_is_seed_deterministic() {
        let (xs, ys) = dataset(|x| x * x, 32);
        let run = || {
            let mut net = MlpBuilder::new(1)
                .hidden(8, Activation::Tanh)
                .output(1, Activation::Identity)
                .seed(14)
                .build();
            fit_regression(
                &mut net,
                &xs,
                &ys,
                &TrainConfig {
                    epochs: 50,
                    ..Default::default()
                },
            );
            net
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn early_stopping_limits_epochs_and_restores_best() {
        let (xs, ys) = dataset(|x| (2.0 * x).sin(), 96);
        let mut net = MlpBuilder::new(1)
            .hidden(16, Activation::Tanh)
            .output(1, Activation::Identity)
            .seed(21)
            .build();
        let report = fit_regression_with_report(
            &mut net,
            &xs,
            &ys,
            &TrainConfig {
                epochs: 2000,
                validation_fraction: 0.25,
                patience: 5,
                ..Default::default()
            },
        );
        assert!(report.epochs_run < 2000, "early stopping never fired");
        let best = report
            .best_validation_loss
            .expect("validation split active");
        assert!(best < 0.1, "best validation loss {best}");
        // restored weights reproduce the recorded best validation loss
        let mut split: Vec<usize> = (0..xs.len()).collect();
        use rand::seq::SliceRandom;
        let mut rng = cocktail_math::rng::seeded(0);
        split.shuffle(&mut rng);
        let val_count = (xs.len() as f64 * 0.25) as usize;
        let recomputed = split[..val_count]
            .iter()
            .map(|&i| crate::loss::mse(&net.forward(&xs[i]), &ys[i]))
            .sum::<f64>()
            / val_count as f64;
        assert!(
            (recomputed - best).abs() < 1e-9,
            "restored {recomputed} vs best {best}"
        );
    }

    #[test]
    fn zero_validation_fraction_disables_early_stopping() {
        let (xs, ys) = dataset(|x| x, 16);
        let mut net = MlpBuilder::new(1)
            .hidden(4, Activation::Tanh)
            .output(1, Activation::Identity)
            .build();
        let report = fit_regression_with_report(
            &mut net,
            &xs,
            &ys,
            &TrainConfig {
                epochs: 25,
                ..Default::default()
            },
        );
        assert_eq!(report.epochs_run, 25);
        assert!(report.best_validation_loss.is_none());
    }

    #[test]
    fn nan_targets_never_become_the_best_validation_weights() {
        // divergence guard: a NaN validation loss must count as stale,
        // not as a new best, so early stopping still terminates and no
        // NaN snapshot is restored
        let (xs, ys) = dataset(|_| f64::NAN, 32);
        let mut net = MlpBuilder::new(1)
            .hidden(4, Activation::Tanh)
            .output(1, Activation::Identity)
            .seed(15)
            .build();
        let report = fit_regression_with_report(
            &mut net,
            &xs,
            &ys,
            &TrainConfig {
                epochs: 50,
                validation_fraction: 0.25,
                patience: 3,
                ..Default::default()
            },
        );
        assert!(report.best_validation_loss.is_none());
        assert_eq!(
            report.epochs_run, 3,
            "early stopping must fire on stale NaN epochs"
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_panics() {
        let mut net = MlpBuilder::new(1).output(1, Activation::Identity).build();
        fit_regression(&mut net, &[], &[], &TrainConfig::default());
    }
}
