//! Dense (fully-connected) layers.

use crate::activation::Activation;
use crate::fast::ForwardKernel;
use cocktail_math::{Interval, Matrix};
use serde::{Deserialize, Serialize};

/// A dense layer `a = σ(W x + b)` with an `out × in` weight matrix.
///
/// # Examples
///
/// ```
/// use cocktail_math::Matrix;
/// use cocktail_nn::{Activation, Dense};
///
/// let layer = Dense::from_parts(
///     Matrix::from_rows(vec![vec![1.0, -1.0]]),
///     vec![0.5],
///     Activation::Identity,
/// );
/// assert_eq!(layer.forward(&[2.0, 1.0]).1, vec![1.5]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix,
    biases: Vec<f64>,
    activation: Activation,
}

impl Dense {
    /// Builds a layer from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `biases.len() != weights.rows()`.
    pub fn from_parts(weights: Matrix, biases: Vec<f64>, activation: Activation) -> Self {
        assert_eq!(
            biases.len(),
            weights.rows(),
            "bias length must equal output width"
        );
        Self {
            weights,
            biases,
            activation,
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.weights.rows()
    }

    /// The weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Mutable weight matrix (used by optimizers).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// The bias vector.
    pub fn biases(&self) -> &[f64] {
        &self.biases
    }

    /// Mutable bias vector (used by optimizers).
    pub fn biases_mut(&mut self) -> &mut [f64] {
        &mut self.biases
    }

    /// The activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.biases.len()
    }

    /// Forward pass: returns `(pre_activation, activation)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    pub fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut z = self.weights.matvec(x);
        for (zi, bi) in z.iter_mut().zip(&self.biases) {
            *zi += bi;
        }
        let a = self.activation.apply_vec(&z);
        (z, a)
    }

    /// Batched forward pass over a matrix of row-vector inputs.
    ///
    /// `x` is `batch × input_dim`; returns `(Z, A)`, both
    /// `batch × output_dim`. Each output row is bit-identical to
    /// [`Dense::forward`] on the corresponding input row: the underlying
    /// `X Wᵀ` product accumulates in the same order as `matvec`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.input_dim()`.
    pub fn forward_batch(&self, x: &Matrix) -> (Matrix, Matrix) {
        let batch = x.rows();
        let mut z = Matrix::zeros(batch, self.output_dim());
        let mut a = Matrix::zeros(batch, self.output_dim());
        self.forward_batch_into(x, &mut z, &mut a);
        (z, a)
    }

    /// [`Dense::forward_batch`] writing into caller-owned scratch matrices.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.input_dim()` or the scratch shapes are
    /// not `x.rows() × self.output_dim()`.
    pub fn forward_batch_into(&self, x: &Matrix, z: &mut Matrix, a: &mut Matrix) {
        self.forward_batch_into_with(x, z, a, &mut Vec::new());
    }

    /// [`Dense::forward_batch_into`] with a caller-owned transpose scratch
    /// buffer, so a warmed steady-state forward touches no allocator.
    ///
    /// # Panics
    ///
    /// As [`Dense::forward_batch_into`].
    pub fn forward_batch_into_with(
        &self,
        x: &Matrix,
        z: &mut Matrix,
        a: &mut Matrix,
        scratch: &mut Vec<f64>,
    ) {
        self.forward_batch_into_with_kernel(x, z, a, scratch, ForwardKernel::Exact);
    }

    /// [`Dense::forward_batch_into_with`] with an explicit activation
    /// kernel. [`ForwardKernel::Exact`] is bit-identical to the per-sample
    /// path; [`ForwardKernel::FastTanh`] substitutes
    /// [`crate::fast::fast_tanh`] for `Tanh` activations only (bounded by
    /// [`crate::fast::FAST_TANH_EPS`] per unit), leaving the GEMM and every
    /// other activation exact.
    ///
    /// # Panics
    ///
    /// As [`Dense::forward_batch_into`].
    pub fn forward_batch_into_with_kernel(
        &self,
        x: &Matrix,
        z: &mut Matrix,
        a: &mut Matrix,
        scratch: &mut Vec<f64>,
        kernel: ForwardKernel,
    ) {
        assert_eq!(x.cols(), self.input_dim(), "input dimension mismatch");
        x.matmul_transpose_b_into_with(&self.weights, z, scratch);
        let width = self.output_dim();
        for row in z.as_mut_slice().chunks_mut(width) {
            for (zi, bi) in row.iter_mut().zip(&self.biases) {
                *zi += bi;
            }
        }
        assert_eq!(a.shape(), z.shape(), "activation scratch shape mismatch");
        match (kernel, self.activation) {
            (ForwardKernel::FastTanh, Activation::Tanh) => {
                for (ai, &zi) in a.as_mut_slice().iter_mut().zip(z.as_slice()) {
                    *ai = crate::fast::fast_tanh(zi);
                }
            }
            _ => {
                for (ai, &zi) in a.as_mut_slice().iter_mut().zip(z.as_slice()) {
                    *ai = self.activation.apply(zi);
                }
            }
        }
    }

    /// Batched `δ = grad_output ⊙ σ'(z)`, the shared first step of the
    /// batched backward pass. `a` is the layer's stored output `σ(z)`:
    /// the derivative is reconstructed from it via
    /// [`Activation::derivative_from_output`], skipping the transcendental
    /// re-evaluation while staying bit-identical to `derivative(z)`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn delta_batch(&self, z: &Matrix, a: &Matrix, grad_output: &Matrix) -> Matrix {
        assert_eq!(z.shape(), grad_output.shape(), "delta shape mismatch");
        assert_eq!(a.shape(), z.shape(), "activation shape mismatch");
        let mut delta = grad_output.clone();
        for ((d, &zi), &ai) in delta
            .as_mut_slice()
            .iter_mut()
            .zip(z.as_slice())
            .zip(a.as_slice())
        {
            *d *= self.activation.derivative_from_output(zi, ai);
        }
        delta
    }

    /// Batched backward pass.
    ///
    /// `x`, `z`, `a` and `grad_output` hold one sample per row (`a` is the
    /// stored output `σ(z)`). Returns `(grad_weights, grad_biases,
    /// grad_input)` where the parameter gradients are **summed** over the
    /// batch (`grad_weights = δᵀ X`, `grad_biases` the column sums of `δ`)
    /// and `grad_input` is per-row.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    pub fn backward_batch(
        &self,
        x: &Matrix,
        z: &Matrix,
        a: &Matrix,
        grad_output: &Matrix,
    ) -> (Matrix, Vec<f64>, Matrix) {
        assert_eq!(x.cols(), self.input_dim(), "input dimension mismatch");
        assert_eq!(x.rows(), z.rows(), "batch size mismatch");
        let delta = self.delta_batch(z, a, grad_output);
        let grad_w = delta.matmul_transpose_a(x);
        let mut grad_b = vec![0.0; self.output_dim()];
        for row in delta.as_slice().chunks(self.output_dim()) {
            for (g, d) in grad_b.iter_mut().zip(row) {
                *g += d;
            }
        }
        let grad_x = delta.matmul(&self.weights);
        (grad_w, grad_b, grad_x)
    }

    /// Backward pass for one sample.
    ///
    /// Given the loss gradient w.r.t. this layer's *activation* output,
    /// the cached pre-activation `z` and the layer input `x`, returns
    /// `(grad_weights, grad_biases, grad_input)`.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    pub fn backward(
        &self,
        x: &[f64],
        z: &[f64],
        grad_output: &[f64],
    ) -> (Matrix, Vec<f64>, Vec<f64>) {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        assert_eq!(
            z.len(),
            self.output_dim(),
            "pre-activation dimension mismatch"
        );
        assert_eq!(
            grad_output.len(),
            self.output_dim(),
            "gradient dimension mismatch"
        );
        // δ = grad_output ⊙ σ'(z)
        let delta: Vec<f64> = grad_output
            .iter()
            .zip(z)
            .map(|(&g, &zi)| g * self.activation.derivative(zi))
            .collect();
        let grad_w = Matrix::outer(&delta, x);
        let grad_x = self.weights.matvec_transposed(&delta);
        (grad_w, delta, grad_x)
    }

    /// Sound interval propagation through the layer.
    ///
    /// Uses the centre/radius form: for `z = W x + b` with `x ∈ [c − r, c + r]`,
    /// `z ∈ [W c + b − |W| r, W c + b + |W| r]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    pub fn forward_interval(&self, x: &[Interval]) -> Vec<Interval> {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        let centre: Vec<f64> = x.iter().map(Interval::mid).collect();
        let radius: Vec<f64> = x.iter().map(Interval::radius).collect();
        let zc = {
            let mut v = self.weights.matvec(&centre);
            for (vi, bi) in v.iter_mut().zip(&self.biases) {
                *vi += bi;
            }
            v
        };
        let abs_w = self.weights.map(f64::abs);
        let zr = abs_w.matvec(&radius);
        zc.iter()
            .zip(&zr)
            .map(|(&c, &r)| self.activation.apply_interval(Interval::new(c - r, c + r)))
            .collect()
    }

    /// This layer's contribution to the network Lipschitz bound:
    /// `factor(σ) · ‖W‖` where the norm is the spectral norm.
    pub fn lipschitz_bound(&self) -> f64 {
        self.activation.lipschitz_factor() * self.weights.spectral_norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> Dense {
        Dense::from_parts(
            Matrix::from_rows(vec![vec![1.0, 2.0], vec![-0.5, 0.25]]),
            vec![0.1, -0.2],
            Activation::Tanh,
        )
    }

    #[test]
    fn forward_matches_hand_computation() {
        let l = Dense::from_parts(
            Matrix::from_rows(vec![vec![2.0, 0.0]]),
            vec![1.0],
            Activation::Identity,
        );
        let (z, a) = l.forward(&[3.0, 5.0]);
        assert_eq!(z, vec![7.0]);
        assert_eq!(a, vec![7.0]);
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let l = layer();
        let x = [0.3, -0.7];
        let upstream = [1.0, -2.0];
        let (gw, gb, gx) = {
            let (z, _) = l.forward(&x);
            l.backward(&x, &z, &upstream)
        };
        let h = 1e-6;
        let loss = |l: &Dense, x: &[f64]| -> f64 {
            let (_, a) = l.forward(x);
            a.iter().zip(&upstream).map(|(ai, ui)| ai * ui).sum()
        };
        // weight gradients
        for r in 0..2 {
            for c in 0..2 {
                let mut lp = l.clone();
                lp.weights_mut()[(r, c)] += h;
                let mut lm = l.clone();
                lm.weights_mut()[(r, c)] -= h;
                let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
                assert!(
                    (fd - gw[(r, c)]).abs() < 1e-5,
                    "w[{r}{c}]: {fd} vs {}",
                    gw[(r, c)]
                );
            }
        }
        // bias gradients
        #[allow(
            clippy::needless_range_loop,
            reason = "i indexes three parallel structures"
        )]
        for i in 0..2 {
            let mut lp = l.clone();
            lp.biases_mut()[i] += h;
            let mut lm = l.clone();
            lm.biases_mut()[i] -= h;
            let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
            assert!((fd - gb[i]).abs() < 1e-5);
        }
        // input gradients
        for i in 0..2 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (loss(&l, &xp) - loss(&l, &xm)) / (2.0 * h);
            assert!((fd - gx[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn forward_batch_rows_match_per_sample_bitwise() {
        let l = layer();
        let xs = vec![vec![0.3, -0.7], vec![1.2, 0.4], vec![-0.9, 0.0]];
        let x = Matrix::from_rows(xs.clone());
        let (z, a) = l.forward_batch(&x);
        for (r, xr) in xs.iter().enumerate() {
            let (zr, ar) = l.forward(xr);
            assert_eq!(z.row(r), zr.as_slice(), "z row {r}");
            assert_eq!(a.row(r), ar.as_slice(), "a row {r}");
        }
    }

    #[test]
    fn backward_batch_matches_per_sample_sums() {
        let l = layer();
        let xs = vec![vec![0.3, -0.7], vec![1.2, 0.4]];
        let gs = vec![vec![1.0, -2.0], vec![0.5, 0.25]];
        let x = Matrix::from_rows(xs.clone());
        let (z, a) = l.forward_batch(&x);
        let (gw, gb, gx) = l.backward_batch(&x, &z, &a, &Matrix::from_rows(gs.clone()));
        let mut gw_ref = Matrix::zeros(2, 2);
        let mut gb_ref = vec![0.0; 2];
        for (r, (xr, gr)) in xs.iter().zip(&gs).enumerate() {
            let (zr, _) = l.forward(xr);
            let (gwr, gbr, gxr) = l.backward(xr, &zr, gr);
            gw_ref.axpy(1.0, &gwr);
            for (acc, v) in gb_ref.iter_mut().zip(&gbr) {
                *acc += v;
            }
            for (batch, single) in gx.row(r).iter().zip(&gxr) {
                assert!((batch - single).abs() < 1e-14, "gx row {r}");
            }
        }
        for (batch, single) in gw.as_slice().iter().zip(gw_ref.as_slice()) {
            assert!((batch - single).abs() < 1e-14);
        }
        for (batch, single) in gb.iter().zip(&gb_ref) {
            assert!((batch - single).abs() < 1e-14);
        }
    }

    #[test]
    fn interval_forward_contains_point_forward() {
        let l = layer();
        let box_in = [Interval::new(-0.5, 0.5), Interval::new(0.0, 1.0)];
        let bounds = l.forward_interval(&box_in);
        for i in 0..=8 {
            for j in 0..=8 {
                let x = [-0.5 + i as f64 / 8.0, j as f64 / 8.0];
                let (_, a) = l.forward(&x);
                for (ai, bi) in a.iter().zip(&bounds) {
                    assert!(bi.inflate(1e-12).contains(*ai));
                }
            }
        }
    }

    #[test]
    fn lipschitz_bound_dominates_sampled_pairs() {
        let l = layer();
        let lb = l.lipschitz_bound();
        let pts = [[0.1, 0.2], [-0.3, 0.9], [0.7, -0.7], [0.0, 0.0]];
        for a in &pts {
            for b in &pts {
                let (_, ya) = l.forward(a);
                let (_, yb) = l.forward(b);
                let dy = cocktail_math::vector::norm_2(&cocktail_math::vector::sub(&ya, &yb));
                let dx = cocktail_math::vector::norm_2(&cocktail_math::vector::sub(a, b));
                assert!(dy <= lb * dx + 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn mismatched_bias_panics() {
        Dense::from_parts(Matrix::identity(2), vec![0.0], Activation::Identity);
    }

    #[test]
    fn param_count() {
        assert_eq!(layer().param_count(), 6);
    }
}
