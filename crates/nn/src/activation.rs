//! Element-wise activation functions.

use cocktail_math::Interval;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Activation applied element-wise after a dense layer.
///
/// Cocktail's networks use `Tanh` hidden layers for controllers (bounded,
/// smooth, Lipschitz-1) and `Identity` outputs for regression; `Relu` and
/// `Sigmoid` are provided because the paper's footnote 1 defines the layer
/// Lipschitz factors for all three non-trivial activations.
///
/// # Examples
///
/// ```
/// use cocktail_nn::Activation;
///
/// assert_eq!(Activation::Relu.apply(-2.0), 0.0);
/// assert_eq!(Activation::Relu.lipschitz_factor(), 1.0);
/// assert_eq!(Activation::Sigmoid.lipschitz_factor(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activation {
    /// `f(x) = x`.
    Identity,
    /// `f(x) = max(0, x)`.
    Relu,
    /// `f(x) = tanh(x)`.
    Tanh,
    /// `f(x) = 1 / (1 + e^{-x})`.
    Sigmoid,
    /// `f(x) = max(αx, x)` with leak `α ∈ [0, 1)`.
    LeakyRelu {
        /// Negative-side slope.
        alpha: f64,
    },
    /// `f(x) = ln(1 + eˣ)`, a smooth `ReLU`.
    Softplus,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::LeakyRelu { alpha } => {
                if x > 0.0 {
                    x
                } else {
                    alpha * x
                }
            }
            // numerically stable ln(1 + e^x): one formula for all x — for
            // large x the exp underflows to 0 and ln_1p(0) = 0 leaves
            // exactly x, so no large-x shortcut branch is needed (a
            // previous `x > 30` shortcut made apply discontinuous by
            // e^{-30} across the seam)
            Activation::Softplus => x.max(0.0) + (-(x.abs())).exp().ln_1p(),
        }
    }

    /// Derivative at pre-activation `x`.
    ///
    /// The `ReLU` derivative at exactly 0 is taken as 0 (sub-gradient choice).
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = self.apply(x);
                s * (1.0 - s)
            }
            Activation::LeakyRelu { alpha } => {
                if x > 0.0 {
                    1.0
                } else {
                    alpha
                }
            }
            // softplus' = sigmoid
            Activation::Softplus => Activation::Sigmoid.apply(x),
        }
    }

    /// Derivative at pre-activation `z`, reconstructed from the stored
    /// *output* `a = f(z)` where possible.
    ///
    /// Bit-identical to [`Activation::derivative`]`(z)` for every variant:
    /// Tanh/Sigmoid recompute `1 - a²` / `a(1 - a)` from the exact same
    /// intermediate the derivative would recompute from `z`, the piecewise
    /// linear variants recover the branch from `a`'s sign, and Softplus
    /// (whose output does not determine the derivative cheaply) falls back
    /// to `z`. Batched backward passes use this to skip the transcendental
    /// re-evaluation that dominates `derivative(z)`.
    pub fn derivative_from_output(self, z: f64, a: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            // a = max(0, z) is positive exactly when z is
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - a * a,
            Activation::Sigmoid => a * (1.0 - a),
            // α ≥ 0 keeps sign(a) = sign(z) on the positive side
            Activation::LeakyRelu { alpha } => {
                if a > 0.0 {
                    1.0
                } else {
                    alpha
                }
            }
            Activation::Softplus => self.derivative(z),
        }
    }

    /// Applies the activation element-wise to a slice, returning a new
    /// vector.
    pub fn apply_vec(self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.apply(x)).collect()
    }

    /// Global Lipschitz factor contributed by this activation, per the
    /// paper's footnote 1: `ReLU` and Tanh contribute 1, Sigmoid ¼.
    pub fn lipschitz_factor(self) -> f64 {
        match self {
            Activation::Identity | Activation::Relu | Activation::Tanh | Activation::Softplus => {
                1.0
            }
            Activation::Sigmoid => 0.25,
            Activation::LeakyRelu { alpha } => alpha.abs().max(1.0),
        }
    }

    /// Sound interval image of the activation.
    pub fn apply_interval(self, x: Interval) -> Interval {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.relu(),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => x.sigmoid(),
            // monotone increasing: endpoint images, widened outward to
            // cover the single round-to-nearest multiply on the leaky side
            Activation::LeakyRelu { .. } => {
                Interval::outward_rounded(self.apply(x.lo()), self.apply(x.hi()), 1)
            }
            // monotone increasing; exp/ln_1p/add accumulate a few ulps, so
            // widen by 4 and clamp the lower endpoint back into the true
            // codomain (softplus > 0)
            Activation::Softplus => {
                let img = Interval::outward_rounded(self.apply(x.lo()), self.apply(x.hi()), 4);
                Interval::new(img.lo().max(0.0), img.hi().max(0.0))
            }
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Activation::Identity => "identity",
            Activation::Relu => "relu",
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
            Activation::LeakyRelu { .. } => "leaky-relu",
            Activation::Softplus => "softplus",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Activation; 6] = [
        Activation::Identity,
        Activation::Relu,
        Activation::Tanh,
        Activation::Sigmoid,
        Activation::LeakyRelu { alpha: 0.1 },
        Activation::Softplus,
    ];

    #[test]
    fn identity_is_identity() {
        assert_eq!(Activation::Identity.apply(-3.5), -3.5);
        assert_eq!(Activation::Identity.derivative(100.0), 1.0);
    }

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
    }

    #[test]
    fn tanh_and_sigmoid_bounded() {
        for x in [-10.0, -1.0, 0.0, 1.0, 10.0] {
            let t = Activation::Tanh.apply(x);
            assert!((-1.0..=1.0).contains(&t));
            let s = Activation::Sigmoid.apply(x);
            assert!((0.0..=1.0).contains(&s));
        }
        assert_eq!(Activation::Sigmoid.apply(0.0), 0.5);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in ALL {
            for x in [-2.0, -0.5, 0.3, 1.7] {
                let fd = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let an = act.derivative(x);
                assert!((fd - an).abs() < 1e-5, "{act} at {x}: fd {fd} vs {an}");
            }
        }
    }

    #[test]
    fn derivative_bounded_by_lipschitz_factor() {
        for act in ALL {
            for i in -100..=100 {
                let x = i as f64 / 10.0;
                assert!(
                    act.derivative(x) <= act.lipschitz_factor() + 1e-12,
                    "{act} derivative exceeds Lipschitz factor at {x}"
                );
            }
        }
    }

    #[test]
    fn interval_image_contains_point_image() {
        let iv = Interval::new(-1.5, 0.75);
        for act in ALL {
            let img = act.apply_interval(iv);
            for i in 0..=20 {
                let x = iv.lo() + iv.width() * i as f64 / 20.0;
                assert!(img.contains(act.apply(x)), "{act}({x}) escapes");
            }
        }
    }

    #[test]
    fn leaky_relu_leaks() {
        let a = Activation::LeakyRelu { alpha: 0.1 };
        assert!((a.apply(-2.0) + 0.2).abs() < 1e-12);
        assert_eq!(a.apply(3.0), 3.0);
        assert_eq!(a.derivative(-1.0), 0.1);
        assert_eq!(a.lipschitz_factor(), 1.0);
    }

    #[test]
    fn softplus_is_smooth_relu() {
        let a = Activation::Softplus;
        // softplus(0) = ln 2
        assert!((a.apply(0.0) - 2.0_f64.ln()).abs() < 1e-12);
        // approaches identity for large x, zero for very negative x
        assert!((a.apply(40.0) - 40.0).abs() < 1e-9);
        assert!(a.apply(-40.0) < 1e-12);
        assert!(a.apply(-40.0) >= 0.0);
    }

    #[test]
    fn softplus_is_monotone_across_former_seam() {
        let a = Activation::Softplus;
        // the removed `x > 30` shortcut used to drop the e^{-30} tail,
        // making apply(30 + ulp) jump *down* by ~9.4e-14; the unified
        // formula must be monotone non-decreasing through the seam and
        // keep the tail: softplus(30) = 30 + e^{-30} - e^{-60}/2 + ...
        let mut prev = f64::NEG_INFINITY;
        for i in -1000..=1000 {
            let x = 30.0 + i as f64 * 1e-9;
            let y = a.apply(x);
            assert!(y >= prev, "softplus not monotone at {x}: {y} < {prev}");
            prev = y;
        }
        // the ulps straddling the former branch point
        assert!(a.apply(30.0_f64.next_up()) >= a.apply(30.0));
        assert!(a.apply(30.0) >= a.apply(30.0_f64.next_down()));
        assert!(
            a.apply(30.0) > 30.0,
            "softplus(30) must keep the e^{{-30}} tail above x"
        );
        // and for genuinely large x the formula is exactly x
        assert_eq!(a.apply(800.0), 800.0);
    }

    #[test]
    fn derivative_from_output_is_bit_identical() {
        for act in ALL {
            for i in -60..=60 {
                let z = i as f64 / 7.0;
                let a = act.apply(z);
                assert_eq!(
                    act.derivative_from_output(z, a).to_bits(),
                    act.derivative(z).to_bits(),
                    "{act} at {z}"
                );
            }
        }
    }

    #[test]
    fn apply_vec_maps_each() {
        let out = Activation::Relu.apply_vec(&[-1.0, 2.0]);
        assert_eq!(out, vec![0.0, 2.0]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Activation::Tanh.to_string(), "tanh");
    }
}
